"""Figure 1: RRG throughput and ASPL vs. the bounds, density sweep.

Regenerates both panels at CI scale and asserts the headline claims: the
throughput-to-bound ratio climbs toward 1 as the network densifies, and
observed ASPL never undercuts the Cerf et al. lower bound.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig01 import run_fig1a, run_fig1b


def test_fig1a_throughput_ratio(benchmark):
    result = run_once(
        benchmark,
        run_fig1a,
        num_switches=20,
        degrees=(4, 6, 8, 10),
        servers_per_switch_options=(5,),
        include_all_to_all=True,
        runs=2,
        seed=0,
    )
    print()
    print(result.to_table())
    a2a = result.get_series("All to All")
    assert a2a.ys()[-1] >= a2a.ys()[0]
    assert a2a.ys()[-1] >= 0.9
    for series in result.series:
        assert all(0.0 <= y <= 1.0 + 1e-9 for y in series.ys())


def test_fig1b_aspl_vs_bound(benchmark):
    result = run_once(
        benchmark,
        run_fig1b,
        num_switches=40,
        degrees=(4, 6, 8, 10, 12, 14),
        runs=3,
        seed=0,
    )
    print()
    print(result.to_table())
    observed = result.get_series("Observed ASPL")
    bound = result.get_series("ASPL lower-bound")
    gaps = []
    for x in observed.xs():
        assert observed.y_at(x) >= bound.y_at(x) - 1e-9
        gaps.append(observed.y_at(x) - bound.y_at(x))
    # Densifying closes the gap (right side of the paper's panel).
    assert gaps[-1] <= gaps[0]
