"""Figure 13: packet-level MPTCP vs flow-level LP throughput (§8.2).

On oversubscribed rewired-VL2 networks, the packet simulator's mean
per-flow goodput must land near the exact LP value (the paper reports a
few percent with htsim; the simplified transport here stays within ~25%
at bench scale and typically ~10%).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig13 import run_fig13


def test_fig13_packet_vs_flow(benchmark):
    result = run_once(
        benchmark,
        run_fig13,
        da_values=(4, 6),
        di=4,
        servers_per_tor=10,
        oversubscribe=1.3,
        subflows=4,
        packet_size=0.25,
        duration=300.0,
        warmup=120.0,
        runs=2,
        seed=0,
    )
    print()
    print(result.to_table())
    flow = result.get_series("Flow-level")
    packet = result.get_series("Packet-level")
    packet_min = result.get_series("Packet-level (min flow)")
    for x in flow.xs():
        lp = flow.y_at(x)
        sim = packet.y_at(x)
        # Deliberately oversubscribed: the flow optimum sits below line rate.
        assert 0.0 < lp < 1.0
        # Efficiency: packet mean recovers most of the fluid optimum.
        assert sim >= 0.75 * lp, f"packet {sim:.3f} too far below LP {lp:.3f}"
        # Validity: no schedule's minimum flow beats the LP maximin.
        assert packet_min.y_at(x) <= lp * 1.05 + 1e-9
