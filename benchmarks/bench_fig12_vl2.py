"""Figure 12: rewiring VL2 for more servers at full throughput (§7).

(a) the rewired network supports at least as many ToRs as VL2 under random
permutations, (b) the permutation-sized rewired network keeps near-full
throughput under minority-chunky traffic, (c) gains persist (smaller) when
full throughput is demanded under 100% chunky.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig12 import run_fig12a, run_fig12b, run_fig12c


def test_fig12a_improvement_ratio(benchmark):
    result = run_once(
        benchmark,
        run_fig12a,
        da_values=(4, 6, 8),
        di_values=(4, 8),
        servers_per_tor=20,
        runs=2,
        seed=0,
    )
    print()
    print(result.to_table())
    for series in result.series:
        assert series.points, f"{series.name} is empty"
        assert all(y >= 1.0 - 1e-9 for y in series.ys()), series.name
    # Somewhere the rewiring must yield a strict improvement.
    assert any(max(s.ys()) > 1.05 for s in result.series)


def test_fig12b_chunky_traffic(benchmark):
    result = run_once(
        benchmark,
        run_fig12b,
        da_values=(4, 6),
        di=8,
        chunky_percents=(20, 100),
        servers_per_tor=20,
        runs=2,
        seed=1,
    )
    print()
    print(result.to_table())
    light = result.get_series("20% Chunky")
    heavy = result.get_series("100% Chunky")
    for x in light.xs():
        # Minority-chunky stays near full throughput (the paper reports
        # "within a few percent" at 2400 servers; at this bench's micro
        # scale the 20%-set is just 1-2 ToRs, so allow wider slack) ...
        assert light.y_at(x) >= 0.75
        # ... and is never worse than the all-chunky pattern.
        assert light.y_at(x) >= heavy.y_at(x) - 1e-9


def test_fig12c_harder_workloads(benchmark):
    result = run_once(
        benchmark,
        run_fig12c,
        da_values=(4, 6),
        di=8,
        traffic_kinds=("permutation", "chunky-100"),
        servers_per_tor=20,
        runs=2,
        seed=2,
    )
    print()
    print(result.to_table())
    permutation = result.get_series("Permutation Traffic")
    chunky = result.get_series("100% Chunky Traffic")
    assert all(y >= 1.0 - 1e-9 for y in permutation.ys())
    # Chunky gains are smaller than permutation gains (the paper's point);
    # at the tiniest DA the random rewiring can even lose slightly to
    # VL2's symmetric bipartite fabric, so only require near-parity there
    # and recovery at the larger size.
    for x in chunky.xs():
        assert chunky.y_at(x) >= 0.8
        assert chunky.y_at(x) <= permutation.y_at(x) + 0.25
    assert chunky.ys()[-1] >= 0.95
