"""Ablation: routing policy cost and quality on a random graph.

Optimal (exact LP) vs k-shortest-path LP vs fluid ECMP on one RRG +
permutation instance. Reproduces the routing lesson underlying the paper's
§8 methodology: shortest-path-only ECMP forfeits a visible share of a
random graph's capacity, while multipath over k-shortest paths recovers
almost all of it.
"""

from __future__ import annotations

import pytest

from repro.flow.ecmp import ecmp_throughput
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.path_lp import max_concurrent_flow_paths
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic


@pytest.fixture(scope="module")
def instance():
    topo = random_regular_topology(20, 5, servers_per_switch=5, seed=21)
    traffic = random_permutation_traffic(topo, seed=22)
    exact = max_concurrent_flow(topo, traffic).throughput
    return topo, traffic, exact


def test_optimal_routing(benchmark, instance):
    topo, traffic, exact = instance
    result = benchmark(lambda: max_concurrent_flow(topo, traffic))
    assert result.throughput == pytest.approx(exact)


def test_k_shortest_multipath(benchmark, instance):
    topo, traffic, exact = instance
    result = benchmark(lambda: max_concurrent_flow_paths(topo, traffic, k=8))
    # Multipath over 8 shortest paths recovers nearly all of the optimum.
    assert result.throughput >= 0.9 * exact


def test_ecmp_per_hop(benchmark, instance):
    topo, traffic, exact = instance
    result = benchmark(lambda: ecmp_throughput(topo, traffic, mode="per-hop"))
    # ECMP is feasible but clearly below optimal on random graphs.
    assert result.throughput <= exact * (1 + 1e-9)
    assert result.throughput >= 0.2 * exact


def test_ecmp_per_path(benchmark, instance):
    topo, traffic, exact = instance
    result = benchmark(lambda: ecmp_throughput(topo, traffic, mode="per-path"))
    assert result.throughput <= exact * (1 + 1e-9)
