"""Ablation: random-graph builder cost across density regimes.

The Jellyfish-style incremental fill with rewiring repair is the library's
construction workhorse; this bench tracks its cost on sparse, medium, and
near-complete regular graphs plus the bipartite cross-wiring primitive, so
regressions in the repair paths show up as timing cliffs.
"""

from __future__ import annotations

from repro.topology.builders import (
    random_bipartite_matching,
    random_graph_from_degrees,
)


def test_sparse_fill(benchmark):
    budgets = {v: 4 for v in range(100)}
    edges = benchmark(lambda: random_graph_from_degrees(budgets, rng=1))
    assert len(edges) == 200


def test_medium_fill(benchmark):
    budgets = {v: 24 for v in range(100)}
    edges = benchmark(lambda: random_graph_from_degrees(budgets, rng=2))
    assert len(edges) == 1200


def test_near_complete_fill(benchmark):
    # Degree n-2: the regime where the rewiring repair does real work.
    budgets = {v: 38 for v in range(40)}
    edges = benchmark(lambda: random_graph_from_degrees(budgets, rng=3))
    assert len(edges) == 40 * 38 // 2


def test_bipartite_matching(benchmark):
    stubs_a = {("a", i): 6 for i in range(30)}
    stubs_b = {("b", i): 6 for i in range(30)}
    edges = benchmark(
        lambda: random_bipartite_matching(stubs_a, stubs_b, rng=4)
    )
    assert len(edges) == 180
