"""Figure 3: the ASPL bound's curved steps at degree 4.

Asserts the step boundaries land at the paper's x-tics (17, 53, 161, 485,
1457) and that the observed-to-bound ratio trends toward 1 with size.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig03 import run_fig3


def test_fig3_steps_and_ratio(benchmark):
    result = run_once(
        benchmark,
        run_fig3,
        sizes=(17, 35, 53, 100, 161, 300, 485),
        degree=4,
        runs=3,
        seed=0,
    )
    print()
    print(result.to_table())
    assert result.metadata["step_boundaries"][:5] == [5, 17, 53, 161, 485]
    ratio = result.get_series("Ratio (observed / bound)")
    ys = ratio.ys()
    assert all(y >= 1.0 - 1e-9 for y in ys)
    # Large-size ratios sit below the small-size ones.
    assert min(ys[-2:]) <= max(ys[:2])
    assert ys[-1] < 1.2
