"""Search subsystem: near-optimality of random RRGs, incremental speedup.

Asserts the two quantitative claims the search engine exists to make:

- annealing buys only a few percent of LP throughput over a random RRG at
  a paper-regime design point (N=40), i.e. random is near-optimal,
- the incremental ASPL engine evaluates swaps >= 10x faster than full
  recomputation on a ~500-switch graph.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.search_study import (
    run_incremental_speedup,
    run_search_vs_random,
)


def test_optimized_vs_random_gap(benchmark):
    result = run_once(
        benchmark,
        run_search_vs_random,
        points=((40, 5),),
        steps=2000,
        samples=3,
        seed=0,
    )
    print()
    print(result.to_table())
    optimized = result.get_series("Optimized (annealed ASPL)").ys()[0]
    random_mean = result.get_series("Random RRG (mean)").ys()[0]
    bound = result.get_series("Theorem 1 bound (d*)").ys()[0]
    # The optimizer genuinely improves the proxy, yet throughput moves by
    # only a few percent: random RRGs are near-optimal.
    assert optimized <= bound * (1 + 1e-6)
    assert optimized >= random_mean * 0.99  # annealing never hurts much
    gap = result.metadata["max_gap_pct"]
    assert gap <= 5.0, f"random leaves {gap:.2f}% on the table (> 5%)"


def test_incremental_aspl_speedup(benchmark):
    result = run_once(
        benchmark,
        run_incremental_speedup,
        num_switches=500,
        degree=8,
        num_swaps=12,
        seed=0,
    )
    print()
    print(result.to_table())
    speedup = result.metadata["speedup"]
    assert speedup >= 10.0, f"incremental path only {speedup:.1f}x faster"
