"""CI perf-regression gate over the repo-root ``BENCH_*.json`` trajectories.

Run after the gated benchmarks have appended fresh records: the newest
record of each gated benchmark is compared against the best (fastest)
*committed* record, and the gate fails on a >2x slowdown of

- the warm (incremental-model) anneal at N = 64 and the end-to-end
  N = 100,000 estimator-ladder cell (``BENCH_solvers.json``, appended by
  ``bench_solvers.py``), and
- the cold cost-Pareto design run over every generator family
  (``BENCH_design.json``, appended by ``bench_design.py``).

The 2x threshold absorbs shared-runner noise; the in-run ratio asserts
(e.g. warm >= 3x faster than cold) live in the benchmark files
themselves and are machine-independent. Usage::

    python benchmarks/check_perf_gate.py            # gate every artifact
    python benchmarks/check_perf_gate.py BENCH_solvers.json   # just one
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Gated artifact -> {benchmark name -> the timing field the gate watches}.
GATES = {
    "BENCH_solvers.json": {
        "incremental_anneal_n64": "warm_seconds",
        "estimator_ladder_100k": "total_seconds",
    },
    "BENCH_design.json": {
        "design_cold_run": "cold_seconds",
    },
}

#: Newest record may be at most this many times slower than the fastest
#: committed record.
SLOWDOWN_LIMIT = 2.0


def check_artifact(path: Path, gates: "dict[str, str]") -> "list[str]":
    """Gate one artifact; return failures (empty when it passes)."""
    if not path.exists():
        return [
            f"{path.name}: artifact missing (run the benchmark that "
            "appends it first)"
        ]
    payload = json.loads(path.read_text())
    failures: list[str] = []
    for name, fld in gates.items():
        records = [
            r for r in payload.get("records", []) if r.get("benchmark") == name
        ]
        if not records:
            failures.append(f"{name}: no records in {path.name}")
            continue
        latest = float(records[-1][fld])
        prior = [float(r[fld]) for r in records[:-1]]
        if not prior:
            print(f"{name}: {fld}={latest:.2f}s (first record; baseline set)")
            continue
        baseline = min(prior)
        ratio = latest / baseline
        print(
            f"{name}: {fld}={latest:.2f}s vs baseline {baseline:.2f}s "
            f"({ratio:.2f}x, limit {SLOWDOWN_LIMIT:.1f}x)"
        )
        if ratio > SLOWDOWN_LIMIT:
            failures.append(
                f"{name}: {fld} regressed {ratio:.2f}x over baseline "
                f"{baseline:.2f}s (limit {SLOWDOWN_LIMIT:.1f}x)"
            )
    return failures


def check(path: "Path | None" = None) -> "list[str]":
    """Gate one artifact (by path) or every registered artifact."""
    if path is not None:
        gates = GATES.get(path.name)
        if gates is None:
            known = ", ".join(sorted(GATES))
            return [f"{path.name}: no gates registered (known: {known})"]
        return check_artifact(path, gates)
    failures: list[str] = []
    for name, gates in GATES.items():
        failures.extend(check_artifact(REPO_ROOT / name, gates))
    return failures


def main(argv: "list[str]") -> int:
    path = Path(argv[1]) if len(argv) > 1 else None
    failures = check(path)
    for failure in failures:
        print(f"PERF GATE FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("perf gate ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
