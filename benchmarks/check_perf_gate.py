"""CI perf-regression gate over the ``BENCH_solvers.json`` trajectory.

Run after ``pytest bench_solvers.py`` has appended a fresh record: the
newest record for each gated benchmark is compared against the best
(fastest) *committed* record, and the gate fails on a >2x slowdown of

- the warm (incremental-model) anneal at N = 64, and
- the end-to-end N = 100,000 estimator-ladder cell.

The 2x threshold absorbs shared-runner noise; the in-run ratio asserts
(warm >= 3x faster than cold) live in ``bench_solvers.py`` itself and
are machine-independent. Usage::

    python benchmarks/check_perf_gate.py [path/to/BENCH_solvers.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ARTIFACT = REPO_ROOT / "BENCH_solvers.json"

#: Gated benchmark -> the timing field the gate watches.
GATES = {
    "incremental_anneal_n64": "warm_seconds",
    "estimator_ladder_100k": "total_seconds",
}

#: Newest record may be at most this many times slower than the fastest
#: committed record.
SLOWDOWN_LIMIT = 2.0


def check(path: Path = DEFAULT_ARTIFACT) -> "list[str]":
    """Return a list of gate failures (empty when the gate passes)."""
    if not path.exists():
        return [f"{path.name}: artifact missing (run bench_solvers.py first)"]
    payload = json.loads(path.read_text())
    failures: list[str] = []
    for name, fld in GATES.items():
        records = [r for r in payload.get("records", []) if r.get("benchmark") == name]
        if not records:
            failures.append(f"{name}: no records in {path.name}")
            continue
        latest = float(records[-1][fld])
        prior = [float(r[fld]) for r in records[:-1]]
        if not prior:
            print(f"{name}: {fld}={latest:.2f}s (first record; baseline set)")
            continue
        baseline = min(prior)
        ratio = latest / baseline
        print(
            f"{name}: {fld}={latest:.2f}s vs baseline {baseline:.2f}s "
            f"({ratio:.2f}x, limit {SLOWDOWN_LIMIT:.1f}x)"
        )
        if ratio > SLOWDOWN_LIMIT:
            failures.append(
                f"{name}: {fld} regressed {ratio:.2f}x over baseline "
                f"{baseline:.2f}s (limit {SLOWDOWN_LIMIT:.1f}x)"
            )
    return failures


def main(argv: "list[str]") -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_ARTIFACT
    failures = check(path)
    for failure in failures:
        print(f"PERF GATE FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("perf gate ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
