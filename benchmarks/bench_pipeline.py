"""Pipeline acceptance benchmarks: cache speedup and parallel scaling.

Two claims, measured on one grid (RRG x permutation x exact LP, sizes
where the solve dominates topology construction):

- Re-running an identical sweep against a warm content-addressed cache is
  >= 10x faster than the cold run (in practice it is orders of magnitude:
  a cache hit costs a build + fingerprint + JSON read, not an LP solve).
- A multi-worker cold sweep beats the single-worker wall-clock. Cells are
  independent, so the speedup is bounded only by cores and pool startup;
  the assertion is skipped on single-core machines where no parallel
  schedule can win.

Like the other wall-clock benchmarks, these run on demand rather than as
a required CI check (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import os
import time

import pytest
from conftest import append_record, run_once

from repro.flow.solvers import SolverConfig
from repro.pipeline.engine import run_grid
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec

#: Sizes chosen so each exact-LP cell takes ~seconds: large enough that
#: build + fingerprint overhead is negligible, small enough for CI use.
GRID = ScenarioGrid(
    name="bench-pipeline",
    topologies=(
        TopologySpec.make("rrg", network_degree=8, servers_per_switch=5),
    ),
    traffics=(TrafficSpec.make("permutation"),),
    solvers=(SolverConfig("edge_lp"),),
    sizes=(32, 40),
    seeds=2,
)


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_warm_cache_at_least_10x(benchmark, tmp_path):
    cache_dir = str(tmp_path / "cache")
    start = time.perf_counter()
    cold = run_grid(GRID, workers=1, cache_dir=cache_dir)
    cold_s = time.perf_counter() - start
    assert cold.cache_hits == 0

    warm = run_once(benchmark, run_grid, GRID, workers=1, cache_dir=cache_dir)
    warm_s = warm.elapsed_s
    assert warm.cache_hits == len(warm.cells)
    assert [c.throughput for c in warm.cells] == [
        c.throughput for c in cold.cells
    ]
    speedup = cold_s / warm_s
    print(f"\ncold {cold_s:.2f}s -> warm {warm_s:.3f}s ({speedup:.0f}x)")
    assert speedup >= 10.0, f"warm cache only {speedup:.1f}x faster"
    append_record(
        "BENCH_pipeline.json",
        "warm_cache_speedup",
        cells=len(warm.cells),
        cold_seconds=round(cold_s, 4),
        warm_seconds=round(warm_s, 4),
        speedup=round(speedup, 1),
    )


@pytest.mark.skipif(
    _cores() < 2, reason="parallel speedup requires >= 2 CPU cores"
)
def test_multi_worker_beats_single(benchmark):
    start = time.perf_counter()
    single = run_grid(GRID, workers=1)
    single_s = time.perf_counter() - start

    workers = min(4, _cores())
    multi = run_once(benchmark, run_grid, GRID, workers=workers)
    multi_s = multi.elapsed_s
    assert [c.throughput for c in multi.cells] == [
        c.throughput for c in single.cells
    ]
    print(f"\nserial {single_s:.2f}s -> {workers} workers {multi_s:.2f}s")
    assert multi_s < single_s, (
        f"{workers}-worker sweep ({multi_s:.2f}s) did not beat "
        f"single-worker ({single_s:.2f}s)"
    )
    append_record(
        "BENCH_pipeline.json",
        "multi_worker_scaling",
        cells=len(multi.cells),
        workers=workers,
        serial_seconds=round(single_s, 4),
        parallel_seconds=round(multi_s, 4),
        speedup=round(single_s / multi_s, 2),
    )


def test_cache_correctness_across_worker_counts(benchmark, tmp_path):
    """Parallel cold run, serial warm run: identical numbers, all hits."""
    cache_dir = str(tmp_path / "cache")
    cold = run_once(
        benchmark, run_grid, GRID, workers=min(2, _cores()), cache_dir=cache_dir
    )
    warm = run_grid(GRID, workers=1, cache_dir=cache_dir)
    assert warm.cache_hits == len(warm.cells)
    assert [c.throughput for c in warm.cells] == [
        c.throughput for c in cold.cells
    ]
