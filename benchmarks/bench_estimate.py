"""Estimator acceptance benchmarks: calibrated accuracy and raw scale.

Claims measured:

- **Calibrated bracketing (the correctness gate):** on held-out
  instances — replicates never seen during calibration, drawn with a
  different base seed — every estimator's throughput falls inside its
  per-family calibrated error band around the exact LP value. A
  dedicated ladder takes the RRG family to N = 200 (the exact LP stays
  tractable there by using a few-sender hotspot workload: edge_lp cost
  scales with source commodities, not with N alone).
- **Upper-bound estimators really are upper bounds:** ``estimate_bound``
  and ``estimate_cut`` never fall below the exact optimum.
- **Scale sweep (the reach gate):** the ``scale`` experiment sweeps RRG
  vs fat-tree vs VL2 with estimator backends at sizes the exact LP
  cannot touch (N = 1000 here; paper scale N in {1k, 5k, 10k} via
  ``repro-experiments run scale --paper``). CI additionally gates an
  N = 10,000 single-cell sweep under 60 s through the sweep CLI.

Like the other wall-clock benchmarks these run on demand:
``cd benchmarks && PYTHONPATH=../src pytest bench_estimate.py -s``.
"""

from __future__ import annotations

from conftest import run_once

from repro.estimate import (
    DEFAULT_FAMILIES,
    ESTIMATOR_BACKENDS,
    calibrate_estimators,
    calibration_pairs,
    within_band,
)
from repro.experiments.scale import run_scale
from repro.flow.solvers import get_solver, solve_throughput

#: Estimators calibrated with dense traffic (pair sampling needs many
#: pairs per source to preserve marginals — see repro.estimate.sampled_lp).
DENSE_ONLY = ("estimate_sampled_lp",)

#: Held-out coordinates: same families as the calibration fit, larger
#: sizes, different base seed.
HELD_OUT_SIZES = {"rrg": (48, 72), "fat-tree": (6, 8), "vl2": (8, 10)}
HELD_OUT_BASE_SEED = 1234

#: The N <= 200 ladder: RRG instances where the exact LP stays cheap
#: because only ~5% of servers send (few source commodities). Bands are
#: fit over the whole size range — some estimators' offsets drift with N
#: on concentrated workloads, and the recorded band must span the sizes
#: it claims to cover — then checked on held-out instances at interior
#: sizes drawn with a fresh base seed.
N200_FAMILY = {
    "kind": "rrg",
    "params": {"network_degree": 6, "servers_per_switch": 3},
    "size_param": "num_switches",
    "sizes": (60, 100, 150, 200),
}
N200_TRAFFIC = "hotspot"
N200_TRAFFIC_PARAMS = {"num_hotspots": 4, "sender_fraction": 0.05}
N200_HELD_OUT_SIZES = (80, 125, 175)


def _estimators(dense: bool) -> "tuple[str, ...]":
    return tuple(
        name
        for name in ESTIMATOR_BACKENDS
        if (name in DENSE_ONLY) == dense
    )


def _bracketing_violations(
    estimators,
    families,
    held_out_sizes,
    traffic: str,
    traffic_params=None,
    estimator_options=None,
) -> list:
    """Held-out band check; returns the violating (family, estimator, ...)."""
    estimator_options = estimator_options or {}
    table = calibrate_estimators(
        estimators,
        families=families,
        traffic=traffic,
        traffic_params=traffic_params,
        replicates=2,
        estimator_options=estimator_options,
    )
    violations = []
    for family, spec in families.items():
        for topo, tm in calibration_pairs(
            family,
            spec,
            sizes=held_out_sizes[family],
            replicates=1,
            traffic=traffic,
            traffic_params=traffic_params,
            base_seed=HELD_OUT_BASE_SEED,
        ):
            exact = solve_throughput(topo, tm, "edge_lp").throughput
            if exact <= 0:
                continue
            for estimator in estimators:
                band = table.band(family, estimator)
                estimate = solve_throughput(
                    topo, tm, estimator,
                    **estimator_options.get(estimator, {}),
                ).throughput
                if not within_band(estimate, exact, band):
                    violations.append(
                        (family, estimator, topo.num_switches, estimate,
                         exact, band)
                    )
    return violations


def test_estimators_bracket_exact_within_calibrated_band(benchmark):
    """Held-out instances of all three families stay inside the bands."""
    violations = run_once(
        benchmark,
        _bracketing_violations,
        _estimators(dense=False),
        DEFAULT_FAMILIES,
        HELD_OUT_SIZES,
        "permutation",
    )
    assert not violations, violations


def test_estimators_bracket_exact_up_to_n200(benchmark):
    """The RRG ladder holds its band on held-out N = 150 and N = 200."""
    violations = run_once(
        benchmark,
        _bracketing_violations,
        _estimators(dense=False),
        {"rrg": N200_FAMILY},
        {"rrg": N200_HELD_OUT_SIZES},
        N200_TRAFFIC,
        N200_TRAFFIC_PARAMS,
    )
    assert not violations, violations


def test_sampled_lp_brackets_exact_on_dense_traffic(benchmark):
    """The sampled-LP estimator calibrates against its target workloads."""
    violations = run_once(
        benchmark,
        _bracketing_violations,
        _estimators(dense=True),
        DEFAULT_FAMILIES,
        {"rrg": (32, 48), "fat-tree": (6,), "vl2": (8,)},
        "gravity",
        None,
        # A constant sampled *fraction* is what makes the band transfer
        # along a size sweep (absolute caps shrink the fraction as the
        # pair count grows and drag the bias with it).
        {"estimate_sampled_lp": {"sample_fraction": 0.3, "min_pairs": 8}},
    )
    assert not violations, violations


def test_upper_bound_estimators_never_undercut_exact(benchmark):
    """estimate_bound / estimate_cut are true upper bounds on every pair."""
    def check():
        bad = []
        for family, spec in DEFAULT_FAMILIES.items():
            for topo, tm in calibration_pairs(family, spec, replicates=2):
                exact = solve_throughput(topo, tm, "edge_lp").throughput
                for name in ("estimate_bound", "estimate_cut"):
                    est = solve_throughput(topo, tm, name).throughput
                    if est < exact * (1 - 1e-9):
                        bad.append((family, name, est, exact))
        return bad

    assert not run_once(benchmark, check)


def test_scale_sweep_runs_families_past_exact_reach(benchmark):
    """RRG vs fat-tree vs VL2 estimator sweep; bands hold where checked."""
    result = run_once(
        benchmark,
        run_scale,
        sizes=(60, 250, 1000),
        exact_limit=60,
        runs=1,
    )
    print(result.to_table())
    assert result.metadata["band_checks"] > 0
    assert result.metadata["band_violations"] == 0
    for family in ("rrg", "fat-tree", "vl2"):
        for estimator in ("estimate_bound", "estimate_cut"):
            series = result.get_series(f"{family}/{estimator}")
            assert len(series.points) == 3
            assert all(p.y > 0 for p in series.points)


def test_estimator_backends_registered_with_estimate_flag(benchmark):
    """The registry exposes every estimator and flags it as an estimate."""
    def check():
        return [get_solver(name).estimate for name in ESTIMATOR_BACKENDS]

    assert all(run_once(benchmark, check))
