"""Figure 7: joint server-placement x cross-connectivity sweep.

Multiple configurations tie for the peak, the proportional split with a
vanilla random interconnect is among the winners, and strong deviations in
either dimension lose throughput.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig07 import run_fig7a, run_fig7b


def _assert_proportional_among_optima(result):
    best = max(s.peak().y for s in result.series)
    # Series whose peak is within 10% of the global best are "optima"; at
    # least one must peak at a cross-fraction >= 0.7, i.e. near vanilla
    # randomness rather than a heavily biased interconnect.
    winners = [s for s in result.series if s.peak().y >= 0.9 * best]
    assert winners
    assert any(s.peak().x >= 0.7 for s in winners)
    # Some configuration must clearly lose somewhere.
    assert min(min(s.ys()) for s in result.series) < 0.7 * best


def test_fig7a_three_to_one(benchmark):
    result = run_once(
        benchmark, run_fig7a, num_splits=4, points=5, runs=2, seed=0
    )
    print()
    print(result.to_table())
    _assert_proportional_among_optima(result)


def test_fig7b_three_to_two(benchmark):
    result = run_once(
        benchmark, run_fig7b, num_splits=4, points=5, runs=2, seed=1
    )
    print()
    print(result.to_table())
    _assert_proportional_among_optima(result)
