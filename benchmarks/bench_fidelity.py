"""Fidelity subsystem benchmarks: route precompute, sim scale, sim vs LP.

Three claims, each appended as a machine-readable record to
``BENCH_fidelity.json`` (the ROADMAP perf trajectory):

- Route-set precomputation handles an N=1000 RRG in seconds, and the
  warm path (in-process memo) is orders of magnitude faster — so
  annealing/growth inner loops never pay for routes twice.
- ``sim_ecmp`` / ``sim_mptcp`` solve N=1000 cells through ``run_grid``
  (the packet simulator caps out around N≈50), and a warm
  content-addressed cache serves the same grid with zero route
  recomputation.
- At small N the fluid simulators respect the differential contract
  (sim ≤ exact LP) at a fraction of the LP's cost.

Like the other wall-clock benchmarks, these run on demand rather than as
a required CI check (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import time

from conftest import append_record, run_once

from repro.fidelity.routes import reset_route_stats, route_set_for, route_stats
from repro.flow.solvers import SolverConfig, solve_throughput
from repro.pipeline.engine import run_grid
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic

ARTIFACT = "BENCH_fidelity.json"

#: Scale target from the tentpole: well past the packet simulator's N≈50.
LARGE_N = 1000
LARGE_DEGREE = 10

#: N=1000 grid solved by both fluid mechanisms through the pipeline.
LARGE_GRID = ScenarioGrid(
    name="bench-fidelity",
    topologies=(
        TopologySpec.make("rrg", network_degree=LARGE_DEGREE, servers_per_switch=1),
    ),
    traffics=(TrafficSpec.make("permutation"),),
    solvers=(
        SolverConfig.make("sim_ecmp", paths=8),
        SolverConfig.make("sim_mptcp", subflows=8),
    ),
    sizes=(LARGE_N,),
    seeds=1,
)


def _large_instance():
    topo = random_regular_topology(
        LARGE_N, LARGE_DEGREE, servers_per_switch=1, seed=0
    )
    traffic = random_permutation_traffic(topo, seed=1)
    return topo, traffic


def test_route_precompute_n1000(benchmark):
    """Cold k-shortest-path route sets at N=1000; warm memo is ~free."""
    topo, traffic = _large_instance()
    pairs = tuple(traffic.demands)
    reset_route_stats()
    start = time.perf_counter()
    cold = run_once(benchmark, route_set_for, topo, pairs, mode="ksp", k=8)
    cold_s = time.perf_counter() - start
    assert route_stats()["computed"] == 1
    assert len(cold.pairs) == len(pairs)

    start = time.perf_counter()
    warm = route_set_for(topo, pairs, mode="ksp", k=8)
    warm_s = time.perf_counter() - start
    assert warm is cold  # memo hit
    assert route_stats()["memo_hits"] == 1
    speedup = cold_s / max(warm_s, 1e-9)
    print(f"\ncold {cold_s:.2f}s -> warm {warm_s:.4f}s ({speedup:.0f}x)")
    assert cold_s < 60.0, f"route precompute too slow: {cold_s:.1f}s"
    assert speedup >= 20.0, f"warm route set only {speedup:.1f}x faster"
    append_record(
        ARTIFACT,
        "route_precompute_n1000",
        num_switches=LARGE_N,
        degree=LARGE_DEGREE,
        mode="ksp",
        k=8,
        pairs=len(pairs),
        cold_seconds=round(cold_s, 4),
        warm_seconds=round(warm_s, 6),
        speedup=round(speedup, 1),
    )


def test_sim_grid_n1000_cold_warm(benchmark, tmp_path):
    """Both fluid mechanisms solve N=1000 grid cells; warm cache replays
    them with zero route recomputation."""
    cache_dir = str(tmp_path / "cache")
    reset_route_stats()
    cold = run_once(benchmark, run_grid, LARGE_GRID, workers=1, cache_dir=cache_dir)
    cold_s = cold.elapsed_s
    assert cold.cache_hits == 0
    assert all(cell.throughput > 0 for cell in cold.cells)
    cold_routes = route_stats()["computed"]

    reset_route_stats()
    start = time.perf_counter()
    warm = run_grid(LARGE_GRID, workers=1, cache_dir=cache_dir)
    warm_s = time.perf_counter() - start
    assert warm.cache_hits == len(warm.cells)
    assert route_stats()["computed"] == 0
    assert [c.throughput for c in warm.cells] == [
        c.throughput for c in cold.cells
    ]
    print(f"\ncold {cold_s:.2f}s ({cold_routes} route sets) -> warm {warm_s:.3f}s")
    append_record(
        ARTIFACT,
        "sim_grid_n1000_cold_warm",
        num_switches=LARGE_N,
        degree=LARGE_DEGREE,
        solvers=["sim_ecmp(paths=8)", "sim_mptcp(subflows=8)"],
        cells=len(cold.cells),
        cold_seconds=round(cold_s, 4),
        warm_seconds=round(warm_s, 4),
        route_sets_computed=cold_routes,
    )


def test_small_n_sim_under_exact_lp(benchmark):
    """Differential contract at N=32: sim ≤ exact LP, and cheaper."""
    topo = random_regular_topology(32, 4, servers_per_switch=2, seed=0)
    traffic = random_permutation_traffic(topo, seed=1)

    start = time.perf_counter()
    exact = solve_throughput(topo, traffic, "edge_lp").throughput
    lp_s = time.perf_counter() - start

    start = time.perf_counter()
    ecmp = run_once(benchmark, solve_throughput, topo, traffic, "sim_ecmp", paths=8)
    ecmp_s = time.perf_counter() - start
    start = time.perf_counter()
    mptcp = solve_throughput(topo, traffic, "sim_mptcp", subflows=8)
    mptcp_s = time.perf_counter() - start

    assert 0 < ecmp.throughput <= exact * (1 + 1e-6)
    assert 0 < mptcp.throughput <= exact * (1 + 1e-6)
    print(
        f"\nedge_lp {lp_s:.2f}s -> sim_ecmp {ecmp_s:.3f}s, "
        f"sim_mptcp {mptcp_s:.3f}s "
        f"(ratios {ecmp.throughput / exact:.3f}, {mptcp.throughput / exact:.3f})"
    )
    append_record(
        ARTIFACT,
        "small_n_sim_under_exact_lp",
        num_switches=32,
        degree=4,
        edge_lp_seconds=round(lp_s, 4),
        sim_ecmp_seconds=round(ecmp_s, 4),
        sim_mptcp_seconds=round(mptcp_s, 4),
        ecmp_ratio=round(ecmp.throughput / exact, 4),
        mptcp_ratio=round(mptcp.throughput / exact, 4),
    )
