"""Resilience acceptance benchmarks: degraded sweeps end-to-end.

Claims measured on one grid (RRG + fat-tree x permutation x exact LP x
random-link failure axis):

- Mean throughput is monotonically non-increasing in the failure rate for
  every (topology, solver) column. Failure sets are nested by rate within
  a replicate (see ``repro.resilience.inject``), so this holds per sample
  whenever nothing is dropped — the assertion allows a small tolerance
  for served-set shrinkage, which can raise the concurrent rate of the
  survivors.
- Re-running the identical degraded sweep against a warm cache hits every
  cell and reproduces identical numbers: failure draws are deterministic,
  so degraded topologies fingerprint stably.
- The failure-free column of a degraded sweep reuses cache entries
  written by a sweep that never mentioned failures (rate 0 is
  byte-identical to "no failure axis").

Like the other wall-clock benchmarks, these run on demand rather than as
a required CI check (see .github/workflows/ci.yml); CI runs the same
shape through the ``repro-experiments sweep --failure-rates`` e2e job.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace

from conftest import run_once

from repro.experiments.resilience import run_resilience
from repro.flow.solvers import SolverConfig
from repro.pipeline.engine import run_grid
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec
from repro.resilience import FailureSpec

RATES = (0.0, 0.05, 0.1, 0.2)

GRID = ScenarioGrid(
    name="bench-resilience",
    topologies=(
        TopologySpec.make(
            "rrg", num_switches=20, network_degree=4, servers_per_switch=2
        ),
        TopologySpec.make("fat-tree", k=4),
    ),
    traffics=(TrafficSpec.make("permutation"),),
    solvers=(SolverConfig("edge_lp"), SolverConfig("ecmp")),
    seeds=3,
    failures=tuple(
        FailureSpec.make("random_links", rate=rate) for rate in RATES
    ),
)


def _mean_by_rate(sweep) -> "tuple[dict, dict]":
    """(topology, solver) -> mean-throughput-per-rate curve, plus whether
    the curve qualifies for the strict monotonicity check (exact solver,
    nothing dropped anywhere along it)."""
    groups: dict = defaultdict(lambda: defaultdict(list))
    strict: dict = defaultdict(lambda: True)
    for cell in sweep.cells:
        s = cell.scenario
        rate = s.failure.rate if s.failure is not None else 0.0
        key = (s.topology.label(), s.solver.label())
        groups[key][rate].append(cell.throughput)
        if not cell.exact or cell.dropped_pairs:
            strict[key] = False
    curves = {
        key: [
            sum(by_rate[rate]) / len(by_rate[rate])
            for rate in sorted(by_rate)
        ]
        for key, by_rate in groups.items()
    }
    return curves, dict(strict)


def test_throughput_monotone_in_failure_rate(benchmark, tmp_path):
    sweep = run_once(
        benchmark, run_grid, GRID, workers=1, cache_dir=str(tmp_path / "c")
    )
    curves, strict = _mean_by_rate(sweep)
    assert len(curves) == 4  # 2 topologies x 2 solvers
    for key, curve in curves.items():
        # Exact-LP curves with no drops are monotone by construction
        # (nested subgraphs shrink the feasible region); ECMP and curves
        # with dropped demand only track that within a band — same slack
        # rule as the CI gate.
        slack = 1e-9 if strict.get(key, True) else 0.02 * curve[0]
        print(f"\n{key}: " + " ".join(f"{v:.4f}" for v in curve))
        assert curve[0] > 0
        for previous, current in zip(curve, curve[1:]):
            assert current <= previous + slack, (
                f"{key}: mean throughput rose from {previous:.4f} to "
                f"{current:.4f} as the failure rate increased"
            )


def test_degraded_sweep_warm_cache_identical(benchmark, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = run_grid(GRID, workers=1, cache_dir=cache_dir)
    assert cold.cache_hits == 0
    warm = run_once(benchmark, run_grid, GRID, workers=1, cache_dir=cache_dir)
    assert warm.cache_hits == len(warm.cells)
    assert [c.throughput for c in warm.cells] == [
        c.throughput for c in cold.cells
    ]


def test_failure_free_column_shares_cache_with_plain_sweep(tmp_path):
    cache_dir = str(tmp_path / "cache")
    plain = replace(GRID, failures=None)
    run_grid(plain, workers=1, cache_dir=cache_dir)
    degraded = run_grid(GRID, workers=1, cache_dir=cache_dir)
    rate0 = [
        cell for cell in degraded.cells if cell.scenario.failure is None
    ]
    assert rate0 and all(cell.cache_hit for cell in rate0)


def test_resilience_experiment_random_beats_fat_tree(benchmark):
    """The qualitative claim: at matched equipment, the random fabric
    retains at least as much throughput as the fat-tree under heavy
    uniform link failure."""
    result = run_once(benchmark, run_resilience, k=4, runs=3, seed=0)
    print()
    print(result.to_table())
    random_curve = result.get_series("Random (matched equipment)")
    fat_tree_curve = result.get_series("Fat-tree (k=4)")
    heaviest = max(random_curve.xs())
    assert random_curve.y_at(heaviest) >= fat_tree_curve.y_at(heaviest) - 0.05
