"""Figure 8: mixed line-speeds (§5.2).

(a) several server splits tie — no clean optimum; (b)/(c) faster or more
high-speed links raise peak throughput, but the benefit vanishes when the
cross-cluster cut is starved.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig08 import run_fig8a, run_fig8b, run_fig8c
from repro.experiments.heterogeneity import TwoTypeConfig

CONFIG = TwoTypeConfig(6, 10, 6, 6, 48, label="bench8")


def test_fig8a_split_sweep(benchmark):
    result = run_once(
        benchmark,
        run_fig8a,
        config=CONFIG,
        high_ports_per_large=2,
        high_speed=8.0,
        num_splits=4,
        points=5,
        runs=2,
        seed=0,
    )
    print()
    print(result.to_table())
    peaks = sorted((s.peak().y for s in result.series), reverse=True)
    # "Multiple configurations having nearly the same throughput": the top
    # two splits finish within 20% of each other.
    assert len(peaks) >= 2
    assert peaks[1] >= 0.8 * peaks[0]


def test_fig8b_speed_sweep(benchmark):
    result = run_once(
        benchmark,
        run_fig8b,
        config=CONFIG,
        high_ports_per_large=2,
        speeds=(2.0, 4.0, 8.0),
        points=5,
        min_fraction=0.2,
        max_fraction=1.5,
        runs=2,
        seed=1,
    )
    print()
    print(result.to_table())
    slow = result.get_series("High-speed = 2")
    fast = result.get_series("High-speed = 8")
    top = max(fast.xs())
    assert fast.y_at(top) >= slow.y_at(top) - 1e-9


def test_fig8c_count_sweep(benchmark):
    result = run_once(
        benchmark,
        run_fig8c,
        config=CONFIG,
        high_counts=(1, 2, 3),
        high_speed=4.0,
        points=5,
        min_fraction=0.2,
        max_fraction=1.5,
        runs=2,
        seed=2,
    )
    print()
    print(result.to_table())
    few = result.get_series("1 H-links")
    many = result.get_series("3 H-links")
    assert many.peak().y >= few.peak().y - 1e-9
    # At the starved end the extra links cannot raise the minimum flow.
    bottom = min(many.xs())
    assert abs(many.y_at(bottom) - few.y_at(bottom)) < 0.35 * many.peak().y
