"""Growth acceptance benchmarks: the expansion claims, measured.

Claims measured:

- **Cheap incremental churn.** Swap growth touches ~``r/2`` links per
  arriving switch (net gain exactly ``r/2``), an order less than a
  fresh rebuild of the fabric, and its cumulative cabling bill stays a
  small fraction of the rebuild strategy's.
- **Throughput survives growth.** A fabric grown by link swaps across
  several stages lands within a few percent of a same-equipment RRG
  sampled from scratch — the Jellyfish property that makes incremental
  growth *free* rather than merely cheap.
- **The ladder steps, the random graph glides.** Along one equipment
  timeline at matched budgets, the fat-tree ladder repeats rungs (zero
  upgrade, idle switches) while the random fabric deploys every switch
  and server at every stage.
- **Warm-cache identity.** Re-running a growth campaign against a warm
  cache hits every stage cell and reproduces identical numbers.

Like the other wall-clock benchmarks these run on demand, not in CI
(see .github/workflows/ci.yml); CI runs the same shape end-to-end
through the ``repro-experiments grow`` cold/warm gate.
"""

from __future__ import annotations

from statistics import fmean

from conftest import run_once

from repro.experiments.growth import run_growth_study
from repro.growth.plan import GrowthSchedule
from repro.growth.trajectory import run_growth, run_growth_sweep

SCHEDULE = GrowthSchedule.from_targets(
    (16, 24, 32, 48),
    name="bench-growth",
    network_degree=4,
    servers_per_switch=2,
)


def test_swap_churn_is_incremental(benchmark):
    trajectory = run_once(
        benchmark, run_growth, SCHEDULE, "swap", cache=False
    )
    half_degree = SCHEDULE.network_degree // 2
    for previous, record in zip(trajectory.records, trajectory.records[1:]):
        added = record.num_switches - previous.num_switches
        print(
            f"\nstage {record.index}: +{added} switches, "
            f"{record.links_removed} removed / {record.links_added} added"
        )
        assert record.links_added - record.links_removed == added * half_degree
        assert record.links_removed <= added * half_degree


def test_swap_churn_beats_rebuild(benchmark):
    def both():
        swap = run_growth(SCHEDULE, "swap", cache=False)
        rebuild = run_growth(SCHEDULE, "rebuild", cache=False)
        return swap, rebuild

    swap, rebuild = run_once(benchmark, both)
    swap_links = sum(r.links_touched for r in swap.records[1:])
    rebuild_links = sum(r.links_touched for r in rebuild.records[1:])
    swap_cable = sum(
        r.cables_added_length + r.cables_removed_length
        for r in swap.records[1:]
    )
    rebuild_cable = sum(
        r.cables_added_length + r.cables_removed_length
        for r in rebuild.records[1:]
    )
    print(
        f"\nlinks touched: swap {swap_links} vs rebuild {rebuild_links}; "
        f"cable length: swap {swap_cable:.0f} vs rebuild {rebuild_cable:.0f}"
    )
    # Rebuilding resamples nearly every link each stage; swaps touch a
    # small multiple of the arriving equipment.
    assert swap_links < 0.75 * rebuild_links
    assert swap_cable < rebuild_cable


def test_grown_throughput_matches_fresh_rrg(benchmark):
    """Jellyfish's claim: growing by swaps costs (almost) no throughput
    versus re-sampling the random graph from scratch at final size."""
    sweep = run_once(
        benchmark,
        run_growth_sweep,
        SCHEDULE,
        ("swap", "rebuild"),
        seeds=3,
        cache=False,
    )
    finals: dict = {}
    for trajectory in sweep.trajectories:
        finals.setdefault(trajectory.strategy, []).append(
            trajectory.final().throughput
        )
    grown = fmean(finals["swap"])
    fresh = fmean(finals["rebuild"])
    print(f"\nfinal throughput: grown {grown:.4f} vs fresh {fresh:.4f}")
    assert grown >= 0.9 * fresh


def test_ladder_steps_while_random_glides(benchmark):
    result = run_once(
        benchmark,
        run_growth_study,
        start=12,
        target=32,
        num_stages=2,
        network_degree=4,
        servers_per_switch=2,
        strategies=("swap", "fattree_upgrade"),
        runs=2,
        seed=0,
    )
    print()
    print(result.to_table())
    rrg_servers = result.get_series("swap/servers").ys()
    ladder_servers = result.get_series("fattree_upgrade/servers").ys()
    # Smooth: every budget deploys strictly more servers than the last.
    assert all(b > a for a, b in zip(rrg_servers, rrg_servers[1:]))
    # Step function: at least one budget increase deploys nothing new.
    assert any(b == a for a, b in zip(ladder_servers, ladder_servers[1:]))
    ladder_churn = result.metadata["churn"]["fattree_upgrade"]
    assert any(cell["idle_switches"] > 0 for cell in ladder_churn.values())
    assert any(
        cell["links_touched"] == 0 for cell in ladder_churn.values()
    )


def test_growth_warm_cache_identical(benchmark, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = run_growth_sweep(
        SCHEDULE, ("swap", "fattree_upgrade"), seeds=2, cache_dir=cache_dir
    )
    warm = run_once(
        benchmark,
        run_growth_sweep,
        SCHEDULE,
        ("swap", "fattree_upgrade"),
        seeds=2,
        cache_dir=cache_dir,
    )
    assert warm.cache_hits == warm.num_cells
    assert [t.throughputs() for t in warm.trajectories] == [
        t.throughputs() for t in cold.trajectories
    ]
