"""Replay acceptance benchmarks: warm-started re-solve vs per-step cold.

Two claims, measured on one VDC trace over a mid-size random graph:

- Replaying the trace with warm starts (one ``EdgeLPModel`` per window,
  advanced by ``apply_demand_delta``) performs far fewer cold LP builds
  than timeline steps, and its mean per-step latency beats solving every
  step cold from scratch.
- A second replay of the same trace against the same cache answers every
  step from content-addressed entries — zero cold builds, zero solves.

Like the other wall-clock benchmarks, these run on demand rather than as
a required CI check (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import time

from conftest import append_record, run_once

from repro.flow import solve_throughput
from repro.flow.solvers import SolverConfig
from repro.pipeline.replay import ReplayPlan, run_replay
from repro.pipeline.scenario import TopologySpec
from repro.traffic.vdc import vdc_timeline

#: One window spanning the whole trace maximizes the warm chain; the
#: trace is long enough that model-build amortization dominates.
STEPS = 60
SPEC = TopologySpec.make(
    "rrg", num_switches=24, network_degree=6, servers_per_switch=4
)


def _plan(window: int = STEPS) -> ReplayPlan:
    topo = SPEC.build(seed=5)
    timeline = vdc_timeline(
        topo,
        seed=5,
        steps=STEPS,
        arrival_rate=2.0,
        mean_vms=5.0,
        mean_duration=12.0,
    )
    return ReplayPlan(
        name="bench-replay",
        topology=SPEC,
        timeline=timeline,
        solver=SolverConfig.make("edge_lp"),
        seed=5,
        window=window,
    )


def test_warm_replay_beats_cold_steps(benchmark):
    plan = _plan()
    warm = run_once(benchmark, run_replay, plan)
    assert warm.cold_builds < plan.num_steps, (
        f"{warm.cold_builds} cold builds for {plan.num_steps} steps — "
        "warm starts are not engaging"
    )
    warm_step_s = warm.elapsed_s / plan.num_steps

    # Cold reference: solve every step's matrix independently.
    topo = plan.build_topology()
    start = time.perf_counter()
    cold_series = [
        solve_throughput(topo, matrix, "edge_lp").throughput
        for matrix in plan.timeline.matrices()
    ]
    cold_s = time.perf_counter() - start
    cold_step_s = cold_s / plan.num_steps

    worst = max(
        abs(a - b) for a, b in zip(warm.throughput_series(), cold_series)
    )
    assert worst < 1e-9, f"warm replay diverged from cold solves by {worst}"
    speedup = cold_step_s / warm_step_s
    print(
        f"\ncold {cold_step_s * 1e3:.1f}ms/step -> warm "
        f"{warm_step_s * 1e3:.1f}ms/step ({speedup:.1f}x), "
        f"{warm.cold_builds} cold builds / {plan.num_steps} steps"
    )
    assert warm_step_s < cold_step_s, (
        f"warm replay ({warm_step_s * 1e3:.1f}ms/step) did not beat "
        f"per-step cold solves ({cold_step_s * 1e3:.1f}ms/step)"
    )
    append_record(
        "BENCH_pipeline.json",
        "replay_warm_vs_cold",
        steps=plan.num_steps,
        cold_builds=warm.cold_builds,
        warm_steps=warm.warm_steps,
        cold_ms_per_step=round(cold_step_s * 1e3, 3),
        warm_ms_per_step=round(warm_step_s * 1e3, 3),
        speedup=round(speedup, 2),
    )


def test_cached_replay_rerun_is_free(benchmark, tmp_path):
    plan = _plan(window=16)
    cache_dir = str(tmp_path / "cache")
    cold = run_replay(plan, cache_dir=cache_dir)
    warm = run_once(benchmark, run_replay, plan, cache_dir=cache_dir)
    assert warm.cold_builds == 0 and warm.fallback_solves == 0
    assert warm.cache_hits == plan.num_steps
    assert warm.throughput_series() == cold.throughput_series()
    speedup = cold.elapsed_s / warm.elapsed_s
    print(
        f"\nfirst run {cold.elapsed_s:.2f}s -> cached rerun "
        f"{warm.elapsed_s:.3f}s ({speedup:.0f}x)"
    )
    append_record(
        "BENCH_pipeline.json",
        "replay_cached_rerun",
        steps=plan.num_steps,
        first_seconds=round(cold.elapsed_s, 4),
        rerun_seconds=round(warm.elapsed_s, 4),
        speedup=round(speedup, 1),
    )
