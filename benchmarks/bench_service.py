"""Service acceptance benchmarks: cached-answer latency and preemption.

Two claims about the evaluation service (`repro.service`):

- A fully-cached grid is answered from the grid memo without touching
  the scheduler or spawning a worker — the whole submit costs
  microseconds-to-milliseconds, not a solve.
- An interactive query submitted while a bulk sweep occupies the (one)
  worker completes after at most one in-flight item drains, far before
  the bulk sweep finishes — the two-level priority queue at work.

Like the other wall-clock benchmarks, these run on demand rather than
as a required CI check (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import time

from conftest import append_record, run_once

from repro.flow.solvers import SolverConfig
from repro.pipeline.engine import run_grid
from repro.pipeline.executors import ThreadExecutor
from repro.pipeline.jobs import GridJob
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec
from repro.pipeline.scheduler import BULK, INTERACTIVE, GridScheduler
from repro.service import EvalService

#: Exact-LP cells sized so each work item costs real solver time (the
#: preemption claim is empty if bulk items finish instantly).
BULK_GRID = ScenarioGrid(
    name="bench-service-bulk",
    topologies=(
        TopologySpec.make("rrg", network_degree=8, servers_per_switch=5),
    ),
    traffics=(TrafficSpec.make("permutation"),),
    solvers=(SolverConfig("edge_lp"),),
    sizes=(28, 32),
    seeds=2,
)

QUERY_GRID = ScenarioGrid(
    name="bench-service-query",
    topologies=(
        TopologySpec.make("rrg", network_degree=6, servers_per_switch=4),
    ),
    traffics=(TrafficSpec.make("permutation"),),
    solvers=(SolverConfig("ecmp"),),
    sizes=(16,),
    seeds=1,
)


def test_cached_answer_latency(benchmark, tmp_path):
    with EvalService(workers=1, cache_dir=str(tmp_path / "cache")) as service:
        _, handle, _ = service.submit(QUERY_GRID)
        handle.result(timeout=300)

        def warm_submit():
            _, h, cached = service.submit(QUERY_GRID)
            assert h is None and cached is not None
            return cached

        # Latency distribution over repeated memo answers.
        samples = []
        for _ in range(200):
            start = time.perf_counter()
            warm_submit()
            samples.append(time.perf_counter() - start)
        run_once(benchmark, warm_submit)
        samples.sort()
        p50 = samples[len(samples) // 2]
        p95 = samples[int(len(samples) * 0.95)]
        print(f"\ncached answer p50 {p50 * 1e6:.0f}us, p95 {p95 * 1e6:.0f}us")
        assert p50 < 0.05, f"memo answer took {p50 * 1e3:.1f}ms at p50"
        append_record(
            "BENCH_pipeline.json",
            "service_cached_answer_latency",
            cells=len(QUERY_GRID),
            p50_us=round(p50 * 1e6, 1),
            p95_us=round(p95 * 1e6, 1),
        )


def test_interactive_preemption_delay(benchmark):
    reference = run_grid(QUERY_GRID)

    def preempted_query() -> dict:
        executor = ThreadExecutor(workers=1)
        timings: dict = {}
        with GridScheduler(executor, max_in_flight=1) as scheduler:
            bulk = scheduler.submit(GridJob(BULK_GRID), priority=BULK)
            # Let the first bulk item reach the worker before querying.
            time.sleep(0.05)
            start = time.perf_counter()
            query = scheduler.submit(GridJob(QUERY_GRID), priority=INTERACTIVE)
            assert query.wait(300)
            timings["query_s"] = time.perf_counter() - start
            assert bulk.wait(600)
            timings["bulk_s"] = time.perf_counter() - start
            cells = query.job.result_cells()
            assert [c.throughput for c in cells] == [
                c.throughput for c in reference.cells
            ]
        executor.shutdown(wait=False)
        return timings

    timings = run_once(benchmark, preempted_query)
    print(
        f"\ninteractive query {timings['query_s']:.2f}s vs bulk drain "
        f"{timings['bulk_s']:.2f}s"
    )
    # The query jumps the queued bulk items: it must finish well before
    # the sweep, which still has most of its items to solve.
    assert timings["query_s"] < timings["bulk_s"] / 2
    append_record(
        "BENCH_pipeline.json",
        "service_preemption_delay",
        bulk_cells=len(BULK_GRID),
        query_cells=len(QUERY_GRID),
        query_seconds=round(timings["query_s"], 4),
        bulk_seconds=round(timings["bulk_s"], 4),
    )
