"""Solver hot path: incremental LP reuse and the N = 100,000 estimator ladder.

Publishes the two raw-speed claims of the solver pass into
``BENCH_solvers.json`` (append-only; the CI perf gate compares the newest
record against the committed trajectory — see ``docs/performance.md``):

- annealing against the exact edge LP with the reusable
  :class:`~repro.flow.incremental.EdgeLPModel` is >= 3x faster end-to-end
  than cold per-swap solves at N = 64, with identical optima (the warm
  winner re-solved cold agrees to 1e-9), and
- the estimator ladder (``bound`` / ``cut`` / ``spectral``) completes an
  N = 100,000 RRG cell end-to-end, with per-rung timings.
"""

from __future__ import annotations

import time

from conftest import append_record, run_once

from repro.estimate.batch import LADDER_SOLVERS, SharedArtifacts, run_ladder
from repro.flow.edge_lp import max_concurrent_flow
from repro.search.annealing import CoolingSchedule, anneal
from repro.search.objectives import LPThroughputObjective
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic

# Anneal design point: paper regime, big enough that the LP dominates.
ANNEAL_SWITCHES = 64
ANNEAL_DEGREE = 8
ANNEAL_STEPS = 8
ANNEAL_SEED = 7
#: Fixed schedule so both runs skip temperature calibration (which would
#: add solver calls outside the timed swap loop) and sample identical
#: swap/acceptance streams.
ANNEAL_SCHEDULE = CoolingSchedule(
    initial_temperature=0.05, final_temperature=0.001
)

LADDER_SWITCHES = 100_000
LADDER_DEGREE = 8
#: Horvitz-Thompson source sample for ``bound`` at N = 100,000 — the
#: exact all-sources BFS alone would dwarf every other rung.
LADDER_BOUND_SOURCES = 256


def _anneal_pair():
    topo = random_regular_topology(
        ANNEAL_SWITCHES, ANNEAL_DEGREE, servers_per_switch=1, seed=0
    )
    traffic = random_permutation_traffic(topo, seed=1)
    timings = {}
    results = {}
    for label, incremental in (("warm", True), ("cold", False)):
        objective = LPThroughputObjective(traffic, incremental=incremental)
        start = time.perf_counter()
        results[label] = anneal(
            topo,
            objective,
            steps=ANNEAL_STEPS,
            seed=ANNEAL_SEED,
            schedule=ANNEAL_SCHEDULE,
        )
        timings[label] = time.perf_counter() - start
    return topo, traffic, results, timings


def test_incremental_anneal_speedup(benchmark):
    topo, traffic, results, timings = run_once(benchmark, _anneal_pair)
    warm, cold = results["warm"], results["cold"]
    speedup = timings["cold"] / timings["warm"]
    # Same swap stream, same schedule: the reused model must land on the
    # same optimum the cold per-swap solves land on...
    assert abs(warm.best_score - cold.best_score) <= 1e-9, (
        f"warm optimum {warm.best_score!r} != cold {cold.best_score!r}"
    )
    # ...and the mutated model's score must match a from-scratch solve of
    # the winning topology (the incremental state never drifts).
    resolve = max_concurrent_flow(warm.topology, traffic).throughput
    assert abs(resolve - warm.best_score) <= 1e-9, (
        f"cold re-solve {resolve!r} != warm best {warm.best_score!r}"
    )
    assert speedup >= 3.0, f"incremental anneal only {speedup:.2f}x faster"
    print()
    print(
        f"anneal N={ANNEAL_SWITCHES} d={ANNEAL_DEGREE} "
        f"steps={ANNEAL_STEPS}: warm {timings['warm']:.1f}s "
        f"cold {timings['cold']:.1f}s ({speedup:.1f}x), "
        f"optimum {warm.best_score:.6f}"
    )
    append_record(
        "BENCH_solvers.json",
        "incremental_anneal_n64",
        num_switches=ANNEAL_SWITCHES,
        network_degree=ANNEAL_DEGREE,
        steps=ANNEAL_STEPS,
        warm_seconds=round(timings["warm"], 4),
        cold_seconds=round(timings["cold"], 4),
        speedup=round(speedup, 2),
        best_score=warm.best_score,
    )


def _ladder_100k():
    timings = {}
    start = time.perf_counter()
    topo = random_regular_topology(
        LADDER_SWITCHES, LADDER_DEGREE, servers_per_switch=1, seed=0
    )
    timings["build"] = time.perf_counter() - start
    start = time.perf_counter()
    traffic = random_permutation_traffic(topo, seed=1)
    timings["traffic"] = time.perf_counter() - start
    options = {"bound": {"max_sources": LADDER_BOUND_SOURCES}}
    store = SharedArtifacts()
    results = {}
    for name in LADDER_SOLVERS:
        start = time.perf_counter()
        results.update(
            run_ladder(topo, traffic, solvers=(name,), options=options,
                       store=store)
        )
        timings[name] = time.perf_counter() - start
    return results, timings, store.stats


def test_estimator_ladder_100k(benchmark):
    results, timings, stats = run_once(benchmark, _ladder_100k)
    total = sum(timings.values())
    for name in LADDER_SOLVERS:
        assert results[name].is_estimate
        assert results[name].throughput > 0.0
    # One eigensolve feeds both cut and spectral; one CSR feeds bound.
    assert stats["fiedler_solves"] == 1
    assert stats["fiedler_hits"] >= 1
    print()
    print(
        f"ladder N={LADDER_SWITCHES}: "
        + " ".join(f"{k}={v:.1f}s" for k, v in timings.items())
        + f" total={total:.1f}s"
    )
    append_record(
        "BENCH_solvers.json",
        "estimator_ladder_100k",
        num_switches=LADDER_SWITCHES,
        network_degree=LADDER_DEGREE,
        bound_max_sources=LADDER_BOUND_SOURCES,
        build_seconds=round(timings["build"], 4),
        bound_seconds=round(timings["bound"], 4),
        cut_seconds=round(timings["cut"], 4),
        spectral_seconds=round(timings["spectral"], 4),
        total_seconds=round(total, 4),
        throughput_bound=results["bound"].throughput,
        throughput_cut=results["cut"].throughput,
        throughput_spectral=results["spectral"].throughput,
    )
