"""Design-engine acceptance benchmarks: frontier quality and warm reruns.

Two claims, measured on the default catalog at CI scale:

- One ``run_design`` call over every generator family produces a
  non-empty Pareto frontier on which a random-family design dominates
  the matched-cost fat-tree (the paper's headline, as a design result).
- A second run of the same (spec, catalog) pair against the same cache
  performs zero cold solves and reproduces the frontier exactly.

The wall-clock records append to ``BENCH_design.json``;
``check_perf_gate.py`` gates the cold-run trajectory.
"""

from __future__ import annotations

from conftest import append_record, run_once

from repro.design import DesignSpec, run_design

SPEC = DesignSpec.make(budget=50_000.0, servers=16, replicates=2)


def test_design_cold_then_warm_rerun(benchmark, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = run_design(SPEC, cache_dir=cache_dir)

    frontier = cold.frontier()
    assert frontier, "empty Pareto frontier"
    dominance = cold.dominance()
    assert dominance["confirmed"], (
        "no random-family design dominated a matched-cost fat-tree"
    )
    assert cold.cold_solves > 0 and cold.cache_hits == 0

    warm = run_once(benchmark, run_design, SPEC, cache_dir=cache_dir)
    assert warm.cold_solves == 0, (
        f"warm rerun performed {warm.cold_solves} cold solves"
    )
    assert warm.cache_hits == cold.cold_solves
    assert [p.label() for p in warm.frontier()] == [
        p.label() for p in frontier
    ]
    assert {p.label(): p.metrics for p in warm.points} == {
        p.label(): p.metrics for p in cold.points
    }, "warm cache changed numbers"

    speedup = cold.elapsed_s / max(warm.elapsed_s, 1e-9)
    print(
        f"\ncold {cold.elapsed_s:.2f}s ({cold.cold_solves} solves, "
        f"{len(frontier)} frontier / {len(cold.points)} evaluated, "
        f"{len(dominance['pairs'])} dominating pairs) -> warm "
        f"{warm.elapsed_s:.2f}s ({speedup:.0f}x)"
    )
    append_record(
        "BENCH_design.json",
        "design_cold_run",
        budget=SPEC.budget,
        servers=SPEC.servers,
        evaluated=len(cold.points),
        frontier_size=len(frontier),
        dominating_pairs=len(dominance["pairs"]),
        cold_solves=cold.cold_solves,
        cold_seconds=round(cold.elapsed_s, 4),
        warm_seconds=round(warm.elapsed_s, 4),
        speedup=round(speedup, 1),
    )
