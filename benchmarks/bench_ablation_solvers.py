"""Ablation: the three flow engines on one instance.

Benchmarks the exact arc LP, the k-shortest-path LP, and the
Garg-Koenemann approximation on the same RRG + permutation, asserting the
expected ordering: path-LP and GK lower-bound the exact optimum and land
within a few percent of it on random graphs.

This is a genuine pytest-benchmark comparison (multiple rounds), since a
single solve is cheap at this size.
"""

from __future__ import annotations

import pytest

from repro.flow.approx import garg_koenemann_throughput
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.path_lp import max_concurrent_flow_paths
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic


@pytest.fixture(scope="module")
def instance():
    topo = random_regular_topology(20, 6, servers_per_switch=5, seed=42)
    traffic = random_permutation_traffic(topo, seed=43)
    exact = max_concurrent_flow(topo, traffic).throughput
    return topo, traffic, exact


def test_edge_lp(benchmark, instance):
    topo, traffic, exact = instance
    result = benchmark(lambda: max_concurrent_flow(topo, traffic))
    assert result.throughput == pytest.approx(exact)


def test_path_lp_k8(benchmark, instance):
    topo, traffic, exact = instance
    result = benchmark(lambda: max_concurrent_flow_paths(topo, traffic, k=8))
    assert result.throughput <= exact * (1 + 1e-6)
    assert result.throughput >= 0.95 * exact


def test_garg_koenemann(benchmark, instance):
    topo, traffic, exact = instance
    result = benchmark(
        lambda: garg_koenemann_throughput(topo, traffic, epsilon=0.1)
    )
    assert result.throughput <= exact * (1 + 1e-6)
    assert result.throughput >= 0.85 * exact
