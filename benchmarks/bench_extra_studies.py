"""Extension-study benchmarks (not paper figures).

Regenerates the three extension studies (routing policies, cabling trade,
latency-vs-load) and asserts their headline orderings.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.extra import (
    run_extra_cabling,
    run_extra_latency,
    run_extra_routing,
)


def test_extra_routing(benchmark):
    result = run_once(
        benchmark,
        run_extra_routing,
        num_switches=16,
        degrees=(4, 6, 8),
        servers_per_switch=4,
        runs=2,
        seed=0,
    )
    print()
    print(result.to_table())
    multipath = result.get_series("8-shortest multipath")
    ecmp = result.get_series("ECMP (per-hop)")
    assert min(multipath.ys()) >= 0.85
    # ECMP forfeits real capacity on random graphs somewhere in the sweep.
    assert min(ecmp.ys()) < 0.9


def test_extra_cabling(benchmark):
    result = run_once(
        benchmark,
        run_extra_cabling,
        num_per_cluster=8,
        network_ports=8,
        servers_per_switch=4,
        fractions=(0.3, 0.6, 1.0, 1.25),
        runs=2,
        seed=1,
    )
    print()
    print(result.to_table())
    cable = result.get_series("Mean cable length")
    assert cable.ys() == sorted(cable.ys())


def test_extra_latency(benchmark):
    result = run_once(
        benchmark,
        run_extra_latency,
        num_switches=10,
        degree=4,
        loads=(2, 6),
        duration=150.0,
        warmup=60.0,
        runs=2,
        seed=2,
    )
    print()
    print(result.to_table())
    p50 = result.get_series("p50 delay")
    assert p50.y_at(6) > p50.y_at(2)
