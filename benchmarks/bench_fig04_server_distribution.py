"""Figure 4: server distribution across switch types (§5.1).

All three panels (port ratios, switch counts, oversubscription) peak at the
proportional placement ratio x = 1, and throughput collapses toward both
extremes of the sweep.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig04 import run_fig4a, run_fig4b, run_fig4c


def _assert_peak_near_proportional(result, low=0.5, high=1.6):
    for series in result.series:
        peak_x = series.peak().x
        assert low <= peak_x <= high, f"{series.name} peaked at {peak_x}"
        ys = series.ys()
        assert ys[0] <= series.peak().y
        assert ys[-1] <= series.peak().y


def test_fig4a_port_ratios(benchmark):
    result = run_once(benchmark, run_fig4a, max_points=7, runs=2, seed=0)
    print()
    print(result.to_table())
    _assert_peak_near_proportional(result)


def test_fig4b_switch_counts(benchmark):
    result = run_once(benchmark, run_fig4b, max_points=7, runs=2, seed=1)
    print()
    print(result.to_table())
    _assert_peak_near_proportional(result)


def test_fig4c_oversubscription(benchmark):
    result = run_once(benchmark, run_fig4c, max_points=7, runs=2, seed=2)
    print()
    print(result.to_table())
    _assert_peak_near_proportional(result)
