"""Figure 5: power-law switch populations, servers proportional to k^beta.

beta = 1 (the proportional rule) must land within the optimal plateau; the
extreme allocations (beta 0 or 1.6) lose throughput.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig05 import run_fig5


def test_fig5_beta_sweep(benchmark):
    result = run_once(
        benchmark,
        run_fig5,
        num_switches=20,
        mean_ports_options=(6.0, 8.0),
        betas=(0.0, 0.4, 0.8, 1.0, 1.2, 1.6),
        runs=3,
        seed=0,
    )
    print()
    print(result.to_table())
    for series in result.series:
        best = series.peak().y
        assert series.y_at(1.0) >= 0.8 * best
        # At least one extreme is clearly worse than the plateau.
        assert min(series.y_at(0.0), series.y_at(1.6)) <= 0.95 * best
