"""Figure 10: Equation-1 bound vs observed throughput.

Uniform line-speeds: the bound is valid and reasonably tight on the
plateau. Mixed line-speeds: still valid but can be loose.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig10 import run_fig10a, run_fig10b
from repro.experiments.heterogeneity import TwoTypeConfig


def test_fig10a_uniform_cases(benchmark):
    cases = (
        TwoTypeConfig(6, 12, 12, 6, 60, label="A"),
        TwoTypeConfig(6, 12, 12, 8, 72, label="B"),
    )
    result = run_once(
        benchmark,
        run_fig10a,
        cases=cases,
        points=6,
        min_fraction=0.1,
        max_fraction=1.6,
        runs=2,
        seed=0,
    )
    print()
    print(result.to_table())
    for label in ("A", "B"):
        bound = result.get_series(f"Bound {label}")
        observed = result.get_series(f"Throughput {label}")
        for x in observed.xs():
            assert observed.y_at(x) <= bound.y_at(x) * 1.35 + 1e-9
        top = observed.xs()[-1]
        assert observed.y_at(top) >= 0.45 * bound.y_at(top)


def test_fig10b_mixed_cases(benchmark):
    cases = (
        (TwoTypeConfig(6, 10, 6, 6, 48, label="A"), 2, 4.0),
        (TwoTypeConfig(6, 10, 6, 6, 48, label="B"), 2, 8.0),
    )
    result = run_once(
        benchmark,
        run_fig10b,
        cases=cases,
        points=5,
        min_fraction=0.2,
        max_fraction=1.6,
        runs=2,
        seed=1,
    )
    print()
    print(result.to_table())
    for label in ("A", "B"):
        bound = result.get_series(f"Bound {label}")
        observed = result.get_series(f"Throughput {label}")
        for x in observed.xs():
            assert observed.y_at(x) <= bound.y_at(x) * 1.35 + 1e-9
