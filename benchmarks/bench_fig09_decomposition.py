"""Figure 9: throughput decomposition — utilization explains throughput.

Re-analyses the placement, cross-cluster, and mixed-speed sweeps; in each,
utilization must move over a wider range than inverse path length, and at
the bottleneck end it must sit closer to throughput than inverse path
length does.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig09 import run_fig9a, run_fig9b, run_fig9c
from repro.experiments.heterogeneity import TwoTypeConfig


def _swing(series) -> float:
    ys = series.ys()
    return max(ys) - min(ys)


def test_fig9a_placement_decomposition(benchmark):
    config = TwoTypeConfig(6, 12, 12, 6, 60, label="bench9a")
    result = run_once(
        benchmark, run_fig9a, config=config, max_points=7, runs=2, seed=0
    )
    print()
    print(result.to_table())
    throughput = result.get_series("Throughput")
    utilization = result.get_series("Utilization")
    assert _swing(throughput) > 0.15
    # Utilization moves with throughput across the sweep.
    assert _swing(utilization) > 0.1


def test_fig9b_cross_decomposition(benchmark):
    config = TwoTypeConfig(6, 12, 12, 6, 60, label="bench9b")
    result = run_once(
        benchmark,
        run_fig9b,
        config=config,
        points=6,
        min_fraction=0.05,
        max_fraction=1.5,
        runs=2,
        seed=1,
    )
    print()
    print(result.to_table())
    throughput = result.get_series("Throughput")
    utilization = result.get_series("Utilization")
    spl = result.get_series("Inverse SPL")
    assert _swing(utilization) > _swing(spl)
    bottom = min(throughput.xs())
    t0 = throughput.y_at(bottom)
    assert abs(utilization.y_at(bottom) - t0) < abs(spl.y_at(bottom) - t0)


def test_fig9c_mixed_speed_decomposition(benchmark):
    config = TwoTypeConfig(6, 10, 6, 6, 48, label="bench9c")
    result = run_once(
        benchmark,
        run_fig9c,
        config=config,
        high_ports_per_large=1,
        high_speed=4.0,
        points=5,
        min_fraction=0.1,
        max_fraction=1.5,
        runs=2,
        seed=2,
    )
    print()
    print(result.to_table())
    stretch = result.get_series("Inverse Stretch")
    # Optimal routing keeps stretch near 1 across the sweep.
    assert all(abs(y - 1.0) < 0.25 for y in stretch.ys())
