"""Figure 6: throughput vs. cross-cluster connectivity (§5.1).

Each panel shows the same two-regime shape: a collapse when the cross
cluster cut is starved, and a wide stable region around the unbiased-random
operating point.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig06 import run_fig6a, run_fig6b, run_fig6c


def _assert_two_regimes(result):
    for series in result.series:
        ys = series.ys()
        peak = series.peak().y
        # Starved cut collapses throughput...
        assert ys[0] < 0.75 * peak, series.name
        # ... while the upper half of the sweep is comparatively stable.
        upper = ys[len(ys) // 2 :]
        assert min(upper) >= 0.6 * peak, series.name


def test_fig6a_port_ratios(benchmark):
    result = run_once(
        benchmark, run_fig6a, points=7, min_fraction=0.08, runs=2, seed=0
    )
    print()
    print(result.to_table())
    _assert_two_regimes(result)


def test_fig6b_switch_counts(benchmark):
    result = run_once(
        benchmark, run_fig6b, points=7, min_fraction=0.08, runs=2, seed=1
    )
    print()
    print(result.to_table())
    _assert_two_regimes(result)


def test_fig6c_oversubscription(benchmark):
    result = run_once(
        benchmark, run_fig6c, points=7, min_fraction=0.08, runs=2, seed=2
    )
    print()
    print(result.to_table())
    _assert_two_regimes(result)
