"""Figure 11: the C-bar-star threshold marks the guaranteed drop point.

For every configuration, every sampled point with cross capacity below the
analytically derived threshold must sit strictly below the measured peak.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig11 import run_fig11
from repro.experiments.heterogeneity import TwoTypeConfig


def test_fig11_thresholds(benchmark):
    configs = (
        TwoTypeConfig(6, 12, 12, 6, 60, label="cfg1"),
        TwoTypeConfig(6, 12, 12, 8, 72, label="cfg2"),
        TwoTypeConfig(8, 10, 8, 8, 64, label="cfg3"),
        TwoTypeConfig(6, 10, 6, 6, 48, label="cfg4"),
    )
    result = run_once(
        benchmark,
        run_fig11,
        configs=configs,
        points=7,
        min_fraction=0.08,
        max_fraction=1.0,
        runs=2,
        seed=0,
    )
    print()
    print(result.to_table())
    print("thresholds:", {
        name: round(x, 3) for name, x in result.metadata["thresholds"].items()
    })
    checked = 0
    for series in result.series:
        threshold = result.metadata["thresholds"][series.name]
        peak = result.metadata["peaks"][series.name]
        for point in series.sorted_points():
            if point.x < threshold * 0.98:
                assert point.y < peak - 1e-9, (
                    f"{series.name}: point below threshold not below peak"
                )
                checked += 1
    assert checked > 0, "sweep never probed below the threshold"
