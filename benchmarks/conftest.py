"""Benchmark-suite configuration.

Every benchmark regenerates one paper figure at CI scale via
``benchmark.pedantic(..., rounds=1)`` (experiment sweeps are far too heavy
for pytest-benchmark's auto-calibration), prints the figure's series table
(run with ``-s`` to see it), and asserts the figure's qualitative claim.

Paper-scale parameter sets are available through the CLI:
``repro-experiments run <fig-id> --paper``.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under benchmark timing and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
