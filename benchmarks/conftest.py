"""Benchmark-suite configuration.

Every benchmark regenerates one paper figure at CI scale via
``benchmark.pedantic(..., rounds=1)`` (experiment sweeps are far too heavy
for pytest-benchmark's auto-calibration), prints the figure's series table
(run with ``-s`` to see it), and asserts the figure's qualitative claim.

Paper-scale parameter sets are available through the CLI:
``repro-experiments run <fig-id> --paper``.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path

#: Artifact format for the repo-root ``BENCH_*.json`` perf trajectory
#: (ROADMAP: record timings so re-anchors can see the perf curve).
BENCH_SCHEMA_VERSION = 1
REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_short_sha() -> str:
    """The repo's HEAD short SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under benchmark timing and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def append_record(artifact: str, benchmark: str, **fields) -> None:
    """Append one machine-readable timing record to a repo-root artifact.

    The artifact is append-only JSON — ``{"schema_version": 1,
    "records": [...]}`` — so successive benchmark runs (and future
    re-anchors) extend the same trajectory instead of overwriting it.
    """
    path = REPO_ROOT / artifact
    if path.exists():
        payload = json.loads(path.read_text())
        version = payload.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise ValueError(f"{artifact}: unknown schema_version {version!r}")
    else:
        payload = {"schema_version": BENCH_SCHEMA_VERSION, "records": []}
    payload["records"].append(
        {
            "benchmark": benchmark,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "python": platform.python_version(),
            "git_sha": _git_short_sha(),
            **fields,
        }
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
