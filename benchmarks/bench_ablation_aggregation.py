"""Ablation: source-aggregated vs per-pair commodities in the exact LP.

DESIGN.md motivates aggregating commodities by source switch; this bench
verifies the optima coincide and measures the speedup the aggregation buys
(typically several-fold at permutation pair counts).
"""

from __future__ import annotations

import pytest

from repro.flow.edge_lp import max_concurrent_flow
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic


@pytest.fixture(scope="module")
def instance():
    topo = random_regular_topology(16, 5, servers_per_switch=4, seed=7)
    traffic = random_permutation_traffic(topo, seed=8)
    return topo, traffic


def test_aggregated(benchmark, instance):
    topo, traffic = instance
    result = benchmark(
        lambda: max_concurrent_flow(topo, traffic, aggregate_by_source=True)
    )
    assert result.throughput > 0


def test_per_pair(benchmark, instance):
    topo, traffic = instance
    aggregated = max_concurrent_flow(topo, traffic, aggregate_by_source=True)
    result = benchmark(
        lambda: max_concurrent_flow(topo, traffic, aggregate_by_source=False)
    )
    assert result.throughput == pytest.approx(aggregated.throughput, rel=1e-6)
