"""Figure 2: RRG throughput and ASPL vs. the bounds, size sweep.

The degree is fixed and the network grows sparser rightward; the
permutation throughput ratio stays high and ASPL hugs its bound.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig02 import run_fig2a, run_fig2b


def test_fig2a_throughput_ratio(benchmark):
    result = run_once(
        benchmark,
        run_fig2a,
        sizes=(12, 16, 24, 32),
        network_degree=8,
        servers_per_switch_options=(5,),
        include_all_to_all=True,
        all_to_all_size_cap=24,
        runs=2,
        seed=0,
    )
    print()
    print(result.to_table())
    perm = result.get_series("Permutation (5 servers per switch)")
    assert all(y >= 0.6 for y in perm.ys())


def test_fig2b_aspl_vs_bound(benchmark):
    result = run_once(
        benchmark,
        run_fig2b,
        sizes=(15, 25, 40, 60, 90),
        network_degree=10,
        runs=3,
        seed=0,
    )
    print()
    print(result.to_table())
    observed = result.get_series("Observed ASPL")
    bound = result.get_series("ASPL lower-bound")
    for x in observed.xs():
        assert observed.y_at(x) >= bound.y_at(x) - 1e-9
        assert observed.y_at(x) <= bound.y_at(x) * 1.35
