#!/usr/bin/env python
"""How much throughput do random regular graphs leave on the table?

Runs the search-vs-random study end-to-end: anneal RRGs toward minimum
ASPL with the topology search engine, measure exact LP throughput of the
optimized and the random topologies under one permutation workload, and
report the gap against the Theorem 1 upper bound. A small gap *measured
by an optimizer that tried hard to beat the random graphs* is the paper's
near-optimality claim as data.

Usage (from the repository root)::

    PYTHONPATH=src python experiments/search_vs_random.py
    PYTHONPATH=src python experiments/search_vs_random.py --smoke   # CI
    PYTHONPATH=src python experiments/search_vs_random.py \
        --points 40x5 64x7 --steps 4000 --samples 5 --runs 4

Also measures the incremental-ASPL engine against full recomputation
(skip with ``--no-bench``).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.search_study import (
    run_incremental_speedup,
    run_search_vs_random,
)


def _parse_point(text: str) -> tuple[int, int]:
    try:
        n, _, r = text.partition("x")
        return int(n), int(r)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected SWITCHESxDEGREE (e.g. 40x5), got {text!r}"
        )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--points",
        nargs="+",
        type=_parse_point,
        default=[(16, 5), (24, 5), (32, 5), (40, 5)],
        metavar="NxR",
        help="(switches, degree) points, e.g. 40x5 "
        "(default: 16x5 24x5 32x5 40x5)",
    )
    parser.add_argument("--steps", type=int, default=1500, help="annealing steps")
    parser.add_argument(
        "--samples", type=int, default=3, help="random RRGs per point"
    )
    parser.add_argument(
        "--runs", type=int, default=1, help="parallel annealing restarts"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--bench-switches",
        type=int,
        default=500,
        help="graph size for the incremental-ASPL benchmark",
    )
    parser.add_argument(
        "--no-bench",
        action="store_true",
        help="skip the incremental-vs-full recomputation benchmark",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration for CI smoke runs (~seconds)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.points = [(16, 5)]
        args.steps = 200
        args.samples = 2
        args.bench_switches = 120

    result = run_search_vs_random(
        points=tuple(args.points),
        steps=args.steps,
        samples=args.samples,
        num_runs=args.runs,
        seed=args.seed,
    )
    print(result.to_table())
    print()
    for label, gap in result.metadata["gaps_pct"].items():
        print(f"  {label}: optimized beats random by {gap:+.2f}%")
    print(
        f"  gap range: {result.metadata['min_gap_pct']:.2f}% .. "
        f"{result.metadata['max_gap_pct']:.2f}% "
        "(small graphs are beatable; by the paper's regime random RRGs "
        "are within a few percent of optimized)"
    )

    if not args.no_bench:
        print()
        speedup = run_incremental_speedup(
            num_switches=args.bench_switches, seed=args.seed
        )
        print(speedup.to_table())
        print(
            f"  incremental {speedup.metadata['incremental_ms']:.2f} ms/swap vs "
            f"full {speedup.metadata['full_ms']:.2f} ms "
            f"({speedup.metadata['speedup']:.1f}x faster)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
