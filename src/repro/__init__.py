"""repro — reproduction of "High Throughput Data Center Topology Design".

Singla, Godfrey, Kolla (NSDI 2014). The library provides:

- :mod:`repro.topology` — capacitated switch-level topologies: random
  regular graphs, controlled two-cluster networks, heterogeneous port/line
  speed populations, VL2 and the paper's rewired VL2, plus classical
  baselines,
- :mod:`repro.traffic` — permutation / all-to-all / chunky and other
  traffic matrices,
- :mod:`repro.flow` — exact max concurrent flow (LP), path-restricted LP,
  and a Garg-Koenemann approximation, with the §6.1 throughput
  decomposition,
- :mod:`repro.metrics` — path lengths, cuts, and spectral expansion,
- :mod:`repro.estimate` — calibrated throughput estimators that take
  sweeps to N = 10,000 (capacity-charging bound, sampled cuts, spectral,
  sampled LP) with per-family error bands,
- :mod:`repro.growth` — multi-stage incremental expansion planning and
  throughput-trajectory evaluation (swap growth vs the fat-tree upgrade
  ladder),
- :mod:`repro.core` — the paper's bounds, design rules, two-regime theory,
  and the VL2 improvement pipeline,
- :mod:`repro.simulation` — a packet-level MPTCP simulator,
- :mod:`repro.experiments` — a harness regenerating every figure.

Quickstart::

    from repro import (
        random_regular_topology, random_permutation_traffic,
        max_concurrent_flow, throughput_upper_bound,
    )

    topo = random_regular_topology(40, 10, servers_per_switch=5, seed=0)
    traffic = random_permutation_traffic(topo, seed=1)
    result = max_concurrent_flow(topo, traffic)
    bound = throughput_upper_bound(40, 10, traffic.num_network_flows)
    print(result.throughput, result.throughput / bound)
"""

from repro.exceptions import (
    BoundError,
    ExperimentError,
    FlowError,
    GraphConstructionError,
    ReproError,
    SimulationError,
    SolverError,
    TopologyError,
    TrafficError,
)
from repro.topology import (
    Topology,
    fat_tree_topology,
    heterogeneous_random_topology,
    make_topology,
    mixed_linespeed_topology,
    random_regular_topology,
    rewired_vl2_topology,
    two_cluster_random_topology,
    vl2_topology,
)
from repro.traffic import (
    TrafficMatrix,
    all_to_all_traffic,
    chunky_traffic,
    random_permutation_traffic,
)
from repro.flow import (
    ThroughputResult,
    decompose_throughput,
    garg_koenemann_throughput,
    max_concurrent_flow,
    max_concurrent_flow_paths,
)
from repro.core import (
    HeterogeneousDesigner,
    aspl_lower_bound,
    throughput_upper_bound,
    two_part_throughput_bound,
    vl2_improvement_ratio,
)
from repro.metrics import average_shortest_path_length, diameter
from repro.simulation import PacketLevelSimulator, SimulationConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "TopologyError",
    "GraphConstructionError",
    "TrafficError",
    "FlowError",
    "SolverError",
    "BoundError",
    "SimulationError",
    "ExperimentError",
    # topology
    "Topology",
    "random_regular_topology",
    "two_cluster_random_topology",
    "heterogeneous_random_topology",
    "mixed_linespeed_topology",
    "vl2_topology",
    "rewired_vl2_topology",
    "fat_tree_topology",
    "make_topology",
    # traffic
    "TrafficMatrix",
    "random_permutation_traffic",
    "all_to_all_traffic",
    "chunky_traffic",
    # flow
    "ThroughputResult",
    "max_concurrent_flow",
    "max_concurrent_flow_paths",
    "garg_koenemann_throughput",
    "decompose_throughput",
    # core
    "aspl_lower_bound",
    "throughput_upper_bound",
    "two_part_throughput_bound",
    "HeterogeneousDesigner",
    "vl2_improvement_ratio",
    # metrics
    "average_shortest_path_length",
    "diameter",
    # simulation
    "PacketLevelSimulator",
    "SimulationConfig",
]
