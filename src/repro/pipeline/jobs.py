"""Job model for grid execution: work items, state machine, run manifests.

A :class:`GridJob` decomposes a :class:`~repro.pipeline.scenario.ScenarioGrid`
into cell-level **work items** — the shard unit is the shared-instance
batch of :func:`repro.pipeline.engine.group_cells` (cells that build one
sampled topology/workload travel together, so construction sharing
survives the queue) — and tracks each item through an explicit state
machine::

    pending -> running -> done
                   \\-> pending   (retry with backoff: timeout, worker death)
                   \\-> failed    (attempts exhausted, or deterministic error)
    pending/running -> cancelled

The job owns no threads and no workers: :mod:`repro.pipeline.scheduler`
dispatches its items onto an executor and calls back into the transition
methods, all of which are safe under concurrent readers (one internal
lock). That split is what lets the same job model back the synchronous
:func:`~repro.pipeline.engine.run_grid` wrapper, the resumable ``sweep
--manifest`` CLI path, and the long-running :mod:`repro.service` daemon.

**Manifests** make any run resumable. When a job has a ``manifest_path``,
every item completion atomically rewrites a JSON run manifest recording
the grid, per-item states, and the solved cell payloads. A crashed or
interrupted run restores via :meth:`GridJob.resume`: recorded cells are
*skipped* outright, and the remaining items re-execute — where the
content-addressed :class:`~repro.pipeline.cache.ResultCache` already
holds their solves, a resumed run re-solves nothing.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field

from repro.exceptions import ExperimentError
from repro.pipeline.scenario import Scenario, ScenarioGrid

#: Bump when the manifest layout changes; :meth:`GridJob.resume` refuses
#: mismatched files instead of guessing.
MANIFEST_SCHEMA_VERSION = 1


class ItemState:
    """Work-item lifecycle states (plain strings: JSON-stable, cheap)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (PENDING, RUNNING, DONE, FAILED, CANCELLED)
    #: States an item can never leave.
    TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-item retry, backoff, and timeout knobs for one job run.

    ``timeout_s`` bounds a single attempt's wall clock (``None`` — the
    default — never times out; the synchronous serial path executes
    inline and cannot be preempted regardless). Transient failures —
    a timed-out attempt, a worker process dying mid-cell — are always
    retried while attempts remain. Exceptions raised *by the solve
    itself* are deterministic (the same cell fails the same way) and
    fail the item immediately unless ``retry_errors`` opts in.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    timeout_s: "float | None" = None
    retry_errors: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_factor ** max(attempt - 1, 0)


@dataclass
class WorkItem:
    """One schedulable shard: a shared-instance batch of grid cells.

    ``indices`` are positions in the grid's cell enumeration, so results
    land back in grid order no matter the completion order. ``exception``
    keeps the original in-process exception object (never serialized) so
    the synchronous wrapper can re-raise exactly what the solve raised.
    """

    item_id: int
    scenarios: "tuple[Scenario, ...]"
    indices: "tuple[int, ...]"
    state: str = ItemState.PENDING
    attempts: int = 0
    error: "str | None" = None
    exception: "BaseException | None" = field(
        default=None, repr=False, compare=False
    )
    #: Monotonic clock before which a retried item must not re-dispatch.
    not_before: float = field(default=0.0, repr=False, compare=False)

    def to_manifest(self) -> dict:
        return {
            "item_id": self.item_id,
            "indices": list(self.indices),
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
        }


def _cell_payload(cell) -> dict:
    """JSON-safe manifest record for one solved cell (scenario omitted:
    it is reconstructed from the grid by index on resume)."""
    return {
        "throughput": cell.throughput,
        "engine": cell.engine,
        "exact": cell.exact,
        "total_demand": cell.total_demand,
        "utilization": cell.utilization,
        "num_switches": cell.num_switches,
        "num_servers": cell.num_servers,
        "key": cell.key,
        "topology_fp": cell.topology_fp,
        "traffic_fp": cell.traffic_fp,
        "cache_hit": cell.cache_hit,
        "elapsed_s": cell.elapsed_s,
        "dropped_pairs": cell.dropped_pairs,
        "dropped_demand": cell.dropped_demand,
        "is_estimate": cell.is_estimate,
        "error_lo": cell.error_lo,
        "error_hi": cell.error_hi,
        "replay_mode": cell.replay_mode,
    }


def _cell_from_payload(scenario: Scenario, payload: dict):
    from repro.pipeline.engine import CellResult

    return CellResult(scenario=scenario, **payload)


class GridJob:
    """A grid run as data: items, per-cell results, and manifest I/O.

    All state transitions go through methods that hold the job's lock, so
    the scheduler thread and service readers never observe half-applied
    updates. The job is complete when every item is terminal.
    """

    def __init__(
        self,
        grid: ScenarioGrid,
        batch: bool = True,
        cache_dir: "str | None" = None,
        manifest_path: "str | os.PathLike | None" = None,
        run_id: "str | None" = None,
    ) -> None:
        self.grid = grid
        self.batch = bool(batch)
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.manifest_path = (
            str(manifest_path) if manifest_path is not None else None
        )
        self.run_id = run_id or f"{grid.name}-{uuid.uuid4().hex[:12]}"
        self.created_at = time.time()
        self.cancelled = False
        self._lock = threading.Lock()
        cells = grid.cells()
        self.results: "list | None" = [None] * len(cells)
        shards = self._shards(cells)
        self.items: "list[WorkItem]" = [
            WorkItem(
                item_id=item_id,
                scenarios=tuple(s for _, s in group),
                indices=tuple(i for i, _ in group),
            )
            for item_id, group in enumerate(shards)
        ]
        #: Grid indices restored from a manifest (skipped on resume).
        self.restored_indices: "frozenset[int]" = frozenset()

    def _shards(self, cells: list) -> "list[tuple]":
        """Decompose cells into work-item groups of ``(index, cell)``.

        Subclasses override to change the shard unit (the replay job
        windows consecutive timeline steps); the default is the
        shared-instance batching of :func:`~repro.pipeline.engine.
        group_cells`, or one cell per item when ``batch`` is off.
        """
        from repro.pipeline.engine import group_cells

        if self.batch:
            return [tuple(group) for group in group_cells(cells)]
        # The reference path: one cell per item, grid order.
        return [((index, cell),) for index, cell in enumerate(cells)]

    @classmethod
    def _grid_from_manifest(cls, payload: dict):
        """Rebuild the grid object recorded in a manifest (overridable)."""
        return ScenarioGrid.from_dict(payload["grid"])

    # -- introspection -------------------------------------------------

    @property
    def total_cells(self) -> int:
        return len(self.results)

    def counts(self) -> dict:
        """Item-state histogram plus cell-level progress numbers."""
        with self._lock:
            by_state = {state: 0 for state in ItemState.ALL}
            for item in self.items:
                by_state[item.state] += 1
            done_cells = sum(
                1 for result in self.results if result is not None
            )
        return {
            "items": len(self.items),
            "cells": self.total_cells,
            "done_cells": done_cells,
            "restored_cells": len(self.restored_indices),
            **by_state,
        }

    @property
    def is_complete(self) -> bool:
        with self._lock:
            return all(
                item.state in ItemState.TERMINAL for item in self.items
            )

    def failed_items(self) -> "list[WorkItem]":
        with self._lock:
            return [
                item for item in self.items
                if item.state == ItemState.FAILED
            ]

    def pending_items(self) -> "list[WorkItem]":
        with self._lock:
            return [
                item for item in self.items
                if item.state == ItemState.PENDING
            ]

    def result_cells(self) -> list:
        """All cell results in grid order; raises if any are missing."""
        with self._lock:
            missing = [
                i for i, result in enumerate(self.results) if result is None
            ]
            if missing:
                raise ExperimentError(
                    f"job {self.run_id!r} incomplete: "
                    f"{len(missing)} of {len(self.results)} cells unsolved"
                )
            return list(self.results)

    def solve_counts(self) -> dict:
        """``re_solved / cache_hit / skipped`` split over solved cells.

        ``skipped`` cells came straight from a resume manifest; the rest
        executed this run and either hit the content-addressed cache or
        were solved fresh.
        """
        with self._lock:
            executed = [
                (index, result)
                for index, result in enumerate(self.results)
                if result is not None
                and index not in self.restored_indices
            ]
        return {
            "re_solved": sum(
                1 for _, result in executed if not result.cache_hit
            ),
            "cache_hit": sum(
                1 for _, result in executed if result.cache_hit
            ),
            "skipped": len(self.restored_indices),
        }

    # -- state transitions (scheduler-driven) --------------------------

    def mark_running(self, item: WorkItem) -> None:
        with self._lock:
            if item.state != ItemState.PENDING:
                raise ExperimentError(
                    f"item {item.item_id} dispatched from state {item.state!r}"
                )
            item.state = ItemState.RUNNING
            item.attempts += 1

    def complete_item(
        self, item: WorkItem, results: list
    ) -> "list[tuple[int, object]]":
        """Record one item's solved cells; returns ``(index, cell)`` pairs."""
        if len(results) != len(item.indices):
            raise ExperimentError(
                f"item {item.item_id} returned {len(results)} cells "
                f"for {len(item.indices)} indices"
            )
        with self._lock:
            item.state = ItemState.DONE
            item.error = None
            published = list(zip(item.indices, results))
            for index, cell in published:
                self.results[index] = cell
        self.write_manifest()
        return published

    def retry_item(
        self, item: WorkItem, error: str, retry: RetryPolicy
    ) -> bool:
        """Requeue a failed attempt; ``False`` once attempts are exhausted
        (the item is then in the failed state)."""
        with self._lock:
            if item.state == ItemState.CANCELLED:
                return False
            if item.attempts >= retry.max_attempts:
                item.state = ItemState.FAILED
                item.error = error
                requeued = False
            else:
                item.state = ItemState.PENDING
                item.error = error
                item.not_before = (
                    time.monotonic() + retry.delay(item.attempts)
                )
                requeued = True
        self.write_manifest()
        return requeued

    def reschedule_item(self, item: WorkItem) -> None:
        """Return a dispatched-but-never-run item to the queue.

        Used when infrastructure (a pool reset) cancelled the attempt
        before a worker picked it up — the attempt is refunded, unlike
        :meth:`retry_item`, because nothing actually failed.
        """
        with self._lock:
            if item.state == ItemState.RUNNING:
                item.state = ItemState.PENDING
                item.attempts = max(0, item.attempts - 1)

    def fail_item(
        self, item: WorkItem, error: str,
        exception: "BaseException | None" = None,
    ) -> None:
        with self._lock:
            item.state = ItemState.FAILED
            item.error = error
            item.exception = exception
        self.write_manifest()

    def cancel(self) -> "list[WorkItem]":
        """Cancel every non-terminal item; returns those still running
        (their in-flight futures are the scheduler's to reap)."""
        running = []
        with self._lock:
            self.cancelled = True
            for item in self.items:
                if item.state == ItemState.RUNNING:
                    running.append(item)
                if item.state not in ItemState.TERMINAL:
                    item.state = ItemState.CANCELLED
        self.write_manifest()
        return running

    # -- manifest ------------------------------------------------------

    def to_manifest(self) -> dict:
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "run_id": self.run_id,
            "grid": self.grid.to_dict(),
            "batch": self.batch,
            "cache_dir": self.cache_dir,
            "created_at": self.created_at,
            "updated_at": time.time(),
            "cancelled": self.cancelled,
            "items": [item.to_manifest() for item in self.items],
            "cells": {
                str(index): _cell_payload(result)
                for index, result in enumerate(self.results)
                if result is not None
            },
        }

    def write_manifest(self) -> None:
        """Atomically (re)write the run manifest, if one is configured.

        Called after every item transition, so a crash at any point
        leaves a manifest describing exactly the completed prefix —
        that file is the resume token.
        """
        if self.manifest_path is None:
            return
        with self._lock:
            payload = self.to_manifest()
        path = os.path.abspath(self.manifest_path)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".manifest.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def resume(
        cls,
        manifest_path: "str | os.PathLike",
        cache_dir: "str | None | bool" = True,
    ) -> "GridJob":
        """Re-attach to an interrupted run recorded at ``manifest_path``.

        Items the manifest marks ``done`` are restored wholesale (their
        cells never re-execute — they count as *skipped*); every other
        item re-enters the queue at ``pending`` with its attempt counter
        reset. ``cache_dir=True`` (default) keeps the manifest's cache
        directory, which is what makes resumption cheap: re-executed
        items whose solves already landed in the content-addressed cache
        come back as pure cache hits.
        """
        with open(manifest_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        version = payload.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ExperimentError(
                f"manifest {manifest_path}: schema_version {version!r} "
                f"(expected {MANIFEST_SCHEMA_VERSION})"
            )
        grid = cls._grid_from_manifest(payload)
        job = cls(
            grid,
            batch=bool(payload.get("batch", True)),
            cache_dir=(
                payload.get("cache_dir") if cache_dir is True else cache_dir
            ),
            manifest_path=manifest_path,
            run_id=payload.get("run_id"),
        )
        by_id = {
            int(entry["item_id"]): entry
            for entry in payload.get("items", ())
        }
        if sorted(by_id) != [item.item_id for item in job.items]:
            raise ExperimentError(
                f"manifest {manifest_path}: item set does not match the "
                "grid's decomposition (was it written by a different "
                "grid or batch mode?)"
            )
        cells = payload.get("cells", {})
        grid_cells = grid.cells()
        restored: "set[int]" = set()
        for item in job.items:
            entry = by_id[item.item_id]
            if tuple(entry["indices"]) != item.indices:
                raise ExperimentError(
                    f"manifest {manifest_path}: item {item.item_id} indices "
                    "diverge from the grid's decomposition"
                )
            if entry["state"] == ItemState.DONE and all(
                str(index) in cells for index in item.indices
            ):
                item.state = ItemState.DONE
                for index in item.indices:
                    job.results[index] = _cell_from_payload(
                        grid_cells[index], cells[str(index)]
                    )
                    restored.add(index)
            # Anything else — running at crash time, failed, cancelled,
            # or done with missing cell payloads — re-enters pending.
        job.restored_indices = frozenset(restored)
        return job


def job_from_grid(
    grid: ScenarioGrid,
    batch: bool = True,
    cache_dir: "str | None" = None,
    manifest_path: "str | None" = None,
) -> GridJob:
    """Convenience constructor mirroring :func:`run_grid`'s signature."""
    return GridJob(
        grid, batch=batch, cache_dir=cache_dir, manifest_path=manifest_path
    )
