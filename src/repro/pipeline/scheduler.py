"""Two-level priority scheduling of grid jobs over an executor.

One :class:`GridScheduler` serves many jobs at once from a single
dispatcher thread: a priority heap of ready work items, a bounded
in-flight set (backpressure — the queue never floods the executor), and
completion plumbing that publishes each item's cells the moment they
solve. Priorities are two-level by convention — :data:`INTERACTIVE`
beats :data:`BULK` — so a single-cell query submitted while a sweep is
mid-flight jumps every queued sweep item and runs at the next free
worker slot. Scheduling is non-preemptive at item granularity: a
running shard finishes; everything *queued* yields.

Failure handling maps onto the :class:`~repro.pipeline.jobs.WorkItem`
state machine:

- **worker death** (``BrokenProcessPool``) — the executor is reset once
  per casualty generation and every in-flight victim is retried with
  backoff; the run continues on the fresh pool.
- **timeout** — an attempt exceeding ``RetryPolicy.timeout_s`` is
  abandoned (and the pool recycled, for process backends, to reclaim the
  wedged worker), then retried until attempts run out.
- **solver exceptions** — deterministic: the item fails immediately
  (``retry_errors`` opts in to retrying them), and a ``fail_fast``
  handle cancels the rest of its job, which is how the synchronous
  wrapper keeps the old raise-on-first-error contract.

When a profiler is active at submit time (``sweep --profile``), the
scheduler records ``queue_wait`` / ``solve`` / ``publish`` spans per
item, so queue pressure is visible next to solve time in the artifact.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from concurrent.futures import BrokenExecutor, Future
from dataclasses import dataclass, field

from repro.exceptions import ExperimentError
from repro.perf import active_profiler
from repro.pipeline.executors import GridExecutor
from repro.pipeline.jobs import GridJob, ItemState, RetryPolicy, WorkItem

#: Interactive queries: always dispatched before any bulk work.
INTERACTIVE = 0
#: Bulk sweeps: fill whatever capacity interactive traffic leaves.
BULK = 10

_PRIORITIES = {"interactive": INTERACTIVE, "bulk": BULK}


def parse_priority(value: "int | str") -> int:
    """Accept the two named levels or any explicit integer."""
    if isinstance(value, str):
        try:
            return _PRIORITIES[value]
        except KeyError:
            raise ExperimentError(
                f"unknown priority {value!r}; use 'interactive', 'bulk', "
                "or an integer"
            ) from None
    return int(value)


class JobHandle:
    """A submitted job's future: wait, inspect, cancel.

    Completion callbacks (``on_cell``, ``on_done``) run on the
    dispatcher thread — keep them cheap and never raise (raises are
    swallowed so one bad subscriber cannot wedge the scheduler).
    """

    def __init__(
        self,
        scheduler: "GridScheduler",
        job: GridJob,
        priority: int,
        on_cell=None,
        on_done=None,
        fail_fast: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.job = job
        self.priority = priority
        self.on_cell = on_cell
        self.on_done = on_done
        self.fail_fast = fail_fast
        self.submitted_at = time.monotonic()
        #: Captured from the submitting thread so dispatcher-side spans
        #: land on the same profile as the caller's (``--profile``).
        self.profiler = active_profiler()
        self.error: "BaseException | None" = None
        self._remaining = 0
        self._reaped_ids: "set[int]" = set()
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def status(self) -> str:
        # Judge from the job, not the done event: on_done callbacks run
        # (with every item already terminal) just before the event is
        # set, and they deserve the final status too.
        if not (self._done.is_set() or self.job.is_complete):
            return "running"
        if self.job.failed_items() or self.error is not None:
            return "failed"
        if self.job.cancelled:
            return "cancelled"
        return "done"

    def wait(self, timeout: "float | None" = None) -> bool:
        return self._done.wait(timeout)

    def result(self, timeout: "float | None" = None) -> list:
        """Block until the job finishes; return cells in grid order.

        Re-raises the original solver exception when one failed the job
        (the synchronous ``run_grid`` contract), and raises
        :class:`ExperimentError` for cancellations and non-exception
        failures.
        """
        if not self.wait(timeout):
            raise ExperimentError(
                f"job {self.job.run_id!r} still running after {timeout}s"
            )
        failed = self.job.failed_items()
        if failed or self.error is not None:
            exc = self.error or failed[0].exception
            if exc is not None:
                raise exc
            details = "; ".join(
                f"item {item.item_id}: {item.error}" for item in failed
            )
            raise ExperimentError(
                f"job {self.job.run_id!r} failed: {details}"
            )
        if self.job.cancelled:
            raise ExperimentError(f"job {self.job.run_id!r} was cancelled")
        return self.job.result_cells()

    def cancel(self) -> None:
        self.scheduler._request_cancel(self)


@dataclass
class _InFlight:
    """Dispatcher-side record of one submitted future."""

    handle: JobHandle
    item: WorkItem
    enqueued_at: float
    dispatched_at: float
    deadline: "float | None"
    generation: int


@dataclass(order=True)
class _Ready:
    """Heap entry: priority, then submission order."""

    priority: int
    seq: int
    handle: JobHandle = field(compare=False)
    item: WorkItem = field(compare=False)


class GridScheduler:
    """Priority dispatch of job work items onto a :class:`GridExecutor`.

    ``max_in_flight`` is the backpressure bound: at most that many items
    are submitted to the executor at once (default ``2 * workers``, so
    pools stay fed without the queue dumping a whole sweep into them).
    The dispatcher thread starts lazily on the first submit and runs
    until :meth:`close`.
    """

    #: Idle wake-up period: bounds how late a backoff/timeout fires.
    _TICK_S = 0.05

    def __init__(
        self,
        executor: GridExecutor,
        max_in_flight: "int | None" = None,
        retry: "RetryPolicy | None" = None,
    ) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ExperimentError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.executor = executor
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_in_flight = (
            max_in_flight
            if max_in_flight is not None
            else max(2, 2 * getattr(executor, "workers", 1))
        )
        self._events: "queue.Queue[tuple]" = queue.Queue()
        self._seq = itertools.count()
        self._ready: "list[_Ready]" = []
        self._delayed: "list[_Ready]" = []
        self._in_flight: "dict[Future, _InFlight]" = {}
        self._handles: "set[JobHandle]" = set()
        self._thread: "threading.Thread | None" = None
        self._thread_lock = threading.Lock()
        self._closed = False
        self.items_completed = 0
        self.items_retried = 0
        self.executor_resets = 0

    # -- public API (any thread) ---------------------------------------

    def submit(
        self,
        job: GridJob,
        priority: "int | str" = BULK,
        on_cell=None,
        on_done=None,
        fail_fast: bool = False,
    ) -> JobHandle:
        """Enqueue every pending item of ``job``; returns its handle."""
        if self._closed:
            raise ExperimentError("scheduler is closed")
        handle = JobHandle(
            self,
            job,
            parse_priority(priority),
            on_cell=on_cell,
            on_done=on_done,
            fail_fast=fail_fast,
        )
        self._ensure_thread()
        self._events.put(("job", handle))
        return handle

    def stats(self) -> dict:
        """Racy-but-consistent-enough counters for service dashboards."""
        return {
            "queued": len(self._ready) + len(self._delayed),
            "in_flight": len(self._in_flight),
            "active_jobs": len(self._handles),
            "items_completed": self.items_completed,
            "items_retried": self.items_retried,
            "executor_resets": self.executor_resets,
            "max_in_flight": self.max_in_flight,
        }

    def close(self) -> None:
        """Stop the dispatcher; in-flight futures are abandoned."""
        self._closed = True
        if self._thread is not None:
            self._events.put(("stop",))
            self._thread.join(timeout=10)

    def __enter__(self) -> "GridScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request_cancel(self, handle: JobHandle) -> None:
        self._ensure_thread()
        self._events.put(("cancel", handle))

    # -- dispatcher thread ---------------------------------------------

    def _ensure_thread(self) -> None:
        with self._thread_lock:
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name="grid-scheduler", daemon=True
                )
                self._thread.start()

    def _run(self) -> None:
        while True:
            self._promote_delayed()
            self._dispatch()
            self._check_timeouts()
            try:
                event = self._events.get(timeout=self._wait_timeout())
            except queue.Empty:
                continue
            kind = event[0]
            if kind == "stop":
                break
            if kind == "job":
                self._admit(event[1])
            elif kind == "future":
                self._handle_future(event[1])
            elif kind == "cancel":
                self._cancel_handle(event[1])

    def _wait_timeout(self) -> float:
        """Sleep until the next deadline/backoff, capped by the tick."""
        now = time.monotonic()
        horizon = now + self._TICK_S
        for entry in self._in_flight.values():
            if entry.deadline is not None:
                horizon = min(horizon, entry.deadline)
        for ready in self._delayed:
            horizon = min(horizon, ready.item.not_before)
        return max(horizon - now, 0.001)

    def _admit(self, handle: JobHandle) -> None:
        self._handles.add(handle)
        pending = handle.job.pending_items()
        handle._remaining = len(pending)
        if not pending:
            # Fully restored (or empty) job: nothing to run.
            self._finalize(handle)
            return
        for item in pending:
            self._push_ready(handle, item)

    def _push_ready(self, handle: JobHandle, item: WorkItem) -> None:
        entry = _Ready(handle.priority, next(self._seq), handle, item)
        if item.not_before > time.monotonic():
            self._delayed.append(entry)
        else:
            heapq.heappush(self._ready, entry)

    def _promote_delayed(self) -> None:
        if not self._delayed:
            return
        now = time.monotonic()
        still_waiting = []
        for entry in self._delayed:
            if entry.item.not_before <= now:
                heapq.heappush(self._ready, entry)
            else:
                still_waiting.append(entry)
        self._delayed = still_waiting

    def _dispatch(self) -> None:
        while self._ready and len(self._in_flight) < self.max_in_flight:
            entry = heapq.heappop(self._ready)
            handle, item = entry.handle, entry.item
            if item.state != ItemState.PENDING:
                # Cancelled (or otherwise resolved) while queued.
                self._reap(handle, item)
                continue
            if item.not_before > time.monotonic():
                self._delayed.append(entry)
                continue
            now = time.monotonic()
            if handle.profiler is not None:
                handle.profiler.record(
                    "queue_wait",
                    now - max(entry.item.not_before, handle.submitted_at),
                    item=item.item_id,
                    priority=handle.priority,
                )
            handle.job.mark_running(item)
            generation = self.executor.generation
            future = self.executor.submit(
                item.scenarios, handle.job.cache_dir, handle.job.batch
            )
            deadline = (
                now + self.retry.timeout_s
                if self.retry.timeout_s is not None
                else None
            )
            self._in_flight[future] = _InFlight(
                handle=handle,
                item=item,
                enqueued_at=handle.submitted_at,
                dispatched_at=now,
                deadline=deadline,
                generation=generation,
            )
            future.add_done_callback(
                lambda f: self._events.put(("future", f))
            )

    def _handle_future(self, future: Future) -> None:
        entry = self._in_flight.pop(future, None)
        if entry is None:
            return  # abandoned by a timeout; result deliberately dropped
        handle, item = entry.handle, entry.item
        if future.cancelled():
            if item.state == ItemState.CANCELLED:
                self._reap(handle, item)
            else:
                # A pool reset cancelled it before any worker started:
                # refund the attempt and put it straight back.
                handle.job.reschedule_item(item)
                self._push_ready(handle, item)
            return
        exc = future.exception()
        if exc is None:
            self._publish(entry, future.result())
            return
        if item.state == ItemState.CANCELLED:
            self._reap(handle, item)
            return
        if isinstance(exc, BrokenExecutor):
            self._recover_executor(entry.generation)
            self._retry_or_fail(entry, f"worker died mid-item: {exc!r}")
            return
        # Deterministic solver failure.
        if self.retry.retry_errors:
            self._retry_or_fail(entry, f"{type(exc).__name__}: {exc}", exc)
        else:
            handle.job.fail_item(
                item, f"{type(exc).__name__}: {exc}", exception=exc
            )
            self._item_failed(handle, item, exc)

    def _publish(self, entry: _InFlight, results: list) -> None:
        handle, item = entry.handle, entry.item
        if item.state == ItemState.CANCELLED:
            self._reap(handle, item)
            return
        publish_start = time.monotonic()
        if handle.profiler is not None:
            handle.profiler.record(
                "solve",
                publish_start - entry.dispatched_at,
                item=item.item_id,
                cells=len(item.indices),
                attempts=item.attempts,
            )
        published = handle.job.complete_item(item, results)
        if handle.on_cell is not None:
            for index, cell in published:
                try:
                    handle.on_cell(index, cell)
                except Exception:
                    pass  # a bad subscriber must not wedge dispatch
        if handle.profiler is not None:
            handle.profiler.record(
                "publish",
                time.monotonic() - publish_start,
                item=item.item_id,
                cells=len(published),
            )
        self.items_completed += 1
        self._reap(handle, item)

    def _retry_or_fail(
        self,
        entry: _InFlight,
        error: str,
        exc: "BaseException | None" = None,
    ) -> None:
        handle, item = entry.handle, entry.item
        if handle.job.retry_item(item, error, self.retry):
            self.items_retried += 1
            self._push_ready(handle, item)
        else:
            if item.exception is None and exc is not None:
                item.exception = exc
            self._item_failed(handle, item, exc)

    def _item_failed(
        self, handle: JobHandle, item: WorkItem,
        exc: "BaseException | None",
    ) -> None:
        if handle.fail_fast and not handle.job.cancelled:
            if handle.error is None and exc is not None:
                handle.error = exc
            self._cancel_handle(handle)
        self._reap(handle, item)

    def _check_timeouts(self) -> None:
        if self.retry.timeout_s is None:
            return
        now = time.monotonic()
        expired = [
            (future, entry)
            for future, entry in self._in_flight.items()
            if entry.deadline is not None and now >= entry.deadline
        ]
        needs_reset = False
        for future, entry in expired:
            del self._in_flight[future]
            if future.cancel():
                # Never started: refund the attempt, requeue instantly.
                entry.handle.job.reschedule_item(entry.item)
                self._push_ready(entry.handle, entry.item)
                continue
            if future.done():
                # Raced completion: handle it normally instead.
                self._in_flight[future] = entry
                continue
            # Running somewhere we cannot interrupt: abandon the future
            # (its eventual result is dropped) and retry the item.
            needs_reset = self.executor.reset_on_timeout
            self._retry_or_fail(
                entry,
                f"attempt timed out after {self.retry.timeout_s}s",
            )
        if needs_reset:
            self._recover_executor(self.executor.generation)

    def _recover_executor(self, casualty_generation: int) -> None:
        """Reset the executor once per casualty generation.

        Several in-flight futures die together when one worker is
        killed; only the first observed casualty rebuilds the pool.
        """
        if self.executor.generation == casualty_generation:
            self.executor.reset()
            self.executor_resets += 1

    def _cancel_handle(self, handle: JobHandle) -> None:
        if handle not in self._handles or handle.done:
            return
        handle.job.cancel()
        in_flight_items = set()
        for future, entry in list(self._in_flight.items()):
            if entry.handle is not handle:
                continue
            if future.cancel():
                del self._in_flight[future]
                self._reap(handle, entry.item)
            else:
                in_flight_items.add(entry.item.item_id)
        # Everything else cancelled above is no longer runnable; reap the
        # queued ones now (heap entries are skipped lazily at dispatch).
        for item in handle.job.items:
            if (
                item.state == ItemState.CANCELLED
                and item.item_id not in in_flight_items
            ):
                self._reap(handle, item)

    def _reap(self, handle: JobHandle, item: WorkItem) -> None:
        """Count ``item`` as settled for its job, exactly once."""
        if item.item_id in handle._reaped_ids:
            return
        handle._reaped_ids.add(item.item_id)
        handle._remaining -= 1
        if handle._remaining <= 0 and not handle.done:
            self._finalize(handle)

    def _finalize(self, handle: JobHandle) -> None:
        self._handles.discard(handle)
        # on_done runs before the event is set, so a service can finish
        # its bookkeeping (e.g. memoizing the results) before any
        # result() waiter resumes and possibly resubmits the same grid.
        if handle.on_done is not None:
            try:
                handle.on_done(handle)
            except Exception:
                pass
        handle._done.set()


def run_job(
    job: GridJob,
    executor: "GridExecutor | None" = None,
    workers: int = 1,
    priority: "int | str" = BULK,
    retry: "RetryPolicy | None" = None,
    max_in_flight: "int | None" = None,
    on_cell=None,
) -> list:
    """Run one job to completion on a private scheduler; return its cells.

    The synchronous convenience path: builds the default executor for
    ``workers`` (unless one is passed), schedules with ``fail_fast`` so
    the first deterministic solver error re-raises like a direct solve,
    and tears everything down afterwards.
    """
    from repro.pipeline.executors import executor_for_workers

    owns_executor = executor is None
    if executor is None:
        executor = executor_for_workers(workers)
    scheduler = GridScheduler(
        executor, retry=retry, max_in_flight=max_in_flight
    )
    try:
        handle = scheduler.submit(
            job, priority=priority, on_cell=on_cell, fail_fast=True
        )
        return handle.result()
    finally:
        scheduler.close()
        if owns_executor:
            executor.shutdown(wait=False)
