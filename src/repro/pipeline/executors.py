"""Sharded worker pools behind one executor protocol.

The scheduler (:mod:`repro.pipeline.scheduler`) talks to every backend
through :class:`GridExecutor`: submit one work item's scenarios, get a
:class:`concurrent.futures.Future` of its cell results. Three
implementations ship today —

- :class:`SerialExecutor` — runs items inline on the dispatcher thread.
  Zero overhead, one in-process :class:`ResultCache` (memo shared across
  the whole run), exactly the old ``run_grid(workers=1)`` behavior.
- :class:`ThreadExecutor` — a thread pool sharing one in-process cache
  (safe: the cache memo is lock-guarded). LP solves release the GIL in
  scipy, and the service uses it for cache-dominated workloads without
  paying process spawn.
- :class:`ProcessExecutor` — the sharded process pool. Worker death
  (OOM kill, segfault, operator ``SIGKILL``) surfaces as
  :class:`~concurrent.futures.process.BrokenProcessPool` on in-flight
  futures; :meth:`ProcessExecutor.reset` swaps in a fresh pool and bumps
  a generation counter so the scheduler can distinguish casualties of an
  old pool from failures in the new one. The protocol deliberately hides
  *where* workers live — a multi-host executor only has to return
  futures.

Executors never retry, reorder, or prioritize — policy lives in the
scheduler; executors only run things.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Protocol, runtime_checkable

from repro.pipeline.cache import ResultCache


def _evaluate_item_task(
    args: "tuple[tuple, str | None, bool]",
) -> list:
    """Module-level worker entry (picklable): solve one item's scenarios.

    ``batch=True`` routes through :func:`evaluate_batch` so the item's
    cells share their built instance and artifact memo; ``batch=False``
    is the one-cell-at-a-time reference path.
    """
    from repro.pipeline.engine import evaluate_batch, evaluate_cell

    scenarios, cache_dir, batch = args
    cache = ResultCache(cache_dir) if cache_dir else None
    if batch:
        return evaluate_batch(list(scenarios), cache=cache)
    return [evaluate_cell(scenario, cache=cache) for scenario in scenarios]


@runtime_checkable
class GridExecutor(Protocol):
    """What the scheduler needs from a worker backend."""

    #: Parallel width (sizes the scheduler's default in-flight bound).
    workers: int
    #: Whether an abandoned (timed-out) item leaks a worker slot unless
    #: the pool is torn down and rebuilt.
    reset_on_timeout: bool

    def submit(
        self, scenarios, cache_dir: "str | None", batch: bool
    ) -> Future:
        """Start one work item; the future resolves to its cell results."""
        ...

    def reset(self) -> None:
        """Recover from a dead backend (rebuild pools, drop casualties)."""
        ...

    @property
    def generation(self) -> int:
        """Incremented on every :meth:`reset` (0 for the first backend)."""
        ...

    def worker_pids(self) -> "tuple[int, ...]":
        """PIDs of live worker processes (empty for in-process backends)."""
        ...

    def shutdown(self, wait: bool = True) -> None: ...


class _InProcessCaches:
    """One shared :class:`ResultCache` per cache root for a run's lifetime.

    In-process executors reuse a single cache instance so the memo
    accumulates across items — the behavior the old serial ``run_grid``
    had, and the thing that makes warm in-process re-hits free.
    """

    def __init__(self) -> None:
        self._caches: "dict[str, ResultCache]" = {}
        self._lock = threading.Lock()

    def get(self, cache_dir: "str | None") -> "ResultCache | None":
        if not cache_dir:
            return None
        with self._lock:
            cache = self._caches.get(cache_dir)
            if cache is None:
                cache = self._caches[cache_dir] = ResultCache(cache_dir)
            return cache


def _run_item_in_process(
    caches: _InProcessCaches, scenarios, cache_dir, batch: bool
) -> list:
    from repro.pipeline.engine import evaluate_batch, evaluate_cell

    cache = caches.get(cache_dir)
    if batch:
        return evaluate_batch(list(scenarios), cache=cache)
    return [evaluate_cell(scenario, cache=cache) for scenario in scenarios]


class SerialExecutor:
    """Inline execution on the calling (dispatcher) thread.

    The returned future is already resolved when :meth:`submit` returns,
    so timeouts cannot preempt an attempt — the scheduler documents the
    same. This is the reference backend: no pickling, no processes,
    deterministic ordering.
    """

    workers = 1
    reset_on_timeout = False

    def __init__(self) -> None:
        self._caches = _InProcessCaches()

    def submit(self, scenarios, cache_dir, batch: bool) -> Future:
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(
                _run_item_in_process(self._caches, scenarios, cache_dir, batch)
            )
        except BaseException as exc:  # the future carries the outcome
            future.set_exception(exc)
        return future

    def reset(self) -> None:
        pass

    @property
    def generation(self) -> int:
        return 0

    def worker_pids(self) -> "tuple[int, ...]":
        return ()

    def shutdown(self, wait: bool = True) -> None:
        pass


class ThreadExecutor:
    """Thread-pool execution sharing one in-process cache per root."""

    reset_on_timeout = False

    def __init__(self, workers: int = 2) -> None:
        self.workers = int(workers)
        self._caches = _InProcessCaches()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="grid-exec"
        )

    def submit(self, scenarios, cache_dir, batch: bool) -> Future:
        return self._pool.submit(
            _run_item_in_process, self._caches, scenarios, cache_dir, batch
        )

    def reset(self) -> None:
        pass

    @property
    def generation(self) -> int:
        return 0

    def worker_pids(self) -> "tuple[int, ...]":
        return ()

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=not wait)


class ProcessExecutor:
    """Sharded process-pool backend with worker-death recovery.

    The pool spawns **lazily** on the first submit, so an executor a
    service constructs up front costs nothing until real (uncached) work
    arrives. After a :meth:`reset`, futures from the previous pool either
    resolve normally (their worker survived), raise
    ``BrokenProcessPool`` (their worker died), or come back cancelled
    (they never started); the scheduler maps each case onto the item
    state machine.
    """

    reset_on_timeout = True

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._pool: "ProcessPoolExecutor | None" = None
        self._generation = 0
        self._lock = threading.Lock()

    @property
    def started(self) -> bool:
        """Whether any worker pool was ever spawned."""
        return self._pool is not None

    @property
    def generation(self) -> int:
        return self._generation

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def submit(self, scenarios, cache_dir, batch: bool) -> Future:
        return self._ensure_pool().submit(
            _evaluate_item_task, (tuple(scenarios), cache_dir, batch)
        )

    def reset(self) -> None:
        """Abandon the current pool (workers died or a timed-out task is
        wedged in one) and let the next submit spawn a fresh one."""
        with self._lock:
            old, self._pool = self._pool, None
            self._generation += 1
        if old is not None:
            # Non-blocking: surviving workers finish their current task
            # and exit; queued-but-unstarted futures come back cancelled.
            old.shutdown(wait=False, cancel_futures=True)

    def worker_pids(self) -> "tuple[int, ...]":
        with self._lock:
            if self._pool is None:
                return ()
            return tuple(self._pool._processes or ())

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=not wait)


def executor_for_workers(workers: int) -> "SerialExecutor | ProcessExecutor":
    """The default backend :func:`run_grid` picks for a worker count."""
    return SerialExecutor() if workers <= 1 else ProcessExecutor(workers)
