"""Content-addressed on-disk cache for throughput results.

Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the SHA-256
content address of (topology fingerprint, traffic fingerprint, solver
config) from :mod:`repro.pipeline.fingerprint`. Each entry stores the full
:class:`~repro.flow.result.ThroughputResult` (via its ``to_dict`` round
trip) plus provenance metadata.

Beyond throughput results, the cache stores arbitrary JSON *payloads*
under kind-tagged entries (:meth:`ResultCache.put_payload`); the
routing-fidelity subsystem shares precomputed route sets this way, so
annealing/growth/grid cells never recompute routes for a topology any
worker has already seen. Payload keys live in their own content-address
space (the key derivation hashes the kind), so they never collide with
result keys.

Writes go through a temp file + :func:`os.replace` so concurrent sweep
workers never observe half-written entries; since keys are content
addresses, two workers racing on the same key write identical bytes and
either winner is correct.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path

from repro.flow.result import ThroughputResult

#: Bump when the entry payload schema changes; mismatched entries are
#: treated as misses and rewritten.
CACHE_SCHEMA_VERSION = 1


class ResultCache:
    """Filesystem-backed, content-addressed throughput-result store.

    ``max_entries`` opts in to an LRU bound: every ``put`` beyond the cap
    evicts the least-recently-used entries (recency is file mtime, which
    hits refresh), so long sweep campaigns can keep a cache from growing
    without limit. The default stays unbounded — existing callers see no
    behavior change, and unbounded caches skip the per-hit ``utime`` and
    the per-put directory scan entirely.
    """

    def __init__(
        self,
        root: "str | os.PathLike",
        max_entries: "int | None" = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self.root = Path(root)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> "ThroughputResult | None":
        """Return the cached result for ``key``, or ``None`` on a miss.

        Unreadable or schema-mismatched entries count as misses *and are
        deleted on the spot*: a recompute is only guaranteed to overwrite
        them if its ``put`` actually happens, and a worker crash between
        the miss and the ``put`` would otherwise leave the stale file to
        be re-parsed (and re-missed) on every future read.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # UnicodeDecodeError: non-UTF-8 garbage fails before the JSON
            # parser even sees it.
            self.misses += 1
            self._evict(path)
            return None
        try:
            if payload.get("schema_version") != CACHE_SCHEMA_VERSION:
                raise ValueError("cache schema mismatch")
            result = ThroughputResult.from_dict(payload["result"])
        except (AttributeError, KeyError, TypeError, ValueError):
            self.misses += 1
            self._evict(path)
            return None
        self.hits += 1
        if self.max_entries is not None:
            # Refresh recency so hot entries survive LRU eviction.
            try:
                os.utime(path)
            except OSError:
                pass
        return result

    @staticmethod
    def _evict(path: Path) -> None:
        """Best-effort removal of a stale entry (races with writers are
        benign: content-addressed keys make any concurrent rewrite
        equivalent)."""
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: str, result: ThroughputResult, meta: "dict | None" = None) -> None:
        """Store ``result`` under ``key`` atomically."""
        self._write_entry(
            key,
            {
                "schema_version": CACHE_SCHEMA_VERSION,
                "key": key,
                "result": result.to_dict(),
                "meta": meta or {},
            },
        )

    def get_payload(self, key: str, kind: str) -> "dict | None":
        """Return the raw JSON payload stored under ``key``, or ``None``.

        ``kind`` must match what :meth:`put_payload` recorded — a mismatch
        (or an unreadable entry) counts as a miss and evicts, exactly like
        :meth:`get` does for result entries.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            self._evict(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema_version") != CACHE_SCHEMA_VERSION
            or entry.get("kind") != kind
            or not isinstance(entry.get("payload"), dict)
        ):
            self.misses += 1
            self._evict(path)
            return None
        self.hits += 1
        if self.max_entries is not None:
            try:
                os.utime(path)
            except OSError:
                pass
        return entry["payload"]

    def put_payload(self, key: str, kind: str, payload: dict) -> None:
        """Store a JSON-safe ``payload`` under ``key``, tagged with ``kind``."""
        self._write_entry(
            key,
            {
                "schema_version": CACHE_SCHEMA_VERSION,
                "key": key,
                "kind": kind,
                "payload": payload,
            },
        )

    def _write_entry(self, key: str, entry: dict) -> None:
        """Atomically serialize one entry dict to the key's path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_entries is not None:
            self._enforce_limit()

    def _enforce_limit(self) -> None:
        """Drop least-recently-used entries beyond ``max_entries``.

        Recency is file mtime (ties broken by name for determinism);
        concurrent-writer races are benign — the worst case re-evicts an
        entry another worker just rewrote, which the content address
        makes equivalent to never having cached it.
        """
        entries = []
        for path in self.root.glob("*/*.json"):
            try:
                entries.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort()
        for _, _, path in entries[:excess]:
            self._evict(path)
            self.evictions += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


#: Environment variable that switches on caching for code paths that do
#: not thread an explicit cache (e.g. the figure experiments).
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

_DEFAULT_CACHES: dict = {}


def default_cache() -> "ResultCache | None":
    """The process-wide cache configured via ``REPRO_CACHE_DIR``, if any.

    One instance is kept per configured root, so hit/miss counters
    accumulate across calls instead of resetting on every solve.
    """
    root = os.environ.get(CACHE_ENV_VAR)
    if not root:
        return None
    cache = _DEFAULT_CACHES.get(root)
    if cache is None:
        cache = _DEFAULT_CACHES[root] = ResultCache(root)
    return cache


#: The cache the surrounding pipeline call established, if any. Solvers
#: that want to share intermediate artifacts (route sets) read it via
#: :func:`active_cache` — they cannot take a ``cache`` keyword themselves
#: because solver options enter the result fingerprint.
_ACTIVE_CACHE: "ContextVar[ResultCache | None]" = ContextVar(
    "repro_active_cache", default=None
)


@contextmanager
def cache_context(cache: "ResultCache | None"):
    """Make ``cache`` the active cache for the duration of a solve.

    The pipeline engine wraps every solver invocation in this context, so
    a backend running under ``run_grid --cache-dir`` stores its route sets
    in the same content-addressed store as the results, without the cache
    ever appearing among the solver's (fingerprinted) options.
    """
    token = _ACTIVE_CACHE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_CACHE.reset(token)


def active_cache() -> "ResultCache | None":
    """The cache of the enclosing :func:`cache_context`, else the default.

    Falls back to the ``REPRO_CACHE_DIR`` process-wide cache so direct
    solver calls (no pipeline in the stack) still share route sets across
    invocations when the environment opts in.
    """
    cache = _ACTIVE_CACHE.get()
    if cache is not None:
        return cache
    return default_cache()
