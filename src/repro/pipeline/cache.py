"""Content-addressed on-disk cache for throughput results.

Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the SHA-256
content address of (topology fingerprint, traffic fingerprint, solver
config) from :mod:`repro.pipeline.fingerprint`. Each entry stores the full
:class:`~repro.flow.result.ThroughputResult` (via its ``to_dict`` round
trip) plus provenance metadata.

Beyond throughput results, the cache stores arbitrary JSON *payloads*
under kind-tagged entries (:meth:`ResultCache.put_payload`); the
routing-fidelity subsystem shares precomputed route sets this way, so
annealing/growth/grid cells never recompute routes for a topology any
worker has already seen. Payload keys live in their own content-address
space (the key derivation hashes the kind), so they never collide with
result keys.

Writes go through a temp file + :func:`os.replace` so concurrent sweep
workers never observe half-written entries; since keys are content
addresses, two workers racing on the same key write identical bytes and
either winner is correct.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path

from repro.flow.result import ThroughputResult

#: Bump when the entry payload schema changes; mismatched entries are
#: treated as misses and rewritten.
CACHE_SCHEMA_VERSION = 1

#: Per-instance in-process memo size. Annealing and growth inner loops
#: revisit a handful of hot keys thousands of times; keeping the parsed
#: entry dicts in memory turns those re-hits from JSON file reads into
#: dict lookups (mirroring the route-set memo of
#: :mod:`repro.fidelity.routes`).
MEMO_MAX_DEFAULT = 256


class ResultCache:
    """Filesystem-backed, content-addressed throughput-result store.

    ``max_entries`` opts in to an LRU bound: every ``put`` beyond the cap
    evicts the least-recently-used entries (recency is file mtime, which
    hits refresh), so long sweep campaigns can keep a cache from growing
    without limit. The default stays unbounded — existing callers see no
    behavior change, and unbounded caches skip the per-hit ``utime`` and
    the per-put directory scan entirely.

    An in-process LRU memo of parsed entries (``memo_size`` keys, 0
    disables) fronts the disk store: repeated hits on hot keys — the
    annealing/growth inner-loop pattern — skip the file read *and* the
    JSON parse. :meth:`stats` reports hits split into memo/disk.
    """

    def __init__(
        self,
        root: "str | os.PathLike",
        max_entries: "int | None" = None,
        memo_size: int = MEMO_MAX_DEFAULT,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        if memo_size < 0:
            raise ValueError(f"memo_size must be >= 0, got {memo_size}")
        self.root = Path(root)
        self.max_entries = max_entries
        self.memo_size = memo_size
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.memo_hits = 0
        self.disk_hits = 0
        #: key -> (kind or None, parsed entry dict). Keys are content
        #: addresses, so a memoized parse can never go stale short of a
        #: delete; this store's own evictions drop the memo entry too,
        #: and an *external* delete only costs a spurious hit in the
        #: process that cached it, same as an in-flight read.
        self._memo: "OrderedDict[str, tuple]" = OrderedDict()
        #: Guards every memo access: the service shares one cache
        #: instance across scheduler and asyncio threads, and an
        #: OrderedDict mid-``move_to_end`` is not safe to read.
        self._memo_lock = threading.Lock()

    def stats(self) -> dict:
        """Counters in :func:`repro.fidelity.routes.route_stats` style.

        ``hits`` is total (memo + disk); ``memo_hits`` never touched the
        filesystem.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "memo_entries": len(self._memo),
        }

    def _memo_get(self, key: str, kind: "str | None") -> "dict | None":
        with self._memo_lock:
            entry = self._memo.get(key)
            if entry is None or entry[0] != kind:
                return None
            self._memo.move_to_end(key)
            return entry[1]

    def _memo_put(self, key: str, kind: "str | None", parsed: dict) -> None:
        if self.memo_size == 0:
            return
        with self._memo_lock:
            self._memo[key] = (kind, parsed)
            self._memo.move_to_end(key)
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _touch(self, key: str) -> None:
        """Refresh disk recency on a memo hit, bounded caches only: LRU
        eviction ranks by file mtime, and a memo hit must keep its entry
        hot exactly like a disk hit does."""
        if self.max_entries is None:
            return
        try:
            os.utime(self._path(key))
        except OSError:
            pass

    def get(self, key: str) -> "ThroughputResult | None":
        """Return the cached result for ``key``, or ``None`` on a miss.

        Unreadable or schema-mismatched entries count as misses *and are
        deleted on the spot*: a recompute is only guaranteed to overwrite
        them if its ``put`` actually happens, and a worker crash between
        the miss and the ``put`` would otherwise leave the stale file to
        be re-parsed (and re-missed) on every future read.
        """
        memoized = self._memo_get(key, None)
        if memoized is not None:
            self.hits += 1
            self.memo_hits += 1
            self._touch(key)
            # from_dict builds fresh containers, so callers can mutate
            # their result without corrupting the memoized parse.
            return ThroughputResult.from_dict(memoized)
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # UnicodeDecodeError: non-UTF-8 garbage fails before the JSON
            # parser even sees it.
            self.misses += 1
            self._evict(path)
            return None
        try:
            if payload.get("schema_version") != CACHE_SCHEMA_VERSION:
                raise ValueError("cache schema mismatch")
            result = ThroughputResult.from_dict(payload["result"])
        except (AttributeError, KeyError, TypeError, ValueError):
            self.misses += 1
            self._evict(path)
            return None
        self.hits += 1
        self.disk_hits += 1
        self._memo_put(key, None, payload["result"])
        if self.max_entries is not None:
            # Refresh recency so hot entries survive LRU eviction.
            try:
                os.utime(path)
            except OSError:
                pass
        return result

    def _evict(self, path: Path) -> None:
        """Best-effort removal of a stale entry (races with writers are
        benign: content-addressed keys make any concurrent rewrite
        equivalent). The memo entry goes with it — an evicted key must
        read as a miss, exactly like the memo-less store."""
        with self._memo_lock:
            self._memo.pop(path.stem, None)
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: str, result: ThroughputResult, meta: "dict | None" = None) -> None:
        """Store ``result`` under ``key`` atomically."""
        payload = result.to_dict()
        self._write_entry(
            key,
            {
                "schema_version": CACHE_SCHEMA_VERSION,
                "key": key,
                "result": payload,
                "meta": meta or {},
            },
        )
        self._memo_put(key, None, payload)

    def get_payload(self, key: str, kind: str) -> "dict | None":
        """Return the raw JSON payload stored under ``key``, or ``None``.

        ``kind`` must match what :meth:`put_payload` recorded — a mismatch
        (or an unreadable entry) counts as a miss and evicts, exactly like
        :meth:`get` does for result entries. Memoized payload dicts are
        returned as-is; callers treat them as immutable (they are parsed,
        not mutated, throughout the repo).
        """
        memoized = self._memo_get(key, kind)
        if memoized is not None:
            self.hits += 1
            self.memo_hits += 1
            self._touch(key)
            return memoized
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            self._evict(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema_version") != CACHE_SCHEMA_VERSION
            or entry.get("kind") != kind
            or not isinstance(entry.get("payload"), dict)
        ):
            self.misses += 1
            self._evict(path)
            return None
        self.hits += 1
        self.disk_hits += 1
        self._memo_put(key, kind, entry["payload"])
        if self.max_entries is not None:
            try:
                os.utime(path)
            except OSError:
                pass
        return entry["payload"]

    def put_payload(self, key: str, kind: str, payload: dict) -> None:
        """Store a JSON-safe ``payload`` under ``key``, tagged with ``kind``."""
        self._write_entry(
            key,
            {
                "schema_version": CACHE_SCHEMA_VERSION,
                "key": key,
                "kind": kind,
                "payload": payload,
            },
        )
        self._memo_put(key, kind, payload)

    def _write_entry(self, key: str, entry: dict) -> None:
        """Atomically serialize one entry dict to the key's path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_entries is not None:
            self._enforce_limit()

    def _enforce_limit(self) -> None:
        """Drop least-recently-used entries beyond ``max_entries``.

        Recency is file mtime (ties broken by name for determinism);
        concurrent-writer races are benign — the worst case re-evicts an
        entry another worker just rewrote, which the content address
        makes equivalent to never having cached it.
        """
        entries = []
        for path in self.root.glob("*/*.json"):
            try:
                entries.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue
        excess = len(entries) - self.max_entries
        if excess <= 0:
            return
        entries.sort()
        for _, _, path in entries[:excess]:
            self._evict(path)
            self.evictions += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


#: Environment variable that switches on caching for code paths that do
#: not thread an explicit cache (e.g. the figure experiments).
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

_DEFAULT_CACHES: dict = {}


def default_cache() -> "ResultCache | None":
    """The process-wide cache configured via ``REPRO_CACHE_DIR``, if any.

    One instance is kept per configured root, so hit/miss counters
    accumulate across calls instead of resetting on every solve.
    """
    root = os.environ.get(CACHE_ENV_VAR)
    if not root:
        return None
    cache = _DEFAULT_CACHES.get(root)
    if cache is None:
        cache = _DEFAULT_CACHES[root] = ResultCache(root)
    return cache


#: The cache the surrounding pipeline call established, if any. Solvers
#: that want to share intermediate artifacts (route sets) read it via
#: :func:`active_cache` — they cannot take a ``cache`` keyword themselves
#: because solver options enter the result fingerprint.
_ACTIVE_CACHE: "ContextVar[ResultCache | None]" = ContextVar(
    "repro_active_cache", default=None
)


@contextmanager
def cache_context(cache: "ResultCache | None"):
    """Make ``cache`` the active cache for the duration of a solve.

    The pipeline engine wraps every solver invocation in this context, so
    a backend running under ``run_grid --cache-dir`` stores its route sets
    in the same content-addressed store as the results, without the cache
    ever appearing among the solver's (fingerprinted) options.
    """
    token = _ACTIVE_CACHE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE_CACHE.reset(token)


def active_cache() -> "ResultCache | None":
    """The cache of the enclosing :func:`cache_context`, else the default.

    Falls back to the ``REPRO_CACHE_DIR`` process-wide cache so direct
    solver calls (no pipeline in the stack) still share route sets across
    invocations when the environment opts in.
    """
    cache = _ACTIVE_CACHE.get()
    if cache is not None:
        return cache
    return default_cache()
