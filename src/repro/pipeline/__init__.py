"""Unified evaluation pipeline: declarative scenario sweeps over the
solver registry, with process parallelism and a content-addressed result
cache.

The paper's contribution is an evaluation *methodology* — throughput of
many topologies under many workloads — and this package is that
methodology as infrastructure:

>>> from repro.pipeline import ScenarioGrid, TopologySpec, TrafficSpec, run_grid
>>> from repro.flow import SolverConfig
>>> grid = ScenarioGrid(
...     name="demo",
...     topologies=(TopologySpec.make("rrg", network_degree=6,
...                                   servers_per_switch=4),),
...     traffics=(TrafficSpec.make("permutation"),),
...     solvers=(SolverConfig("edge_lp"), SolverConfig("ecmp")),
...     sizes=(16, 24),
...     seeds=3,
... )
>>> sweep = run_grid(grid, workers=4, cache_dir=".sweep-cache")
>>> print(sweep.to_table())

Every cell is deterministically seeded by content, every solve is cached
by (topology hash, traffic hash, solver config), and the same
:func:`evaluate_throughput` entry point backs the figure experiments — so
re-running any figure with ``REPRO_CACHE_DIR`` set reuses identical
solves across figures and sweeps.
"""

from repro.pipeline.cache import CACHE_ENV_VAR, ResultCache, default_cache
from repro.pipeline.engine import (
    CellResult,
    SweepResult,
    evaluate_cell,
    evaluate_throughput,
    resume_grid,
    run_grid,
)
from repro.pipeline.executors import (
    GridExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    executor_for_workers,
)
from repro.pipeline.fingerprint import (
    result_key,
    solver_fingerprint,
    topology_fingerprint,
    traffic_fingerprint,
)
from repro.pipeline.jobs import GridJob, ItemState, RetryPolicy, WorkItem
from repro.pipeline.replay import (
    ReplayJob,
    ReplayPlan,
    ReplayResult,
    ReplayStep,
    evaluate_window,
    resume_replay,
    run_replay,
)
from repro.pipeline.scenario import (
    Scenario,
    ScenarioGrid,
    TopologySpec,
    TrafficSpec,
)
from repro.pipeline.scheduler import (
    BULK,
    INTERACTIVE,
    GridScheduler,
    JobHandle,
    run_job,
)

__all__ = [
    "CACHE_ENV_VAR",
    "ResultCache",
    "default_cache",
    "CellResult",
    "SweepResult",
    "evaluate_cell",
    "evaluate_throughput",
    "resume_grid",
    "run_grid",
    "GridExecutor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "executor_for_workers",
    "GridJob",
    "ItemState",
    "RetryPolicy",
    "WorkItem",
    "BULK",
    "INTERACTIVE",
    "GridScheduler",
    "JobHandle",
    "run_job",
    "result_key",
    "solver_fingerprint",
    "topology_fingerprint",
    "traffic_fingerprint",
    "ReplayJob",
    "ReplayPlan",
    "ReplayResult",
    "ReplayStep",
    "evaluate_window",
    "resume_replay",
    "run_replay",
    "Scenario",
    "ScenarioGrid",
    "TopologySpec",
    "TrafficSpec",
]
