"""Declarative scenario grids: topologies x traffic x solvers x sizes x seeds.

A :class:`ScenarioGrid` describes a whole evaluation campaign as data — no
hand-rolled nested loops. The grid enumerates into :class:`Scenario`
cells, each carrying everything needed to build and solve one instance:

- a :class:`TopologySpec` (registry kind + constructor params),
- a :class:`TrafficSpec` (traffic-model name + params),
- a :class:`~repro.flow.solvers.SolverConfig`,
- an optional size (injected into the topology params), and
- a *replicate index* with a deterministic per-cell seed.

Per-cell seeds are derived by content (SHA-256 of the cell's coordinates,
see :func:`repro.util.hashing.stable_seed`), not by enumeration order —
slicing the grid differently, filtering cells, or distributing them across
processes never changes what any individual cell computes. The solver is
deliberately *excluded* from the seed, so every solver column sees the
same sampled topology and workload and columns stay comparable.

The optional **failure axis** (:class:`~repro.resilience.FailureSpec`
entries) degrades each cell's topology after construction. Like the
solver axis it is excluded from the cell seed — every failure column
degrades the *same* sampled topology and offers the *same* workload, so
throughput-vs-failure-rate curves are paired. The failure draw itself is
seeded from the cell seed plus the spec's model (rate excluded, see
:func:`repro.resilience.failure_seed`), which keeps failed sets nested
across rates. Cells with no failure derive byte-identical seeds and
fingerprints to grids that never mention failures, so warm caches from
failure-free sweeps survive unchanged.

Specs are plain frozen dataclasses: hashable, picklable (for worker
processes), and JSON round-trippable (for config-file-driven sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import ExperimentError
from repro.flow.solvers import SolverConfig
from repro.resilience import FailureSpec, apply_failures, failure_seed
from repro.topology.base import Topology
from repro.topology.registry import make_topology
from repro.traffic.base import TrafficMatrix
from repro.traffic.registry import make_traffic
from repro.util.hashing import stable_seed


def _freeze_params(params) -> tuple:
    if isinstance(params, Mapping):
        items = params.items()
    else:
        items = tuple(params)
    return tuple(sorted((str(k), _freeze_value(v)) for k, v in items))


def _freeze_value(value):
    if isinstance(value, list):
        return tuple(value)
    return value


@dataclass(frozen=True)
class TopologySpec:
    """A topology family: registry ``kind`` plus constructor params."""

    kind: str
    params: tuple = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_params(self.params))

    @classmethod
    def make(cls, kind: str, **params) -> "TopologySpec":
        return cls(kind=kind, params=tuple(params.items()))

    def params_dict(self) -> dict:
        return dict(self.params)

    def label(self) -> str:
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({inner})"

    def build(
        self,
        seed=None,
        size: "int | None" = None,
        size_param: str = "num_switches",
    ) -> Topology:
        """Construct the topology, injecting ``size`` and ``seed`` if given.

        ``seed`` is passed only when the factory accepts one (structured
        families like hypercube are deterministic and take no seed).
        """
        kwargs = self.params_dict()
        if size is not None:
            kwargs[size_param] = size
        if seed is not None and _factory_accepts_seed(self.kind):
            kwargs.setdefault("seed", seed)
        return make_topology(self.kind, **kwargs)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": self.params_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TopologySpec":
        return cls.make(payload["kind"], **dict(payload.get("params") or {}))


def _factory_accepts_seed(kind: str) -> bool:
    from repro.topology.registry import factory_accepts_seed

    return factory_accepts_seed(kind)


@dataclass(frozen=True)
class TrafficSpec:
    """A workload family: traffic-registry ``model`` plus params."""

    model: str
    params: tuple = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_params(self.params))

    @classmethod
    def make(cls, model: str, **params) -> "TrafficSpec":
        return cls(model=model, params=tuple(params.items()))

    def params_dict(self) -> dict:
        return dict(self.params)

    def label(self) -> str:
        if not self.params:
            return self.model
        inner = ",".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.model}({inner})"

    def build(self, topo: Topology, seed=None) -> TrafficMatrix:
        return make_traffic(self.model, topo, seed=seed, **self.params_dict())

    def to_dict(self) -> dict:
        return {"model": self.model, "params": self.params_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TrafficSpec":
        return cls.make(payload["model"], **dict(payload.get("params") or {}))


@dataclass(frozen=True)
class Scenario:
    """One grid cell: a fully specified (topology, traffic, solver) solve.

    ``failure`` (when set) degrades the built topology: the workload is
    generated against the *intact* fabric — servers on failed equipment
    still offer traffic — and the degraded view is what gets solved, so
    pass ``unreachable="drop"`` to the solver (which
    :meth:`effective_solver` defaults for failure cells).
    """

    topology: TopologySpec
    traffic: TrafficSpec
    solver: SolverConfig
    size: "int | None"
    replicate: int
    seed: int
    size_param: str = "num_switches"
    failure: "FailureSpec | None" = None

    def instance_seeds(self) -> "tuple[np.random.SeedSequence, np.random.SeedSequence]":
        """Independent (topology, traffic) seed sequences for this cell."""
        root = np.random.SeedSequence(self.seed)
        topo_ss, traffic_ss = root.spawn(2)
        return topo_ss, traffic_ss

    def build(self) -> "tuple[Topology, TrafficMatrix]":
        """Materialize the cell's (possibly degraded) topology and workload.

        The failure draw is seeded by cell seed + failure model (rate
        excluded), so a rate sweep degrades one random order of the same
        sampled fabric: failed sets are nested across rates.
        """
        topo_ss, traffic_ss = self.instance_seeds()
        topo = self.topology.build(
            seed=topo_ss, size=self.size, size_param=self.size_param
        )
        traffic = self.traffic.build(topo, seed=traffic_ss)
        if self.failure is not None and not self.failure.is_null():
            topo = apply_failures(
                topo, self.failure, seed=failure_seed(self.seed, self.failure)
            )
        return topo, traffic

    def effective_solver(self) -> SolverConfig:
        """The solver config actually run for this cell.

        Failure cells default ``unreachable="drop"`` (degraded fabrics
        may partition); an explicit ``unreachable`` option on the grid's
        solver config wins. Failure-free cells return the config as-is,
        keeping their fingerprints identical to failure-unaware sweeps.
        """
        if self.failure is None or self.failure.is_null():
            return self.solver
        options = self.solver.options_dict()
        if "unreachable" in options:
            return self.solver
        options["unreachable"] = "drop"
        return SolverConfig.make(self.solver.name, **options)

    def label(self) -> str:
        size = f" N={self.size}" if self.size is not None else ""
        failure = (
            f" / fail[{self.failure.label()}]"
            if self.failure is not None
            else ""
        )
        return (
            f"{self.topology.label()}{size} / {self.traffic.label()} / "
            f"{self.solver.label()} / rep{self.replicate}{failure}"
        )

    def to_dict(self) -> dict:
        payload = {
            "topology": self.topology.to_dict(),
            "traffic": self.traffic.to_dict(),
            "solver": self.solver.to_dict(),
            "size": self.size,
            "replicate": self.replicate,
            "seed": self.seed,
            "size_param": self.size_param,
        }
        if self.failure is not None:
            payload["failure"] = self.failure.to_dict()
        return payload


@dataclass(frozen=True)
class ScenarioGrid:
    """The declarative cross product a sweep executes.

    ``sizes`` is optional: when given, each size is injected into every
    topology's params under ``size_param``; when ``None``, topologies run
    with their own params as-is (one "size" column of ``None``).
    ``seeds`` is the number of independent replicates per
    (topology, traffic, size) combination.

    ``failures`` is the optional failure axis: a tuple of
    :class:`~repro.resilience.FailureSpec` entries applied to every
    (topology, traffic, size, replicate) combination. Null specs (model
    ``none`` or rate 0) normalize to ``None`` so the failure-free column
    computes — and caches — exactly what a failure-unaware grid does.
    """

    name: str = "sweep"
    topologies: "tuple[TopologySpec, ...]" = ()
    traffics: "tuple[TrafficSpec, ...]" = ()
    solvers: "tuple[SolverConfig, ...]" = (SolverConfig("edge_lp"),)
    sizes: "tuple[int, ...] | None" = None
    seeds: int = 1
    base_seed: int = 0
    size_param: str = "num_switches"
    failures: "tuple[FailureSpec | None, ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "topologies", tuple(self.topologies))
        object.__setattr__(self, "traffics", tuple(self.traffics))
        object.__setattr__(self, "solvers", tuple(self.solvers))
        if self.sizes is not None:
            object.__setattr__(
                self, "sizes", tuple(int(s) for s in self.sizes)
            )
        if self.failures is not None:
            normalized = tuple(
                None if spec is None or spec.is_null() else spec
                for spec in self.failures
            )
            object.__setattr__(self, "failures", normalized)
            if not normalized:
                raise ExperimentError(
                    "failures axis must have at least one entry (or be None)"
                )
        if not self.topologies:
            raise ExperimentError("grid needs at least one topology spec")
        if not self.traffics:
            raise ExperimentError("grid needs at least one traffic spec")
        if not self.solvers:
            raise ExperimentError("grid needs at least one solver config")
        if self.seeds < 1:
            raise ExperimentError(f"seeds must be >= 1, got {self.seeds}")

    def _size_axis(self) -> "tuple[int | None, ...]":
        return self.sizes if self.sizes is not None else (None,)

    def _failure_axis(self) -> "tuple[FailureSpec | None, ...]":
        return self.failures if self.failures is not None else (None,)

    def __len__(self) -> int:
        return (
            len(self.topologies)
            * len(self.traffics)
            * len(self.solvers)
            * len(self._size_axis())
            * len(self._failure_axis())
            * self.seeds
        )

    def cells(self) -> "list[Scenario]":
        """Enumerate every cell with its deterministic content-derived seed.

        The cell seed hashes (base, topology, traffic, size, replicate)
        only: solver and failure columns share one sampled instance, so
        comparisons along either axis are paired. Failure-free cells
        therefore keep the exact seeds a failure-unaware grid derives.
        """
        out: list[Scenario] = []
        for topo_spec in self.topologies:
            for size in self._size_axis():
                for traffic_spec in self.traffics:
                    for replicate in range(self.seeds):
                        seed = stable_seed(
                            {
                                "base": self.base_seed,
                                "topology": topo_spec.to_dict(),
                                "traffic": traffic_spec.to_dict(),
                                "size": size,
                                "replicate": replicate,
                            }
                        )
                        for failure in self._failure_axis():
                            for solver in self.solvers:
                                out.append(
                                    Scenario(
                                        topology=topo_spec,
                                        traffic=traffic_spec,
                                        solver=solver,
                                        size=size,
                                        replicate=replicate,
                                        seed=seed,
                                        size_param=self.size_param,
                                        failure=failure,
                                    )
                                )
        return out

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "topologies": [spec.to_dict() for spec in self.topologies],
            "traffics": [spec.to_dict() for spec in self.traffics],
            "solvers": [config.to_dict() for config in self.solvers],
            "sizes": list(self.sizes) if self.sizes is not None else None,
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "size_param": self.size_param,
            "failures": (
                [
                    (spec if spec is not None else FailureSpec.none()).to_dict()
                    for spec in self.failures
                ]
                if self.failures is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ScenarioGrid":
        """Rebuild a grid from :meth:`to_dict` output (or a config file)."""
        solvers: Iterable = payload.get("solvers") or [{"name": "edge_lp"}]
        return cls(
            name=payload.get("name", "sweep"),
            topologies=tuple(
                TopologySpec.from_dict(entry)
                for entry in payload.get("topologies", ())
            ),
            traffics=tuple(
                TrafficSpec.from_dict(entry)
                for entry in payload.get("traffics", ())
            ),
            solvers=tuple(
                SolverConfig.from_dict(entry) for entry in solvers
            ),
            sizes=(
                tuple(payload["sizes"])
                if payload.get("sizes") is not None
                else None
            ),
            seeds=int(payload.get("seeds", 1)),
            base_seed=int(payload.get("base_seed", 0)),
            size_param=payload.get("size_param", "num_switches"),
            failures=(
                tuple(
                    FailureSpec.from_dict(entry)
                    for entry in payload["failures"]
                )
                if payload.get("failures") is not None
                else None
            ),
        )
