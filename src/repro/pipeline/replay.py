"""Trace replay: a timeline axis through the job model, warm-started.

A :class:`ReplayPlan` pairs one topology with a
:class:`~repro.traffic.timeline.TrafficTimeline` and one solver; replay
evaluates throughput at **every timestep**. The plan decomposes into the
same :class:`~repro.pipeline.jobs.WorkItem` machinery grids use — one
item per *window* of consecutive steps — so the PR 8 scheduler,
executors, retry/backoff, manifest resume, and the service daemon all
apply unchanged. Windows parallelize across workers; *within* a window
steps solve sequentially so each step warm-starts from its predecessor:

- ``edge_lp`` → one :class:`~repro.flow.incremental.EdgeLPModel` built
  cold at the window's first uncached step (``sources="all"`` so later
  deltas can introduce new sources), then advanced per step via
  :meth:`~repro.flow.incremental.EdgeLPModel.apply_demand_delta`.
- ``estimate_bound`` → a :class:`~repro.metrics.paths.DemandHopTracker`
  re-prices only delta-touched sources per step.
- any other solver → per-step cold solves (``replay_mode="fallback"``).

Every step is content-addressed in the :class:`~repro.pipeline.cache.
ResultCache` by the timeline's *chained* step fingerprint (see
:meth:`TrafficTimeline.step_fingerprints`), so a warm re-run of the same
trace answers every step from the cache without materializing a single
matrix or building a single model — the CI gate asserts ``0 cold
builds`` on the second run.
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass, field

from repro.exceptions import ExperimentError, FlowError
from repro.flow.solvers import SolverConfig
from repro.pipeline.fingerprint import (
    result_key,
    solver_fingerprint,
    topology_fingerprint,
)
from repro.pipeline.jobs import GridJob
from repro.pipeline.scenario import TopologySpec
from repro.traffic.timeline import TrafficTimeline

#: Steps per work item. The window is the warm-chain unit: larger windows
#: warm-start more steps per cold build, smaller windows parallelize
#: further across workers.
DEFAULT_WINDOW = 16

#: Manifest marker distinguishing replay manifests from grid manifests.
REPLAY_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class _StepTrafficLabel:
    """Duck-typed ``TrafficSpec`` stand-in: replay steps have no model
    name, just a position in a named timeline."""

    timeline: str
    step: int

    def label(self) -> str:
        return f"{self.timeline}@t{self.step}"


@dataclass(frozen=True)
class ReplayPlan:
    """One replay run as data: topology × timeline × solver (+ windowing)."""

    name: str
    topology: TopologySpec
    timeline: TrafficTimeline
    solver: SolverConfig
    seed: int = 0
    window: int = DEFAULT_WINDOW

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ExperimentError(f"window must be >= 1, got {self.window}")

    @property
    def num_steps(self) -> int:
        return self.timeline.num_steps

    def build_topology(self):
        return self.topology.build(seed=self.seed)

    def step_fingerprints(self) -> "list[str]":
        """Chained per-step content digests (memoized on the plan)."""
        if "_step_fps" not in self.__dict__:
            object.__setattr__(
                self, "_step_fps", self.timeline.step_fingerprints()
            )
        return self.__dict__["_step_fps"]

    def cells(self) -> "list[ReplayStep]":
        return [ReplayStep(plan=self, step=i) for i in range(self.num_steps)]

    def label(self) -> str:
        return (
            f"{self.topology.label()} / {self.timeline.name} "
            f"({self.num_steps} steps) / {self.solver.label()}"
        )

    def to_dict(self) -> dict:
        return {
            "replay_schema": REPLAY_SCHEMA_VERSION,
            "name": self.name,
            "topology": self.topology.to_dict(),
            "timeline": self.timeline.to_dict(),
            "solver": self.solver.to_dict(),
            "seed": self.seed,
            "window": self.window,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ReplayPlan":
        version = payload.get("replay_schema")
        if version != REPLAY_SCHEMA_VERSION:
            raise ExperimentError(
                f"not a replay plan payload (replay_schema={version!r})"
            )
        return cls(
            name=str(payload["name"]),
            topology=TopologySpec.from_dict(payload["topology"]),
            timeline=TrafficTimeline.from_dict(payload["timeline"]),
            solver=SolverConfig.from_dict(payload["solver"]),
            seed=int(payload.get("seed", 0)),
            window=int(payload.get("window", DEFAULT_WINDOW)),
        )


@dataclass(frozen=True)
class ReplayStep:
    """One timestep of a replay — the cell unit the job model schedules.

    Duck-types the ``Scenario`` surface that
    :class:`~repro.pipeline.engine.CellResult` reads (topology / traffic
    / solver labels, failure, replicate, seed), so replay cells flow
    through the existing result, manifest, and artifact plumbing.
    """

    plan: ReplayPlan
    step: int

    #: Dispatch marker read by ``evaluate_cell`` / ``evaluate_batch``.
    is_replay_step = True

    @property
    def topology(self) -> TopologySpec:
        return self.plan.topology

    @property
    def traffic(self) -> _StepTrafficLabel:
        return _StepTrafficLabel(self.plan.timeline.name, self.step)

    @property
    def solver(self) -> SolverConfig:
        return self.plan.solver

    @property
    def failure(self):
        return None

    @property
    def replicate(self) -> int:
        return 0

    @property
    def seed(self) -> int:
        return self.plan.seed

    @property
    def size(self):
        return None

    def label(self) -> str:
        return f"{self.plan.name}@t{self.step}"

    def to_dict(self) -> dict:
        return {
            "replay": self.plan.name,
            "step": self.step,
            "topology": self.plan.topology.to_dict(),
            "solver": self.plan.solver.to_dict(),
            "step_fp": self.plan.step_fingerprints()[self.step],
        }


class _WindowSolver:
    """Per-window warm-start state: advances matrix/model/tracker
    step-by-step in ascending order, cold-building only when needed."""

    def __init__(self, plan: ReplayPlan, topo) -> None:
        self.plan = plan
        self.topo = topo
        self.timeline = plan.timeline
        options = plan.solver.options_dict()
        name = plan.solver.name
        if name == "edge_lp" and set(options) <= {"method"}:
            self.path = "lp"
        elif name == "estimate_bound" and set(options) <= {
            "error_band",
            "chunk_size",
        }:
            self.path = "bound"
        else:
            self.path = "generic"
        self.options = options
        self._matrix = None
        self._matrix_step = -1
        self._model = None
        self._model_step = -1
        self._tracker = None
        self._tracker_step = -1

    def _matrix_at(self, step: int):
        """Advance the materialized matrix to ``step`` (monotonic)."""
        if self._matrix is None or step < self._matrix_step:
            self._matrix = self.timeline.matrix_at(step)
            self._matrix_step = step
        while self._matrix_step < step:
            delta = self.timeline.deltas[self._matrix_step]
            self._matrix = delta.apply(
                self._matrix,
                name=f"{self.timeline.name}@t{self._matrix_step + 1}",
            )
            self._matrix_step += 1
        return self._matrix

    def solve(self, step: int) -> tuple:
        """Solve step ``step``; returns ``(ThroughputResult, replay_mode)``."""
        if self.path == "lp":
            return self._solve_lp(step)
        if self.path == "bound":
            return self._solve_bound(step)
        matrix = self._matrix_at(step)
        return self.plan.solver.solve(self.topo, matrix), "fallback"

    def _solve_lp(self, step: int) -> tuple:
        from repro.flow.incremental import DEFAULT_METHOD, EdgeLPModel

        method = self.options.get("method", DEFAULT_METHOD)
        mode = "warm"
        if self._model is not None and self._model_step < step:
            try:
                for i in range(self._model_step, step):
                    self._model.apply_demand_delta(self.timeline.deltas[i])
                self._model_step = step
            except FlowError:
                # e.g. a delta momentarily empties the matrix mid-advance;
                # fall back to a cold build at this step.
                self._model = None
        if self._model is None or self._model_step != step:
            matrix = self._matrix_at(step)
            self._model = EdgeLPModel(
                self.topo, matrix, method=method, sources="all"
            )
            self._model_step = step
            mode = "cold"
        return self._model.solve_result(), mode

    def _solve_bound(self, step: int) -> tuple:
        from repro.core.bounds import demand_throughput_upper_bound
        from repro.estimate.bound import SOLVER_LABEL
        from repro.estimate.common import check_error_band, finish_estimate
        from repro.metrics.paths import DemandHopTracker

        band = check_error_band(self.options.get("error_band"))
        chunk_size = int(self.options.get("chunk_size", 512))
        mode = "warm"
        matrix = self._matrix_at(step)
        if self._tracker is not None and self._tracker_step < step:
            for i in range(self._tracker_step, step):
                self._tracker.apply_delta(self.timeline.deltas[i])
            self._tracker_step = step
        if self._tracker is None or self._tracker_step != step:
            self._tracker = DemandHopTracker(
                self.topo, matrix, chunk_size=chunk_size
            )
            self._tracker_step = step
            mode = "cold"
        throughput = demand_throughput_upper_bound(
            self.topo.total_capacity, self._tracker.total
        )
        result = finish_estimate(
            throughput, matrix, SOLVER_LABEL, (), 0.0, band
        )
        return result, mode


def evaluate_window(steps: "list[ReplayStep]", cache=None) -> list:
    """Evaluate a window of replay steps, warm-starting between them.

    Steps must belong to one plan. Cache hits (by chained step
    fingerprint) skip both matrix materialization and solving; the warm
    state advances lazily to the next miss. Results return in input
    order, one :class:`~repro.pipeline.engine.CellResult` per step.
    """
    from repro.pipeline.engine import CellResult

    if not steps:
        return []
    plan = steps[0].plan
    for step in steps[1:]:
        if step.plan is not plan and step.plan != plan:
            raise ExperimentError(
                "evaluate_window needs steps from one replay plan; "
                f"{step.label()!r} differs from {steps[0].label()!r}"
            )
    shared_start = time.perf_counter()
    topo = plan.build_topology()
    topo_fp = topology_fingerprint(topo)
    solver_fp = solver_fingerprint(plan.solver)
    step_fps = plan.step_fingerprints()
    solver_state = _WindowSolver(plan, topo)
    shared_share = (time.perf_counter() - shared_start) / len(steps)

    by_step: dict = {}
    for scenario in sorted(steps, key=lambda s: s.step):
        start = time.perf_counter()
        key = result_key(topo_fp, step_fps[scenario.step], solver_fp)
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            result, mode, cache_hit = cached, "cache", True
        else:
            result, mode = solver_state.solve(scenario.step)
            cache_hit = False
            if cache is not None:
                cache.put(key, result, meta=scenario.to_dict())
        utilization = (
            result.utilization if result.total_capacity > 0 else 0.0
        )
        by_step[scenario.step] = CellResult(
            scenario=scenario,
            throughput=result.throughput,
            engine=result.solver,
            exact=result.exact,
            total_demand=result.total_demand,
            utilization=utilization,
            num_switches=topo.num_switches,
            num_servers=topo.num_servers,
            key=key,
            topology_fp=topo_fp,
            traffic_fp=step_fps[scenario.step],
            cache_hit=cache_hit,
            elapsed_s=shared_share + time.perf_counter() - start,
            is_estimate=result.is_estimate,
            error_lo=(
                result.error_band[0] if result.error_band is not None else None
            ),
            error_hi=(
                result.error_band[1] if result.error_band is not None else None
            ),
            replay_mode=mode,
        )
    return [by_step[scenario.step] for scenario in steps]


class ReplayJob(GridJob):
    """A replay run on the grid job model: windows of consecutive steps.

    Inherits the whole state machine, manifest I/O, and scheduler
    contract from :class:`~repro.pipeline.jobs.GridJob` — only the shard
    decomposition (fixed windows instead of shared-instance batches) and
    the manifest grid payload (a :class:`ReplayPlan`) differ.
    """

    def _shards(self, cells: list) -> "list[tuple]":
        window = max(1, int(self.grid.window))
        return [
            tuple(
                (index, cells[index])
                for index in range(start, min(start + window, len(cells)))
            )
            for start in range(0, len(cells), window)
        ]

    @classmethod
    def _grid_from_manifest(cls, payload: dict):
        return ReplayPlan.from_dict(payload["grid"])

    @property
    def plan(self) -> ReplayPlan:
        return self.grid


@dataclass
class ReplayResult:
    """All step results of one replay execution, plus run provenance."""

    plan: ReplayPlan
    cells: list = field(default_factory=list)
    workers: int = 1
    cache_dir: "str | None" = None
    elapsed_s: float = 0.0
    restored: int = 0

    def mode_counts(self) -> dict:
        """Steps by how they were obtained: cold / warm / cache /
        fallback, plus restored (manifest-skipped on resume, counted
        separately — restored cells keep the mode recorded when they
        originally ran)."""
        counts = {"cold": 0, "warm": 0, "cache": 0, "fallback": 0}
        for cell in self.cells:
            if cell.replay_mode in counts:
                counts[cell.replay_mode] += 1
        counts["restored"] = self.restored
        return counts

    @property
    def cold_builds(self) -> int:
        modes = [cell.replay_mode for cell in self.cells]
        return modes.count("cold")

    @property
    def warm_steps(self) -> int:
        return sum(1 for cell in self.cells if cell.replay_mode == "warm")

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cache_hit)

    @property
    def fallback_solves(self) -> int:
        return sum(
            1 for cell in self.cells if cell.replay_mode == "fallback"
        )

    def throughput_series(self) -> "list[float]":
        return [cell.throughput for cell in self.cells]

    def retained_series(self) -> "list[float]":
        """Per-step throughput relative to step 0 (the base matrix)."""
        series = self.throughput_series()
        if not series or series[0] == 0:
            return [0.0] * len(series)
        base = series[0]
        return [value / base for value in series]

    def summary(self) -> str:
        """One grep-stable line: step and warm/cold counters."""
        series = self.throughput_series()
        lo = min(series) if series else 0.0
        hi = max(series) if series else 0.0
        return (
            f"== replay {self.plan.name!r}: {len(self.cells)} steps, "
            f"{self.cold_builds} cold builds, {self.warm_steps} warm steps, "
            f"{self.cache_hits} cache hits, "
            f"{self.fallback_solves} fallback solves, "
            f"{self.restored} restored, {self.workers} worker(s), "
            f"{self.elapsed_s:.1f}s == throughput [{lo:.4f}, {hi:.4f}]"
        )

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "elapsed_s": self.elapsed_s,
            "restored": self.restored,
            "cold_builds": self.cold_builds,
            "warm_steps": self.warm_steps,
            "cache_hits": self.cache_hits,
            "fallback_solves": self.fallback_solves,
            "throughput": self.throughput_series(),
            "retained": self.retained_series(),
            "cells": [cell.row() for cell in self.cells],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    def write_csv(self, path: str) -> None:
        """One CSV row per step (same schema as sweep cell artifacts,
        plus the step index and replay mode)."""
        from repro.pipeline.engine import CellResult

        fieldnames = ["step", "replay_mode", *CellResult.FIELDS]
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for index, cell in enumerate(self.cells):
                writer.writerow(
                    {"step": index, "replay_mode": cell.replay_mode,
                     **cell.row()}
                )


def run_replay(
    plan: ReplayPlan,
    workers: int = 1,
    cache_dir: "str | None" = None,
    progress=None,
    manifest: "str | None" = None,
    retry=None,
) -> ReplayResult:
    """Execute every timestep of ``plan``; return the collected results.

    Same contract as :func:`~repro.pipeline.engine.run_grid`: windows fan
    out across ``workers`` (steps *within* a window stay sequential so
    warm starts chain), ``cache_dir`` enables the shared
    content-addressed cache keyed by chained step fingerprints, and
    ``manifest`` makes the run resumable via :func:`resume_replay`.
    """
    from repro.pipeline.engine import _execute_job

    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    start = time.perf_counter()
    job = ReplayJob(plan, cache_dir=cache_dir, manifest_path=manifest)
    cells = _execute_job(job, workers=workers, progress=progress, retry=retry)
    return ReplayResult(
        plan=plan,
        cells=cells,
        workers=workers,
        cache_dir=cache_dir,
        elapsed_s=time.perf_counter() - start,
    )


def resume_replay(
    manifest_path: str,
    workers: int = 1,
    progress=None,
    retry=None,
) -> ReplayResult:
    """Re-attach to an interrupted replay and finish only what's missing."""
    from repro.pipeline.engine import _execute_job

    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    start = time.perf_counter()
    job = ReplayJob.resume(manifest_path)
    cells = _execute_job(job, workers=workers, progress=progress, retry=retry)
    return ReplayResult(
        plan=job.plan,
        cells=cells,
        workers=workers,
        cache_dir=job.cache_dir,
        elapsed_s=time.perf_counter() - start,
        restored=len(job.restored_indices),
    )
