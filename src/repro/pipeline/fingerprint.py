"""Content fingerprints for topologies, traffic matrices, and solver configs.

The result cache is addressed by *what was actually solved*, not by how
the scenario was described: two grids that construct byte-identical
inputs share cache entries even if their specs differ (e.g. an ``rrg``
built by name vs. the same graph loaded from JSON). Fingerprints are
SHA-256 digests of canonical JSON renderings (see
:mod:`repro.util.hashing`).

Labels (topology/traffic ``name``) are deliberately excluded — they do not
affect the solve.
"""

from __future__ import annotations

from repro.flow.solvers import SolverConfig
from repro.topology.base import Topology
from repro.topology.serialization import encode_node
from repro.traffic.base import TrafficMatrix
from repro.util.hashing import stable_digest


def topology_fingerprint(topo: Topology) -> str:
    """Digest of the topology's switches, servers, clusters, and links."""
    switches = sorted(
        (
            [
                encode_node(node),
                topo.servers_at(node),
                topo.cluster_of(node),
                topo.switch_type_of(node),
            ]
            for node in topo.switches
        ),
        key=lambda entry: str(entry[0]),
    )
    links = sorted(
        (
            [encode_node(link.u), encode_node(link.v), link.capacity]
            for link in topo.links
        ),
        key=lambda entry: (str(entry[0]), str(entry[1])),
    )
    return stable_digest({"switches": switches, "links": links})


def traffic_fingerprint(traffic: TrafficMatrix) -> str:
    """Digest of the switch-level demands and flow counts.

    ``server_pairs`` only matter to the packet simulator, never to the
    flow solvers, so they are excluded; two workloads with identical
    switch-level aggregation share throughput results.
    """
    demands = sorted(
        (
            [encode_node(u), encode_node(v), units]
            for (u, v), units in traffic.demands.items()
        ),
        key=lambda entry: (str(entry[0]), str(entry[1])),
    )
    return stable_digest(
        {
            "demands": demands,
            "num_flows": traffic.num_flows,
            "num_local_flows": traffic.num_local_flows,
        }
    )


def solver_fingerprint(config: SolverConfig) -> str:
    """Digest of a solver backend choice plus its options."""
    return stable_digest(config.to_dict())


def result_key(
    topo_fp: str, traffic_fp: str, solver_fp: str
) -> str:
    """Content address of one solve: (topology, traffic, solver config)."""
    return stable_digest(
        {"topology": topo_fp, "traffic": traffic_fp, "solver": solver_fp}
    )
