"""Sweep execution: cached single solves and job-scheduled grid runs.

Two layers:

- :func:`evaluate_throughput` — solve one (topology, traffic, solver)
  instance through the solver registry with optional content-addressed
  caching. This is the call every figure experiment routes through; set
  ``REPRO_CACHE_DIR`` to give the whole experiment harness a warm cache
  without touching a single call site.
- :func:`run_grid` — execute a :class:`~repro.pipeline.scenario.ScenarioGrid`
  cell-by-cell, serially or across worker processes, returning a
  :class:`SweepResult` that renders as a summary table and serializes to
  JSON/CSV artifacts.

``run_grid`` is a thin synchronous wrapper over the layered job model:
a :class:`~repro.pipeline.jobs.GridJob` decomposes the grid into
shared-instance work items, a
:class:`~repro.pipeline.scheduler.GridScheduler` dispatches them onto a
:mod:`~repro.pipeline.executors` backend, and the wrapper blocks until
the job settles. The same job model backs the resumable ``sweep
--manifest`` path (:func:`resume_grid`) and the :mod:`repro.service`
daemon; this module keeps the cell evaluation primitives
(:func:`evaluate_cell`, :func:`evaluate_batch`) those layers execute.

Cells are independent, so parallelism is a straight fan-out; the shared
cache is filesystem-backed and atomic, so workers coordinate only
through content-addressed files.
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass, field
from statistics import fmean, pstdev

from repro.exceptions import ExperimentError
from repro.flow.result import ThroughputResult
from repro.flow.solvers import SolverConfig, solve_throughput
from repro.pipeline.cache import ResultCache, cache_context, default_cache
from repro.pipeline.fingerprint import (
    result_key,
    solver_fingerprint,
    topology_fingerprint,
    traffic_fingerprint,
)
from repro.pipeline.scenario import Scenario, ScenarioGrid
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.util.tables import format_table


def cached_solve(
    topo: Topology,
    traffic: TrafficMatrix,
    config: SolverConfig,
    cache: "ResultCache | None",
    key: "str | None" = None,
    meta: "dict | None" = None,
) -> "tuple[ThroughputResult, bool]":
    """One cached solve; returns ``(result, cache_hit)``.

    The single implementation of the get-or-solve-and-put convention —
    :func:`evaluate_throughput`, :func:`evaluate_cell`, and the growth
    trajectory runner all route through it, so the key derivation and
    entry metadata cannot drift between callers. ``key`` may be passed
    when the caller already derived the fingerprints (the cell path
    records them); ``meta`` defaults to the solver config.
    """
    if cache is None:
        return config.solve(topo, traffic), False
    if key is None:
        key = result_key(
            topology_fingerprint(topo),
            traffic_fingerprint(traffic),
            solver_fingerprint(config),
        )
    cached = cache.get(key)
    if cached is not None:
        return cached, True
    # The solve runs with this cache active so backends that precompute
    # shareable artifacts (the fidelity route sets) store them alongside
    # the results — a warm re-run then recomputes neither.
    with cache_context(cache):
        result = config.solve(topo, traffic)
    cache.put(
        key, result, meta=meta if meta is not None else {"solver": config.to_dict()}
    )
    return result, False


def evaluate_throughput(
    topo: Topology,
    traffic: TrafficMatrix,
    solver: str = "edge_lp",
    cache: "ResultCache | None | bool" = None,
    **options,
) -> ThroughputResult:
    """Solve one instance through the registry, consulting the cache.

    ``cache=None`` (default) and ``cache=True`` use the process-wide
    cache configured via the ``REPRO_CACHE_DIR`` environment variable
    when set, and no cache otherwise; pass ``cache=False`` to force a
    fresh solve; pass a :class:`ResultCache` to use it explicitly.
    """
    if cache is None or cache is True:
        cache = default_cache()
    elif cache is False:
        cache = None
    if cache is None:
        return solve_throughput(topo, traffic, solver, **options)
    result, _ = cached_solve(topo, traffic, SolverConfig.make(solver, **options), cache)
    return result


@dataclass(frozen=True)
class CellResult:
    """Outcome of one sweep cell (scenario coordinates + solved numbers).

    ``dropped_pairs``/``dropped_demand`` are non-zero only for failure
    cells solved with ``unreachable="drop"`` whose fabric partitioned:
    ``throughput`` then concerns the served demand set only.
    """

    scenario: Scenario
    throughput: float
    engine: str
    exact: bool
    total_demand: float
    utilization: float
    num_switches: int
    num_servers: int
    key: str
    topology_fp: str
    traffic_fp: str
    cache_hit: bool
    elapsed_s: float
    dropped_pairs: int = 0
    dropped_demand: float = 0.0
    #: True for estimator backends (see :mod:`repro.estimate`); the
    #: throughput column is then a calibrated estimate, not a solve.
    is_estimate: bool = False
    #: Calibrated error band bounds carried by the estimate (``None``
    #: when absent — exact solves, or uncalibrated estimator runs).
    error_lo: "float | None" = None
    error_hi: "float | None" = None
    #: How a replay step was obtained — ``"cold"`` (fresh model build),
    #: ``"warm"`` (incremental delta re-solve), ``"cache"`` (content
    #: address hit), or ``"fallback"`` (per-step cold solve for a solver
    #: without a warm path). ``None`` outside the replay path; excluded
    #: from ``FIELDS``/``row()`` so CSV artifacts are unchanged.
    replay_mode: "str | None" = None

    #: Column order shared by CSV artifacts and the summary table.
    FIELDS = (
        "topology",
        "size",
        "traffic",
        "solver",
        "failure",
        "replicate",
        "seed",
        "throughput",
        "engine",
        "exact",
        "is_estimate",
        "error_lo",
        "error_hi",
        "total_demand",
        "dropped_pairs",
        "dropped_demand",
        "utilization",
        "num_switches",
        "num_servers",
        "cache_hit",
        "elapsed_s",
        "key",
    )

    def row(self) -> dict:
        """Flat record for CSV/JSON artifacts."""
        s = self.scenario
        return {
            "topology": s.topology.label(),
            "size": s.size,
            "traffic": s.traffic.label(),
            "solver": s.solver.label(),
            "failure": s.failure.label() if s.failure is not None else "none",
            "replicate": s.replicate,
            "seed": s.seed,
            "throughput": self.throughput,
            "engine": self.engine,
            "exact": self.exact,
            "is_estimate": self.is_estimate,
            "error_lo": self.error_lo,
            "error_hi": self.error_hi,
            "total_demand": self.total_demand,
            "dropped_pairs": self.dropped_pairs,
            "dropped_demand": self.dropped_demand,
            "utilization": self.utilization,
            "num_switches": self.num_switches,
            "num_servers": self.num_servers,
            "cache_hit": self.cache_hit,
            "elapsed_s": self.elapsed_s,
            "key": self.key,
        }


def evaluate_cell(
    scenario: Scenario, cache: "ResultCache | None" = None
) -> CellResult:
    """Build and solve one grid cell, consulting the cache by content.

    Failure cells solve the degraded topology with the scenario's
    *effective* solver config (``unreachable="drop"`` defaulted in) —
    both the degraded links and the policy enter the cache key, so
    degraded and intact solves never collide.
    """
    if getattr(scenario, "is_replay_step", False):
        from repro.pipeline.replay import evaluate_window

        return evaluate_window([scenario], cache=cache)[0]
    start = time.perf_counter()
    topo, traffic = scenario.build()
    solver_config = scenario.effective_solver()
    topo_fp = topology_fingerprint(topo)
    traffic_fp = traffic_fingerprint(traffic)
    key = result_key(topo_fp, traffic_fp, solver_fingerprint(solver_config))
    result, cache_hit = cached_solve(
        topo,
        traffic,
        solver_config,
        cache,
        key=key,
        meta={"scenario": scenario.to_dict()},
    )
    utilization = (
        result.utilization if result.total_capacity > 0 else 0.0
    )
    return CellResult(
        scenario=scenario,
        throughput=result.throughput,
        engine=result.solver,
        exact=result.exact,
        total_demand=result.total_demand,
        utilization=utilization,
        num_switches=topo.num_switches,
        num_servers=topo.num_servers,
        key=key,
        topology_fp=topo_fp,
        traffic_fp=traffic_fp,
        cache_hit=cache_hit,
        elapsed_s=time.perf_counter() - start,
        dropped_pairs=result.num_dropped_pairs,
        dropped_demand=result.dropped_demand,
        is_estimate=result.is_estimate,
        error_lo=(
            result.error_band[0] if result.error_band is not None else None
        ),
        error_hi=(
            result.error_band[1] if result.error_band is not None else None
        ),
    )


def _evaluate_cell_task(args: "tuple[Scenario, str | None]") -> CellResult:
    """Module-level worker entry (must be picklable for process pools)."""
    scenario, cache_dir = args
    cache = ResultCache(cache_dir) if cache_dir else None
    return evaluate_cell(scenario, cache=cache)


def _instance_key(scenario: Scenario) -> tuple:
    """Cells with equal keys build byte-identical intact (topo, traffic).

    The grid derives one content-hashed seed per (topology, traffic,
    size, replicate) combination — the solver and failure axes are
    deliberately excluded so their columns stay paired — which makes this
    exactly the granularity at which construction work can be shared.
    """
    return (
        scenario.seed,
        scenario.topology,
        scenario.traffic,
        scenario.size,
        scenario.size_param,
        scenario.replicate,
    )


def group_cells(cells: "list[Scenario]") -> "list[list[tuple[int, Scenario]]]":
    """Partition cells into shared-instance batches, keeping grid indices.

    Batches preserve first-appearance order; within a batch, cells keep
    grid order. :func:`ScenarioGrid.cells` enumerates the failure and
    solver axes innermost, so batches are contiguous runs of the grid —
    flattening batch results reproduces grid order exactly.
    """
    groups: "dict[tuple, list]" = {}
    for index, scenario in enumerate(cells):
        groups.setdefault(_instance_key(scenario), []).append((index, scenario))
    return list(groups.values())


def evaluate_batch(
    scenarios: "list[Scenario]", cache: "ResultCache | None" = None
) -> "list[CellResult]":
    """Solve a shared-instance batch of cells, building the instance once.

    All scenarios must share an instance key (equal seeds and topology /
    traffic / size coordinates — :func:`group_cells` produces such
    batches). The intact topology and workload are built once; each
    distinct failure spec degrades (and fingerprints) its topology once;
    every solve runs inside one
    :func:`repro.estimate.batch.shared_artifacts` scope, so estimator
    columns share the CSR adjacency and the Fiedler eigensolve.

    Results carry exactly the fields :func:`evaluate_cell` would produce
    — same keys, fingerprints, and solved numbers — except ``elapsed_s``,
    which amortizes the shared construction equally across the batch's
    cells on top of each cell's own solve time.
    """
    from repro.estimate.batch import shared_artifacts
    from repro.resilience import apply_failures, failure_seed

    if not scenarios:
        return []
    first = scenarios[0]
    if getattr(first, "is_replay_step", False):
        # Replay windows ride the same work-item plumbing; their steps
        # solve sequentially with warm starts instead of instance sharing.
        from repro.pipeline.replay import evaluate_window

        return evaluate_window(list(scenarios), cache=cache)
    key0 = _instance_key(first)
    for scenario in scenarios[1:]:
        if _instance_key(scenario) != key0:
            raise ExperimentError(
                "evaluate_batch needs cells sharing one sampled instance; "
                f"{scenario.label()!r} differs from {first.label()!r}"
            )
    shared_start = time.perf_counter()
    topo_ss, traffic_ss = first.instance_seeds()
    intact = first.topology.build(
        seed=topo_ss, size=first.size, size_param=first.size_param
    )
    traffic = first.traffic.build(intact, seed=traffic_ss)
    traffic_fp = traffic_fingerprint(traffic)
    # One degraded topology + fingerprint per distinct failure column
    # (None = intact). FailureSpec is frozen/hashable, like the specs.
    instances: dict = {}
    for scenario in scenarios:
        failure = scenario.failure
        if failure is not None and failure.is_null():
            failure = None
        if failure in instances:
            continue
        if failure is None:
            topo = intact
        else:
            topo = apply_failures(
                intact, failure, seed=failure_seed(first.seed, failure)
            )
        instances[failure] = (topo, topology_fingerprint(topo))
    shared_share = (time.perf_counter() - shared_start) / len(scenarios)

    results: "list[CellResult]" = []
    with shared_artifacts():
        for scenario in scenarios:
            start = time.perf_counter()
            failure = scenario.failure
            if failure is not None and failure.is_null():
                failure = None
            topo, topo_fp = instances[failure]
            solver_config = scenario.effective_solver()
            key = result_key(
                topo_fp, traffic_fp, solver_fingerprint(solver_config)
            )
            result, cache_hit = cached_solve(
                topo,
                traffic,
                solver_config,
                cache,
                key=key,
                meta={"scenario": scenario.to_dict()},
            )
            utilization = (
                result.utilization if result.total_capacity > 0 else 0.0
            )
            results.append(
                CellResult(
                    scenario=scenario,
                    throughput=result.throughput,
                    engine=result.solver,
                    exact=result.exact,
                    total_demand=result.total_demand,
                    utilization=utilization,
                    num_switches=topo.num_switches,
                    num_servers=topo.num_servers,
                    key=key,
                    topology_fp=topo_fp,
                    traffic_fp=traffic_fp,
                    cache_hit=cache_hit,
                    elapsed_s=shared_share + time.perf_counter() - start,
                    dropped_pairs=result.num_dropped_pairs,
                    dropped_demand=result.dropped_demand,
                    is_estimate=result.is_estimate,
                    error_lo=(
                        result.error_band[0]
                        if result.error_band is not None
                        else None
                    ),
                    error_hi=(
                        result.error_band[1]
                        if result.error_band is not None
                        else None
                    ),
                )
            )
    return results


def _evaluate_batch_task(
    args: "tuple[list[Scenario], str | None]",
) -> "list[CellResult]":
    """Module-level batch worker entry (picklable for process pools).

    Shipping whole batches (instead of cells) to workers is what lets
    construction sharing survive process boundaries: a worker holds the
    batch's instance, artifact memo, and in-process cache memo for every
    cell it solves.
    """
    scenarios, cache_dir = args
    cache = ResultCache(cache_dir) if cache_dir else None
    return evaluate_batch(scenarios, cache=cache)


@dataclass
class SweepResult:
    """All cell results of one grid execution, plus run provenance.

    ``restored`` counts cells that came straight out of a resume
    manifest (see :func:`resume_grid`) — they were *skipped*, not
    re-executed, this run.
    """

    grid: ScenarioGrid
    cells: "list[CellResult]" = field(default_factory=list)
    workers: int = 1
    cache_dir: "str | None" = None
    elapsed_s: float = 0.0
    restored: int = 0
    #: ``re_solved / cache_hit / skipped`` split from the job, set by
    #: resumed runs only (``None`` keeps fresh-run artifacts unchanged).
    solve_counts: "dict | None" = None

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cache_hit)

    def rows(self) -> "list[dict]":
        return [cell.row() for cell in self.cells]

    def mean_series(self) -> "list[dict]":
        """Replicate-averaged throughput per
        (topology, size, traffic, solver, failure)."""
        groups: dict = {}
        for cell in self.cells:
            s = cell.scenario
            group_key = (
                s.topology.label(),
                s.size,
                s.traffic.label(),
                s.solver.label(),
                s.failure.label() if s.failure is not None else "none",
            )
            groups.setdefault(group_key, []).append(cell)
        out = []
        for (topology, size, traffic, solver, failure), cells in sorted(
            groups.items(), key=lambda item: tuple(map(str, item[0]))
        ):
            values = [cell.throughput for cell in cells]
            # Same mean/population-std convention as
            # experiments.common.mean_and_std (not imported: that package
            # pulls in every figure module, which import this one).
            mean, std = fmean(values), pstdev(values)
            out.append(
                {
                    "topology": topology,
                    "size": size,
                    "traffic": traffic,
                    "solver": solver,
                    "failure": failure,
                    "replicates": len(values),
                    "throughput_mean": mean,
                    "throughput_std": std,
                    "dropped_pairs_mean": fmean(
                        cell.dropped_pairs for cell in cells
                    ),
                }
            )
        return out

    def to_table(self, float_format: str = "{:.4f}") -> str:
        """Replicate-averaged summary as an aligned text table."""
        headers = [
            "topology", "size", "traffic", "solver", "failure",
            "reps", "throughput", "std", "dropped",
        ]
        rows = [
            [
                entry["topology"],
                "-" if entry["size"] is None else entry["size"],
                entry["traffic"],
                entry["solver"],
                entry["failure"],
                entry["replicates"],
                entry["throughput_mean"],
                entry["throughput_std"],
                entry["dropped_pairs_mean"],
            ]
            for entry in self.mean_series()
        ]
        header = (
            f"== sweep {self.grid.name!r}: {len(self.cells)} cells, "
            f"{self.cache_hits} cache hits, {self.workers} worker(s), "
            f"{self.elapsed_s:.1f}s ==\n"
        )
        return header + format_table(headers, rows, float_format=float_format)

    def to_dict(self) -> dict:
        payload = {
            "grid": self.grid.to_dict(),
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "elapsed_s": self.elapsed_s,
            "cache_hits": self.cache_hits,
            "cells": self.rows(),
            "summary": self.mean_series(),
        }
        if self.restored:
            payload["restored"] = self.restored
        if self.solve_counts is not None:
            payload["solve_counts"] = self.solve_counts
        return payload

    def write_json(self, path: str) -> None:
        """Write the full sweep (cells + summary + grid) as one JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    def write_csv(self, path: str) -> None:
        """Write one CSV row per cell."""
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(CellResult.FIELDS))
            writer.writeheader()
            for row in self.rows():
                writer.writerow(row)


def _execute_job(
    job,
    workers: int,
    progress=None,
    retry=None,
) -> list:
    """Run a :class:`~repro.pipeline.jobs.GridJob` to completion, bridging
    the scheduler's per-cell callback onto the old ``progress(done,
    total, cell)`` contract. Restored (manifest-skipped) cells count as
    already done, so resumed runs report honest totals."""
    from repro.pipeline.scheduler import run_job

    total = job.total_cells
    done = len(job.restored_indices)

    def on_cell(index: int, cell_result) -> None:
        # Called from the single dispatcher thread only, so the plain
        # counter needs no lock.
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, cell_result)

    return run_job(
        job,
        workers=workers,
        retry=retry,
        on_cell=on_cell if progress is not None else None,
    )


def run_grid(
    grid: ScenarioGrid,
    workers: int = 1,
    cache_dir: "str | None" = None,
    progress=None,
    batch: bool = True,
    manifest: "str | None" = None,
    retry=None,
) -> SweepResult:
    """Execute every cell of ``grid``; return the collected results.

    ``workers > 1`` fans work out over a process pool (cells are
    independent; results come back in grid order). ``cache_dir`` enables
    the shared content-addressed result cache. ``progress`` is an optional
    ``callable(done, total, cell_result)`` invoked as cells finish.

    ``batch`` (default) groups cells that share a sampled instance —
    same topology build, same workload; the grid's solver and failure
    columns — and executes each group together
    (:func:`evaluate_batch`): the instance is built and fingerprinted
    once, estimator columns share their eigensolves and adjacency, and
    under ``workers > 1`` whole groups ship to one worker so the sharing
    survives process boundaries. Solved numbers are identical either
    way; ``batch=False`` forces the one-cell-at-a-time reference path.

    ``manifest`` names a JSON run-manifest file rewritten after every
    item completion; an interrupted run resumes from it via
    :func:`resume_grid` (or ``sweep --resume``). ``retry`` is an
    optional :class:`~repro.pipeline.jobs.RetryPolicy` governing
    per-item retry/backoff/timeout; solver exceptions still propagate
    immediately by default, exactly like the direct evaluation path.
    """
    from repro.pipeline.jobs import GridJob

    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    start = time.perf_counter()
    job = GridJob(grid, batch=batch, cache_dir=cache_dir, manifest_path=manifest)
    cells = _execute_job(job, workers=workers, progress=progress, retry=retry)
    return SweepResult(
        grid=grid,
        cells=cells,
        workers=workers,
        cache_dir=cache_dir,
        elapsed_s=time.perf_counter() - start,
    )


def resume_grid(
    manifest_path: str,
    workers: int = 1,
    progress=None,
    retry=None,
) -> SweepResult:
    """Re-attach to an interrupted run and finish only what's missing.

    Cells the manifest already records are restored without executing
    anything (``SweepResult.restored`` counts them); the remaining items
    re-run against the manifest's cache directory, so cells whose solves
    already landed in the content-addressed cache come back as pure
    cache hits — a resumed run after a crash typically re-solves zero
    cells. Use :meth:`GridJob.solve_counts` semantics via the returned
    result: ``restored`` = skipped, and ``cache_hits`` splits the
    re-executed remainder.
    """
    from repro.pipeline.jobs import GridJob

    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    start = time.perf_counter()
    job = GridJob.resume(manifest_path)
    cells = _execute_job(job, workers=workers, progress=progress, retry=retry)
    return SweepResult(
        grid=job.grid,
        cells=cells,
        workers=workers,
        cache_dir=job.cache_dir,
        elapsed_s=time.perf_counter() - start,
        restored=len(job.restored_indices),
        solve_counts=job.solve_counts(),
    )
