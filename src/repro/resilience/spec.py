"""Declarative failure models.

A :class:`FailureSpec` names *what fails and how much* — it carries no
randomness of its own. Sampling happens in :mod:`repro.resilience.inject`
from an explicit seed, so the same spec replayed against the same
topology and seed always fails the same equipment.

Like :class:`~repro.pipeline.scenario.TopologySpec`, specs are frozen,
hashable, picklable, and JSON round-trippable, which is what lets the
scenario pipeline enumerate a failure axis and put the spec into sweep
artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import ExperimentError

#: Recognized failure models. ``none`` is the canonical null spec (the
#: intact fabric); any model at rate 0 behaves identically to it.
FAILURE_MODELS = ("none", "random_links", "random_switches", "correlated")


@dataclass(frozen=True)
class FailureSpec:
    """A failure model plus its rate and model-specific parameters.

    Attributes
    ----------
    model:
        One of :data:`FAILURE_MODELS`. Hyphens normalize to underscores.
    rate:
        Fraction of equipment to fail, in ``[0, 1]``: links for
        ``random_links``/``correlated``, switches for ``random_switches``.
        The failed count is ``round(rate * population)``.
    params:
        Model-specific options as sorted ``(key, value)`` pairs (e.g.
        ``cluster="small"`` restricts a correlated failure's epicenter to
        a named cluster).
    """

    model: str = "none"
    rate: float = 0.0
    params: tuple = field(default=())

    def __post_init__(self) -> None:
        model = str(self.model).strip().lower().replace("-", "_")
        if model not in FAILURE_MODELS:
            known = ", ".join(FAILURE_MODELS)
            raise ExperimentError(
                f"unknown failure model {self.model!r}; known models: {known}"
            )
        rate = float(self.rate)
        if not 0.0 <= rate <= 1.0:
            raise ExperimentError(
                f"failure rate must be in [0, 1], got {self.rate!r}"
            )
        if isinstance(self.params, Mapping):
            items = self.params.items()
        else:
            items = tuple(self.params)
        object.__setattr__(self, "model", model)
        object.__setattr__(self, "rate", rate)
        object.__setattr__(
            self, "params", tuple(sorted((str(k), v) for k, v in items))
        )

    @classmethod
    def make(cls, model: str, rate: float = 0.0, **params) -> "FailureSpec":
        """Build a spec from keyword parameters."""
        return cls(model=model, rate=rate, params=tuple(params.items()))

    @classmethod
    def none(cls) -> "FailureSpec":
        """The canonical null spec (intact fabric)."""
        return cls()

    def is_null(self) -> bool:
        """Whether this spec degrades nothing (``none`` model or rate 0)."""
        return self.model == "none" or self.rate == 0.0

    def params_dict(self) -> dict:
        return dict(self.params)

    def label(self) -> str:
        """Human-readable label, e.g. ``random_links@0.05``."""
        if self.is_null():
            return "none"
        extra = "".join(f",{k}={v!r}" for k, v in self.params)
        return f"{self.model}@{self.rate:g}{extra}"

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "rate": self.rate,
            "params": self.params_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FailureSpec":
        return cls.make(
            payload.get("model", "none"),
            rate=float(payload.get("rate", 0.0)),
            **dict(payload.get("params") or {}),
        )
