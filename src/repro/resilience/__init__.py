"""Failure injection and degraded-fabric evaluation.

The paper evaluates intact fabrics, but the companion throughput work
(Jyothi et al., "Measuring and Understanding Throughput of Network
Topologies") and the broader topology-survey literature weight *fault
tolerance* heavily when comparing structured designs (fat-tree, VL2)
against random graphs. This package turns degraded-fabric throughput into
a first-class pipeline axis:

- :class:`FailureSpec` — a declarative failure model (uniform-random link
  failures, uniform-random switch failures, correlated cluster-local
  failures) at a given rate, hashable and JSON round-trippable like the
  other pipeline specs,
- :func:`apply_failures` / :func:`degraded_view` — deterministic sampling
  plus O(1)-construction degraded :class:`~repro.topology.base.Topology`
  views (networkx ``restricted_view``; the intact graph is never copied
  or rebuilt),
- nested-by-rate sampling: for one seed, the failed set at rate ``a`` is
  a subset of the failed set at rate ``b > a``, so throughput-vs-rate
  curves are monotone per sample, not just in expectation.

Degraded views are read-only; solve them with ``unreachable="drop"``
(see :mod:`repro.flow.reachability`) so partitioned fabrics report
throughput over the served demand set instead of raising.
"""

from repro.resilience.spec import FAILURE_MODELS, FailureSpec
from repro.resilience.inject import (
    DegradedTopology,
    apply_failures,
    degraded_view,
    failure_seed,
)

__all__ = [
    "FAILURE_MODELS",
    "FailureSpec",
    "DegradedTopology",
    "apply_failures",
    "degraded_view",
    "failure_seed",
]
