"""Deterministic failure sampling and degraded topology views.

Two properties matter more than the sampling distributions themselves:

**Determinism.** Sampling is a pure function of (topology, spec, seed).
Links and switches are put into a canonical order (sorted by ``repr``)
before any random draw, so the failed set never depends on graph
insertion order, and the same seed replays the same failure anywhere —
in-process, across workers, across sessions.

**Nesting by rate.** For a fixed seed and model, the failed set at rate
``a`` is a subset of the failed set at any rate ``b >= a``: each model
draws a rate-independent random order over its population and fails the
first ``round(rate * population)`` entries. Degrading harder therefore
always yields a subgraph of the milder degradation, which makes
throughput-vs-failure-rate curves monotone non-increasing *per sample*
(as long as no demand is dropped), not merely in expectation.

Degraded topologies are **views**, not copies: :func:`degraded_view`
wraps the intact graph in a networkx ``restricted_view`` (O(1) to
create), so degrading an expensive topology — an annealed ``optimized``
fabric, a huge RRG — costs nothing beyond the sample itself. Views are
read-only; call ``.copy()`` for a mutable degraded topology.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import ExperimentError, TopologyError
from repro.resilience.spec import FailureSpec
from repro.topology.base import Topology
from repro.util.hashing import stable_seed
from repro.util.rng import as_rng


def failure_seed(cell_seed: int, spec: FailureSpec) -> int:
    """Deterministic sampling seed for one (cell, failure model) pair.

    Mixes the cell seed with the spec's *model and params but not its
    rate*: different models fail different equipment, while a rate sweep
    over one model reuses a single random order and stays nested (see
    module docstring).
    """
    return stable_seed(
        {
            "cell": int(cell_seed),
            "model": spec.model,
            "params": spec.params_dict(),
        }
    )


def _canonical_links(topo: Topology) -> list[tuple]:
    """Undirected links in canonical (repr-sorted) order."""
    return sorted(
        ((link.u, link.v) for link in topo.links),
        key=lambda pair: (repr(pair[0]), repr(pair[1])),
    )


def _canonical_switches(topo: Topology) -> list:
    return sorted(topo.switches, key=repr)


def _count(rate: float, population: int) -> int:
    return min(population, int(round(rate * population)))


def _sample_random_links(topo: Topology, spec: FailureSpec, rng) -> tuple:
    links = _canonical_links(topo)
    order = rng.permutation(len(links))
    budget = _count(spec.rate, len(links))
    return tuple(links[i] for i in order[:budget])


def _sample_random_switches(topo: Topology, spec: FailureSpec, rng) -> tuple:
    switches = _canonical_switches(topo)
    order = rng.permutation(len(switches))
    budget = _count(spec.rate, len(switches))
    return tuple(switches[i] for i in order[:budget])


def _sample_correlated(topo: Topology, spec: FailureSpec, rng) -> tuple:
    """Cluster-local link failures: a BFS ball around a random epicenter.

    Links are failed in breadth-first discovery order from the epicenter,
    so the failed set is spatially contiguous — modeling a rack/pod power
    or maintenance event rather than scattered optics faults. The
    ``cluster`` param (when given) restricts the epicenter to switches of
    that cluster label.
    """
    params = spec.params_dict()
    cluster = params.get("cluster")
    candidates = _canonical_switches(topo)
    if cluster is not None:
        candidates = [v for v in candidates if topo.cluster_of(v) == cluster]
        if not candidates:
            raise ExperimentError(
                f"correlated failure: no switches in cluster {cluster!r}"
            )
    if not candidates:
        return ()
    epicenter = candidates[int(rng.integers(len(candidates)))]
    budget = _count(spec.rate, topo.num_links)

    failed: list[tuple] = []
    seen_links: set[frozenset] = set()
    visited = {epicenter}
    frontier = [epicenter]
    while frontier and len(failed) < budget:
        next_frontier: list = []
        for node in frontier:
            for neighbor in sorted(topo.neighbors(node), key=repr):
                key = frozenset((node, neighbor))
                if key not in seen_links:
                    seen_links.add(key)
                    failed.append((node, neighbor))
                    if len(failed) >= budget:
                        return tuple(failed)
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return tuple(failed)


_SAMPLERS = {
    "random_links": _sample_random_links,
    "random_switches": _sample_random_switches,
    "correlated": _sample_correlated,
}


class DegradedTopology(Topology):
    """A read-only view of a topology with some links/switches failed.

    The underlying graph is a networkx ``restricted_view`` of the intact
    topology's graph: creation is O(1) and the intact graph is shared,
    never copied. Mutation methods inherited from :class:`Topology`
    consequently fail (networkx raises on frozen views); use ``.copy()``
    to obtain an independent, mutable degraded topology.

    Attributes
    ----------
    base:
        The intact topology this view degrades.
    failed_links:
        Undirected ``(u, v)`` link endpoints removed from the view.
    failed_switches:
        Switches removed from the view (their incident links and attached
        servers disappear with them).
    spec:
        The :class:`~repro.resilience.spec.FailureSpec` that produced the
        view, when it came from :func:`apply_failures` (``None`` for
        hand-built views).
    """

    def __init__(
        self,
        base: Topology,
        failed_links: tuple = (),
        failed_switches: tuple = (),
        spec: "FailureSpec | None" = None,
        name: "str | None" = None,
    ) -> None:
        for u, v in failed_links:
            if not base.has_link(u, v):
                raise TopologyError(
                    f"cannot fail missing link ({u!r}, {v!r})"
                )
        for node in failed_switches:
            if not base.has_switch(node):
                raise TopologyError(f"cannot fail missing switch {node!r}")
        self.base = base
        self.failed_links = tuple((u, v) for u, v in failed_links)
        self.failed_switches = tuple(failed_switches)
        self.spec = spec
        if name is None:
            suffix = spec.label() if spec is not None else "degraded"
            name = f"{base.name}!{suffix}"
        self.name = str(name)
        self._graph = nx.restricted_view(
            base.graph, self.failed_switches, self.failed_links
        )

    @property
    def num_failed_links(self) -> int:
        """Directly failed links (links lost to switch failures excluded)."""
        return len(self.failed_links)

    @property
    def num_failed_switches(self) -> int:
        return len(self.failed_switches)

    def __repr__(self) -> str:
        return (
            f"DegradedTopology(name={self.name!r}, "
            f"switches={self.num_switches}, links={self.num_links}, "
            f"failed_links={self.num_failed_links}, "
            f"failed_switches={self.num_failed_switches})"
        )


def degraded_view(
    topo: Topology,
    failed_links: "tuple | list" = (),
    failed_switches: "tuple | list" = (),
    name: "str | None" = None,
) -> DegradedTopology:
    """Wrap ``topo`` in a view with the given equipment removed."""
    return DegradedTopology(
        topo,
        failed_links=tuple(failed_links),
        failed_switches=tuple(failed_switches),
        name=name,
    )


def apply_failures(topo: Topology, spec: FailureSpec, seed=None) -> Topology:
    """Sample ``spec`` against ``topo`` and return the degraded view.

    Null specs (``none`` model or rate 0) return ``topo`` itself
    unchanged, so failure-free columns of a sweep are byte-identical to
    sweeps that never mention failures. ``seed`` accepts the usual forms
    (int, ``SeedSequence``, ``Generator``, ``None`` for fresh entropy).
    """
    if not isinstance(spec, FailureSpec):
        raise ExperimentError(
            f"spec must be a FailureSpec, got {type(spec).__name__}"
        )
    if spec.is_null():
        return topo
    rng = as_rng(seed)
    sampler = _SAMPLERS[spec.model]
    sampled = sampler(topo, spec, rng)
    if spec.model == "random_switches":
        return DegradedTopology(topo, failed_switches=sampled, spec=spec)
    return DegradedTopology(topo, failed_links=sampled, spec=spec)
