"""VL2 improvement pipeline (§7, Figure 12).

"Supporting T ToRs at full throughput" means: across every one of ``runs``
independent workload samples, the max concurrent flow gives each server
flow at least the server line-speed (rate 1.0 in our capacity units). The
paper obtains the largest supported ToR count by binary search; the ratio
of the rewired topology's count to VL2's is the headline 43% gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ExperimentError, TopologyError
from repro.pipeline.engine import evaluate_throughput
from repro.topology.base import Topology
from repro.topology.vl2 import rewired_vl2_topology, vl2_topology
from repro.traffic.alltoall import all_to_all_traffic
from repro.traffic.base import TrafficMatrix
from repro.traffic.chunky import chunky_traffic
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import child_rngs
from repro.util.validation import check_positive, check_positive_int

#: Relative slack on the full-throughput test, absorbing LP solver
#: tolerance. 0.1% of line-speed.
FULL_THROUGHPUT_TOLERANCE = 1e-3


def make_traffic(kind: str, topo: Topology, seed=None) -> TrafficMatrix:
    """Workload factory by name: permutation / all-to-all / chunky-100."""
    if kind == "permutation":
        return random_permutation_traffic(topo, seed=seed)
    if kind == "all-to-all":
        return all_to_all_traffic(topo)
    if kind.startswith("chunky-"):
        fraction = float(kind.split("-", 1)[1]) / 100.0
        return chunky_traffic(topo, fraction, seed=seed)
    raise ExperimentError(f"unknown traffic kind {kind!r}")


def supports_full_throughput(
    topo: Topology,
    traffic_kind: str = "permutation",
    runs: int = 3,
    seed=None,
    threshold: float = 1.0,
) -> tuple[bool, float]:
    """Whether every flow reaches ``threshold`` across all workload samples.

    Returns ``(supported, worst_throughput)``; ``worst_throughput`` is the
    minimum per-flow rate seen over the runs.
    """
    check_positive_int(runs, "runs")
    threshold = check_positive(threshold, "threshold")
    worst = float("inf")
    for rng in child_rngs(seed, runs):
        traffic = make_traffic(traffic_kind, topo, seed=rng)
        result = evaluate_throughput(topo, traffic)
        worst = min(worst, result.throughput)
        if worst < threshold * (1.0 - FULL_THROUGHPUT_TOLERANCE):
            return False, worst
    return True, worst


def max_tors_at_full_throughput(
    builder: Callable[..., Topology],
    max_feasible: int,
    traffic_kind: str = "permutation",
    runs: int = 3,
    seed=None,
    threshold: float = 1.0,
) -> int:
    """Binary-search the largest ToR count a builder supports.

    Parameters
    ----------
    builder:
        Callable ``builder(num_tors=..., seed=...) -> Topology``. For
        randomized builders a fresh topology sample is drawn per run.
    max_feasible:
        Structural upper limit on the ToR count (port exhaustion).

    Returns
    -------
    int
        The largest supported count, or 0 if even one ToR fails (possible
        only for degenerate builders).
    """
    check_positive_int(max_feasible, "max_feasible")
    rng_pool = child_rngs(seed, 2)
    topo_rng, traffic_rng = rng_pool

    def supported(num_tors: int) -> bool:
        if num_tors == 0:
            return True
        for run_rng in child_rngs(int(traffic_rng.integers(2**31)), runs):
            try:
                topo = builder(num_tors=num_tors, seed=topo_rng)
            except TopologyError:
                return False
            traffic = make_traffic(traffic_kind, topo, seed=run_rng)
            result = evaluate_throughput(topo, traffic)
            if result.throughput < threshold * (1.0 - FULL_THROUGHPUT_TOLERANCE):
                return False
        return True

    low, high = 0, max_feasible
    # Invariant: `low` supported, `high + 1` unknown-but-assumed-failed.
    if supported(max_feasible):
        return max_feasible
    high = max_feasible - 1
    while low < high:
        mid = (low + high + 1) // 2
        if supported(mid):
            low = mid
        else:
            high = mid - 1
    return low


@dataclass(frozen=True)
class Vl2Comparison:
    """One point of Figure 12(a)/(c)."""

    da: int
    di: int
    traffic_kind: str
    vl2_tors: int
    rewired_tors: int

    @property
    def ratio(self) -> float:
        """Servers (equivalently ToRs) supported, rewired over VL2."""
        if self.vl2_tors == 0:
            raise ExperimentError("VL2 supported zero ToRs; ratio undefined")
        return self.rewired_tors / self.vl2_tors


def vl2_improvement_ratio(
    da: int,
    di: int,
    traffic_kind: str = "permutation",
    runs: int = 3,
    seed=None,
    servers_per_tor: int = 20,
    fabric_capacity: float = 10.0,
) -> Vl2Comparison:
    """Compare ToRs supported at full throughput: VL2 vs rewired VL2.

    VL2's structural maximum is ``DA * DI / 4`` ToRs; the rewired network
    can keep adding ToRs until fabric ports run out
    (``3 DA DI / 2 / tor_uplinks``). Both sides are binary-searched under
    the same workload kind and run count.
    """
    rngs = child_rngs(seed, 2)

    def vl2_builder(num_tors: int, seed=None) -> Topology:
        return vl2_topology(
            da,
            di,
            servers_per_tor=servers_per_tor,
            fabric_capacity=fabric_capacity,
            num_tors=num_tors,
        )

    def rewired_builder(num_tors: int, seed=None) -> Topology:
        return rewired_vl2_topology(
            da,
            di,
            num_tors=num_tors,
            servers_per_tor=servers_per_tor,
            fabric_capacity=fabric_capacity,
            seed=seed,
        )

    vl2_max = (da * di) // 4
    fabric_ports = di * da + (da // 2) * di
    rewired_max = fabric_ports // 2 - 1  # keep >= 2 ports for the fabric
    vl2_tors = max_tors_at_full_throughput(
        vl2_builder, vl2_max, traffic_kind=traffic_kind, runs=runs, seed=rngs[0]
    )
    rewired_tors = max_tors_at_full_throughput(
        rewired_builder,
        rewired_max,
        traffic_kind=traffic_kind,
        runs=runs,
        seed=rngs[1],
    )
    return Vl2Comparison(
        da=da,
        di=di,
        traffic_kind=traffic_kind,
        vl2_tors=vl2_tors,
        rewired_tors=rewired_tors,
    )
