"""Joint heterogeneous-network designer (§5's combined sweep, Figure 7).

Given a fixed pool of two switch types and a server count, the designer
sweeps server splits x cross-cluster connectivity, evaluates each candidate
by exact max concurrent flow over several random samples, and reports the
ranked design points. The paper's conclusion — proportional placement with
a vanilla random interconnect is always among the optima — makes this a
practical tool: the designer confirms (or adjusts) that default for any
concrete equipment mix, including mixed line-speeds where no clean rule is
known.

Solves route through the pipeline's cached entry point
(:func:`repro.pipeline.engine.evaluate_throughput`), so a warm
``REPRO_CACHE_DIR`` answers a repeated sweep without re-solving any LPs.
For budget-driven multi-objective design across whole topology families —
cost × throughput × resilience × churn — see :mod:`repro.design`, which
generalizes this two-type grid search.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.placement import ServerSplit, feasible_server_splits
from repro.exceptions import ExperimentError, TopologyError
from repro.pipeline.engine import evaluate_throughput
from repro.topology.two_cluster import two_cluster_random_topology
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import child_rngs
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated (server split, cross fraction) candidate."""

    servers_per_large: int
    servers_per_small: int
    placement_ratio: float
    cross_fraction: float
    mean_throughput: float
    std_throughput: float
    runs: int

    def label(self) -> str:
        """Paper-style label, e.g. '12H, 4L @ x1.00'."""
        return (
            f"{self.servers_per_large}H, {self.servers_per_small}L "
            f"@ x{self.cross_fraction:.2f}"
        )


class HeterogeneousDesigner:
    """Grid-search designer over a two-type switch pool.

    Parameters
    ----------
    num_large, large_ports, num_small, small_ports:
        The equipment pool: switch counts and *total* port counts per type.
    total_servers:
        Servers to attach (each consumes one port).
    runs:
        Random samples per candidate; throughput is averaged.
    seed:
        Root seed; all candidate evaluations derive from it.
    """

    def __init__(
        self,
        num_large: int,
        large_ports: int,
        num_small: int,
        small_ports: int,
        total_servers: int,
        runs: int = 3,
        seed=None,
    ) -> None:
        self.num_large = check_positive_int(num_large, "num_large")
        self.large_ports = check_positive_int(large_ports, "large_ports")
        self.num_small = check_positive_int(num_small, "num_small")
        self.small_ports = check_positive_int(small_ports, "small_ports")
        self.total_servers = check_positive_int(total_servers, "total_servers")
        self.runs = check_positive_int(runs, "runs")
        self._seed = seed

    def candidate_splits(self) -> list[ServerSplit]:
        """All feasible uniform-per-type server splits."""
        return feasible_server_splits(
            self.num_large,
            self.large_ports,
            self.num_small,
            self.small_ports,
            self.total_servers,
        )

    def evaluate(
        self, split: ServerSplit, cross_fraction: float, seed=None
    ) -> DesignPoint:
        """Measure mean/std throughput of one candidate over ``runs`` samples."""
        throughputs: list[float] = []
        for rng in child_rngs(seed if seed is not None else self._seed, self.runs):
            topo = two_cluster_random_topology(
                num_large=self.num_large,
                large_network_ports=self.large_ports - split.servers_per_large,
                num_small=self.num_small,
                small_network_ports=self.small_ports - split.servers_per_small,
                servers_per_large=split.servers_per_large,
                servers_per_small=split.servers_per_small,
                cross_fraction=cross_fraction,
                clamp_cross=True,
                seed=rng,
            )
            if not topo.is_connected():
                throughputs.append(0.0)
                continue
            traffic = random_permutation_traffic(topo, seed=rng)
            throughputs.append(
                evaluate_throughput(topo, traffic, "edge_lp").throughput
            )
        mean = statistics.fmean(throughputs)
        std = statistics.pstdev(throughputs) if len(throughputs) > 1 else 0.0
        return DesignPoint(
            servers_per_large=split.servers_per_large,
            servers_per_small=split.servers_per_small,
            placement_ratio=split.ratio,
            cross_fraction=cross_fraction,
            mean_throughput=mean,
            std_throughput=std,
            runs=self.runs,
        )

    def search(
        self,
        splits: "list[ServerSplit] | None" = None,
        cross_fractions: "list[float] | None" = None,
    ) -> list[DesignPoint]:
        """Evaluate the grid and rank by mean throughput (best first).

        Infeasible candidates (e.g. a split that strands a cluster without
        network ports) score zero rather than aborting the search.
        """
        if splits is None:
            splits = self.candidate_splits()
        if cross_fractions is None:
            cross_fractions = [0.5, 0.75, 1.0, 1.25, 1.5]
        if not splits or not cross_fractions:
            raise ExperimentError("empty search grid")
        points: list[DesignPoint] = []
        for index, split in enumerate(splits):
            for jndex, fraction in enumerate(cross_fractions):
                derived_seed = None
                if self._seed is not None:
                    derived_seed = hash((self._seed, index, jndex)) % (2**31)
                try:
                    points.append(self.evaluate(split, fraction, seed=derived_seed))
                except TopologyError:
                    points.append(
                        DesignPoint(
                            servers_per_large=split.servers_per_large,
                            servers_per_small=split.servers_per_small,
                            placement_ratio=split.ratio,
                            cross_fraction=fraction,
                            mean_throughput=0.0,
                            std_throughput=0.0,
                            runs=self.runs,
                        )
                    )
        points.sort(key=lambda p: p.mean_throughput, reverse=True)
        return points

    def best(self, **kwargs) -> DesignPoint:
        """Convenience: the top-ranked design point of :meth:`search`."""
        return self.search(**kwargs)[0]
