"""Server-placement rules and sweep helpers (§5.1, Figures 4-5).

The paper's finding: with uniform line-speeds, attaching servers to switches
*in proportion to port count* maximizes throughput. These helpers compute
the normalization used on the figures' x-axes ("ratio to expected under
random distribution") and enumerate the feasible integer sweep points for
two-type networks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ExperimentError
from repro.util.validation import check_non_negative_int, check_positive_int


def expected_share_per_switch(
    total_servers: int, switch_ports: int, total_ports: int
) -> float:
    """Expected servers on one switch if servers landed on uniform random ports.

    The paper's x-axis normalizer: a switch with ``k`` of the network's
    ``K`` total ports expects ``total_servers * k / K`` servers.
    """
    total_servers = check_non_negative_int(total_servers, "total_servers")
    switch_ports = check_positive_int(switch_ports, "switch_ports")
    total_ports = check_positive_int(total_ports, "total_ports")
    if switch_ports > total_ports:
        raise ExperimentError(
            f"switch_ports {switch_ports} exceeds total_ports {total_ports}"
        )
    return total_servers * switch_ports / total_ports


def server_placement_ratio(
    servers_at_switch: int,
    total_servers: int,
    switch_ports: int,
    total_ports: int,
) -> float:
    """Figure 4's x-axis: servers at a switch over the random expectation."""
    expected = expected_share_per_switch(total_servers, switch_ports, total_ports)
    if expected <= 0:
        raise ExperimentError("expected share is zero; no servers to place")
    return servers_at_switch / expected


@dataclass(frozen=True)
class ServerSplit:
    """A feasible distribution of servers over a two-type switch population.

    ``ratio`` is the paper's x-axis value for the large switches.
    """

    servers_per_large: int
    servers_per_small: int
    ratio: float

    def totals(self, num_large: int, num_small: int) -> int:
        """Total servers this split places."""
        return self.servers_per_large * num_large + self.servers_per_small * num_small


def feasible_server_splits(
    num_large: int,
    large_ports: int,
    num_small: int,
    small_ports: int,
    total_servers: int,
    min_network_ports: int = 1,
) -> list[ServerSplit]:
    """Enumerate integer server splits for a two-type network sweep.

    A split assigns the same integer count to every switch of a type (the
    paper notes non-uniform placement within a type only creates
    bottlenecks). Feasibility requires: totals match ``total_servers``,
    every switch keeps at least ``min_network_ports`` ports for the
    network, and the remainder divides evenly across the small switches.
    """
    num_large = check_positive_int(num_large, "num_large")
    num_small = check_positive_int(num_small, "num_small")
    large_ports = check_positive_int(large_ports, "large_ports")
    small_ports = check_positive_int(small_ports, "small_ports")
    total_servers = check_positive_int(total_servers, "total_servers")
    check_non_negative_int(min_network_ports, "min_network_ports")

    total_ports = num_large * large_ports + num_small * small_ports
    splits: list[ServerSplit] = []
    max_large = large_ports - min_network_ports
    for servers_per_large in range(0, max_large + 1):
        remaining = total_servers - servers_per_large * num_large
        if remaining < 0:
            break
        if remaining % num_small != 0:
            continue
        servers_per_small = remaining // num_small
        if servers_per_small > small_ports - min_network_ports:
            continue
        ratio = server_placement_ratio(
            servers_per_large, total_servers, large_ports, total_ports
        )
        splits.append(
            ServerSplit(
                servers_per_large=servers_per_large,
                servers_per_small=servers_per_small,
                ratio=ratio,
            )
        )
    if not splits:
        raise ExperimentError(
            "no feasible server split; adjust totals or port budgets"
        )
    return splits


def proportional_split_for(
    num_large: int,
    large_ports: int,
    num_small: int,
    small_ports: int,
    total_servers: int,
) -> ServerSplit:
    """The feasible split closest to the proportional rule (ratio 1.0)."""
    splits = feasible_server_splits(
        num_large, large_ports, num_small, small_ports, total_servers
    )
    return min(splits, key=lambda s: abs(s.ratio - 1.0))
