"""Two-cluster cut bounds (§6.2, Equations 1 and 2, Figure 11's C̄*).

For a network split into two clusters hosting ``n1`` and ``n2`` servers with
total capacity ``C`` and cross-cluster capacity ``C̄``, random permutation
traffic sends an expected ``2 n1 n2 / (n1 + n2)`` flows across the cut, so

    T <= min( C / (<D> (n1 + n2)),  C̄ (n1 + n2) / (2 n1 n2) )      (Eqn. 1)

The first term is Theorem 1's path-length bound; the second is the cut
bound. For equal clusters the cut term starts to dominate when
``C̄ <= C / (2 <D>)`` (Eqn. 2). Given an empirical peak throughput ``T*``,
throughput *must* fall below ``T*`` once ``C̄ < C̄* = T* 2 n1 n2/(n1+n2)``
— the threshold marked on every curve of Figure 11.
"""

from __future__ import annotations

from repro.util.validation import check_positive, check_positive_int


def expected_cross_flow_fraction(n1: int, n2: int) -> float:
    """Expected fraction of random-permutation flows crossing the cut.

    Equals ``2 n1 n2 / ((n1 + n2)^2)`` of all ``n1 + n2`` flows, i.e. an
    expected ``2 n1 n2 / (n1 + n2)`` crossing flows.
    """
    n1 = check_positive_int(n1, "n1")
    n2 = check_positive_int(n2, "n2")
    total = n1 + n2
    return 2.0 * n1 * n2 / (total * total)


def two_part_throughput_bound(
    total_capacity: float,
    cross_capacity: float,
    n1: int,
    n2: int,
    aspl: float,
) -> float:
    """Equation 1: min of the path-length bound and the cut bound.

    Parameters
    ----------
    total_capacity:
        ``C``, network capacity counting both directions
        (:attr:`Topology.total_capacity`).
    cross_capacity:
        ``C̄``, capacity crossing between the clusters, both directions
        (:func:`repro.topology.two_cluster.cluster_cut_capacity`).
    n1, n2:
        Servers attached within each cluster.
    aspl:
        Average shortest path length ``<D>`` of the switch graph.
    """
    total_capacity = check_positive(total_capacity, "total_capacity")
    if cross_capacity < 0:
        raise ValueError(f"cross_capacity must be >= 0, got {cross_capacity}")
    n1 = check_positive_int(n1, "n1")
    n2 = check_positive_int(n2, "n2")
    aspl = check_positive(aspl, "aspl")
    path_bound = total_capacity / (aspl * (n1 + n2))
    cut_bound = cross_capacity * (n1 + n2) / (2.0 * n1 * n2)
    return min(path_bound, cut_bound)


def cut_drop_point(total_capacity: float, aspl: float) -> float:
    """Equation 2: the C̄ below which the cut bound dominates (equal clusters).

    Returns ``C / (2 <D>)``. For unequal clusters use
    :func:`two_part_throughput_bound` directly and find where its two terms
    cross.
    """
    total_capacity = check_positive(total_capacity, "total_capacity")
    aspl = check_positive(aspl, "aspl")
    return total_capacity / (2.0 * aspl)


def threshold_cross_capacity(peak_throughput: float, n1: int, n2: int) -> float:
    """Figure 11's C̄*: the cross capacity below which T must drop below T*.

    Since ``T <= C̄ (n1 + n2) / (2 n1 n2)``, throughput can only reach the
    empirical peak ``T*`` while ``C̄ >= T* 2 n1 n2 / (n1 + n2)``.
    """
    peak_throughput = check_positive(peak_throughput, "peak_throughput")
    n1 = check_positive_int(n1, "n1")
    n2 = check_positive_int(n2, "n2")
    return peak_throughput * 2.0 * n1 * n2 / (n1 + n2)
