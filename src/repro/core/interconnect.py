"""Cross-cluster interconnect sweep helpers (§5.1, Figures 6-8).

The x-axis of the interconnection experiments is the ratio of realized
cross-cluster links to the configuration-model expectation; these helpers
compute the feasible sweep range for given port budgets so experiments can
probe from near-partitioned to maximally-crossed without constructing
infeasible graphs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ExperimentError
from repro.topology.two_cluster import expected_cross_links
from repro.util.validation import check_positive_int


def feasible_cross_fractions(
    num_large: int,
    large_network_ports: int,
    num_small: int,
    small_network_ports: int,
    points: int = 9,
    min_fraction: float = 0.1,
    max_fraction: float = 2.0,
) -> list[float]:
    """Evenly spaced cross-fraction sweep clipped to the feasible range.

    The upper limit of the feasible range is
    ``min(stubs_large, stubs_small, num_large * num_small) / expected``;
    values above it cannot be realized by a simple graph. At least one link
    must cross (connectivity), which lower-bounds the range at
    ``1 / expected``.
    """
    check_positive_int(points, "points")
    if min_fraction <= 0 or max_fraction <= min_fraction:
        raise ExperimentError(
            "need 0 < min_fraction < max_fraction, got "
            f"({min_fraction}, {max_fraction})"
        )
    stubs_large = num_large * large_network_ports
    stubs_small = num_small * small_network_ports
    expected = expected_cross_links(stubs_large, stubs_small)
    if expected <= 0:
        raise ExperimentError("one cluster has no network ports")
    feasible_max = (
        min(stubs_large, stubs_small, num_large * num_small) / expected
    )
    feasible_min = 1.0 / expected
    low = max(min_fraction, feasible_min)
    high = min(max_fraction, feasible_max)
    if high <= low:
        raise ExperimentError(
            f"empty sweep range: [{low:.3f}, {high:.3f}] after clipping"
        )
    return [float(x) for x in np.linspace(low, high, points)]
