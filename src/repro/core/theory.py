"""Theorem 2's two-regime throughput model for two-cluster random graphs.

The paper's model: ``n`` switches of constant degree ``d`` split into two
equal clusters; every node has ``p*n`` neighbours inside its cluster and
``q*n`` in the other (``p + q = d / n``). Theorem 2 states there are
constants ``c1, c2`` such that with ``q* = c1 * p / <D>``:

- for ``q >= q*`` throughput stays within a constant factor of the peak
  ``T* = Θ(1 / (n log n))`` (the plateau),
- for ``q < q*`` throughput is ``Θ(q)`` (the linear bottleneck regime).

These helpers expose the model quantitatively so experiments can overlay
the predicted profile on measured curves, and tests can check the regime
split empirically (Lemma 2's sparsest-cut value ``Θ(q)`` is checked via
:func:`repro.metrics.cuts.nonuniform_sparsest_cut` on sampled graphs).
"""

from __future__ import annotations

import math

from repro.exceptions import BoundError
from repro.util.validation import check_positive, check_positive_int


def q_star(p: float, aspl: float, c1: float = 1.0) -> float:
    """The regime boundary ``q* = c1 * p / <D>``.

    ``p`` is the within-cluster edge density parameter of the model
    (within-cluster degree divided by ``n``).
    """
    p = check_positive(p, "p")
    aspl = check_positive(aspl, "aspl")
    c1 = check_positive(c1, "c1")
    return c1 * p / aspl


def peak_throughput_scale(num_nodes: int, degree: int) -> float:
    """Lemma 1's peak throughput scale ``T* = Θ(d / (n log n))``.

    Returned without the unknowable constant: callers normalize measured
    curves against their own peak, exactly as the paper's figures do.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    degree = check_positive_int(degree, "degree")
    if num_nodes < 3:
        raise BoundError("model needs at least 3 nodes")
    return degree / (num_nodes * math.log(num_nodes))


def two_regime_throughput(
    q: float,
    p: float,
    aspl: float,
    peak: float,
    c1: float = 1.0,
) -> float:
    """Theorem 2's predicted throughput at cross-density ``q``.

    Piecewise: the plateau value ``peak`` for ``q >= q*`` and the linear
    ramp ``peak * q / q*`` below it. The ramp is continuous at ``q*`` —
    the theorem only fixes both regimes up to constants, and continuity is
    the natural normalization for overlaying on measured data.
    """
    if q < 0:
        raise ValueError(f"q must be >= 0, got {q}")
    peak = check_positive(peak, "peak")
    boundary = q_star(p, aspl, c1)
    if q >= boundary:
        return peak
    return peak * q / boundary


def predicted_profile(
    qs: "list[float]",
    p: float,
    aspl: float,
    peak: float,
    c1: float = 1.0,
) -> dict[float, float]:
    """Evaluate :func:`two_regime_throughput` over a sweep of ``q`` values."""
    return {
        float(q): two_regime_throughput(q, p, aspl, peak, c1=c1) for q in qs
    }


def cluster_densities(
    num_nodes: int, degree: int, cross_links: int
) -> tuple[float, float]:
    """Back out ``(p, q)`` from a concrete two-cluster construction.

    For equal clusters of ``n/2`` nodes with ``X`` cross links, the model's
    densities are ``q = X / (n/2)^2 / n``-normalized... concretely: each
    node has ``2X / n`` cross neighbours on average, so ``q = 2X / n^2`` and
    ``p = d/n - q``.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    degree = check_positive_int(degree, "degree")
    if cross_links < 0:
        raise ValueError(f"cross_links must be >= 0, got {cross_links}")
    q = 2.0 * cross_links / (num_nodes * num_nodes)
    p = degree / num_nodes - q
    if p < 0:
        raise BoundError(
            f"cross_links={cross_links} exceeds total degree budget"
        )
    return p, q


def sparsest_cut_linear_in_q(q: float, constant: float = 2.0) -> float:
    """Lemma 2's sparsest-cut value for the bipartite demand graph: ``Θ(q)``.

    The lemma shows ``2 q c_min <= φ(G, H) <= 2 q``; this returns the upper
    expression ``constant * q`` (with the paper's leading constant 2 by
    default) for overlaying on measured cut values.
    """
    if q < 0:
        raise ValueError(f"q must be >= 0, got {q}")
    check_positive(constant, "constant")
    return constant * q
