"""The paper's contribution: bounds, design rules, and the VL2 case study.

- :mod:`repro.core.bounds` — Theorem 1's capacity/path-length throughput
  bound and the Cerf et al. ASPL lower bound with its "curved step"
  structure (Figures 1-3),
- :mod:`repro.core.cut_bounds` — the two-part Equation 1 bound, the
  Equation 2 drop point, and the empirical C̄* threshold (Figures 10-11),
- :mod:`repro.core.theory` — Theorem 2's two-regime throughput model for
  two-cluster random graphs,
- :mod:`repro.core.placement` / :mod:`repro.core.interconnect` — server
  placement and cross-cluster wiring rules (Figures 4-8),
- :mod:`repro.core.optimality` — throughput-vs-bound gap measurements,
- :mod:`repro.core.design` — joint designer searching placement x
  interconnect,
- :mod:`repro.core.vl2_improvement` — binary search for servers supported
  at full throughput, VL2 vs rewired VL2 (Figure 12).
"""

from repro.core.bounds import (
    aspl_lower_bound,
    aspl_step_boundaries,
    rrg_diameter_upper_bound,
    throughput_upper_bound,
)
from repro.core.cut_bounds import (
    cut_drop_point,
    expected_cross_flow_fraction,
    threshold_cross_capacity,
    two_part_throughput_bound,
)
from repro.core.theory import (
    predicted_profile,
    q_star,
    two_regime_throughput,
)
from repro.core.placement import (
    expected_share_per_switch,
    feasible_server_splits,
    server_placement_ratio,
)
from repro.core.interconnect import feasible_cross_fractions
from repro.core.cabling import (
    CableReport,
    cable_report,
    compare_layouts,
    grid_layout,
    linear_layout,
)
from repro.core.optimality import bound_ratio, measure_optimality_gap
from repro.core.design import DesignPoint, HeterogeneousDesigner
from repro.core.vl2_improvement import (
    max_tors_at_full_throughput,
    supports_full_throughput,
    vl2_improvement_ratio,
)

__all__ = [
    "aspl_lower_bound",
    "aspl_step_boundaries",
    "rrg_diameter_upper_bound",
    "throughput_upper_bound",
    "cut_drop_point",
    "expected_cross_flow_fraction",
    "threshold_cross_capacity",
    "two_part_throughput_bound",
    "predicted_profile",
    "q_star",
    "two_regime_throughput",
    "expected_share_per_switch",
    "feasible_server_splits",
    "server_placement_ratio",
    "feasible_cross_fractions",
    "CableReport",
    "cable_report",
    "compare_layouts",
    "grid_layout",
    "linear_layout",
    "bound_ratio",
    "measure_optimality_gap",
    "DesignPoint",
    "HeterogeneousDesigner",
    "max_tors_at_full_throughput",
    "supports_full_throughput",
    "vl2_improvement_ratio",
]
