"""Homogeneous throughput and path-length bounds (§4).

Theorem 1: for any topology of ``N`` switches with ``r`` network ports each
and ``f`` uniform flows,

    TH(N, r, f) <= N * r / (<D> * f),

because delivering one unit of flow over ``d`` hops consumes ``d`` units of
the network's ``N * r`` total (directed) capacity.

Cerf, Cowan, Mullin and Stanton (1974) lower-bound ``<D>`` for any r-regular
graph by the Moore-style tree count: at most ``r`` nodes at distance 1,
``r(r-1)`` at distance 2, ``r(r-1)^2`` at distance 3, and so on. Combining
the two gives the throughput upper bound every figure in §4 normalizes
against:

    TH(N, r, f) <= N * r / (d* * f).
"""

from __future__ import annotations

import math

from repro.exceptions import BoundError
from repro.util.validation import check_positive, check_positive_int


def aspl_lower_bound(num_nodes: int, degree: int) -> float:
    """Cerf et al. lower bound ``d*`` on ASPL of any ``degree``-regular graph.

    Fills distance levels greedily: level ``j`` can hold at most
    ``degree * (degree - 1) ** (j - 1)`` nodes; the last, partially filled
    level produces the "curved step" shape of Figure 3.

    Raises :class:`BoundError` when no connected ``degree``-regular graph on
    ``num_nodes`` nodes can exist (``degree < 2`` with more than
    ``degree + 1`` nodes).
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    degree = check_positive_int(degree, "degree")
    if num_nodes < 2:
        raise BoundError("ASPL needs at least 2 nodes")
    remaining = num_nodes - 1
    if degree == 1:
        if remaining > 1:
            raise BoundError(
                "a connected 1-regular graph has exactly 2 nodes"
            )
        return 1.0
    total = 0.0
    level = 1
    while remaining > 0:
        capacity = degree * (degree - 1) ** (level - 1)
        filled = min(remaining, capacity)
        total += level * filled
        remaining -= filled
        level += 1
    return total / (num_nodes - 1)


def aspl_step_boundaries(degree: int, max_levels: int = 8) -> list[int]:
    """Node counts where the ASPL bound starts a new distance level.

    For degree ``r`` the k-th boundary is ``1 + sum_{j<=k} r (r-1)^(j-1)``;
    for ``r = 4`` this yields 5, 17, 53, 161, 485, 1457, ... — the x-tics of
    Figure 3.
    """
    degree = check_positive_int(degree, "degree")
    if degree < 2:
        raise BoundError("step boundaries need degree >= 2")
    check_positive_int(max_levels, "max_levels")
    boundaries = []
    filled = 1
    for level in range(1, max_levels + 1):
        filled += degree * (degree - 1) ** (level - 1)
        boundaries.append(filled)
    return boundaries


def throughput_upper_bound(
    num_switches: int,
    network_degree: int,
    num_flows: int,
    aspl: "float | None" = None,
    capacity_per_link: float = 1.0,
) -> float:
    """Theorem 1's per-flow throughput upper bound.

    Parameters
    ----------
    num_flows:
        The paper's ``f``: the number of (unit-demand) flows in the uniform
        traffic matrix.
    aspl:
        Average shortest path length ``<D>`` to charge per delivered unit.
        Defaults to the Cerf et al. lower bound ``d*``, which makes the
        result an upper bound for *any* topology with these parameters;
        pass the observed ASPL to bound one concrete graph more tightly.
    capacity_per_link:
        Uniform per-direction link capacity (the paper uses 1).
    """
    num_switches = check_positive_int(num_switches, "num_switches")
    network_degree = check_positive_int(network_degree, "network_degree")
    num_flows = check_positive_int(num_flows, "num_flows")
    capacity_per_link = check_positive(capacity_per_link, "capacity_per_link")
    if aspl is None:
        aspl = aspl_lower_bound(num_switches, network_degree)
    else:
        aspl = check_positive(aspl, "aspl")
    total_capacity = num_switches * network_degree * capacity_per_link
    return total_capacity / (aspl * num_flows)


def topology_throughput_upper_bound(
    topo,
    num_flows: int,
    aspl: "float | None" = None,
) -> float:
    """Theorem 1's bound charged against a concrete topology's capacity.

    :func:`throughput_upper_bound` assumes exactly ``N * r`` directed
    capacity, which overstates nothing for a true r-regular graph but is
    wrong for near-regular graphs: when ``N * r`` is odd the RRG builder
    leaves one stub unused, so one switch has degree ``r - 1`` while the
    remaining capacity is still available to flows. Charging the *actual*
    total directed capacity keeps the bound valid for any topology:

        TH <= C / (<D> * f),   C = sum of directed arc capacities.

    ``aspl`` defaults to the topology's observed ASPL.
    """
    num_flows = check_positive_int(num_flows, "num_flows")
    if aspl is None:
        from repro.metrics.paths import average_shortest_path_length

        aspl = average_shortest_path_length(topo)
    aspl = check_positive(aspl, "aspl")
    total_capacity = float(topo.total_capacity)
    if total_capacity <= 0:
        raise BoundError(f"topology {topo.name!r} has no link capacity")
    return total_capacity / (aspl * num_flows)


def demand_throughput_upper_bound(
    total_capacity: float, demand_hop_sum: float
) -> float:
    """Theorem 1's capacity-charging argument for an arbitrary demand matrix.

    Delivering ``t * units`` for a pair at shortest-path distance ``d``
    consumes at least ``t * units * d`` units of directed capacity, so

        t <= C / sum_pairs(units * d).

    ``demand_hop_sum`` is that sum (see
    :func:`repro.metrics.paths.demand_hop_sum`); for the paper's uniform
    workloads it reduces to ``<D> * f`` and this matches
    :func:`topology_throughput_upper_bound`. This is the quantity the
    ``estimate_bound`` solver backend reports.
    """
    total_capacity = check_positive(total_capacity, "total_capacity")
    demand_hop_sum = check_positive(demand_hop_sum, "demand_hop_sum")
    return total_capacity / demand_hop_sum


def rrg_diameter_upper_bound(num_nodes: int, degree: int) -> float:
    """Bollobás & de la Vega style diameter bound for random regular graphs.

    With high probability the diameter of a random ``degree``-regular graph
    on ``num_nodes`` nodes is at most

        log_{d-1}(n) + log_{d-1}(log n) + C

    for a small constant ``C`` (we use the commonly quoted C = 3). Because
    diameter upper-bounds ASPL, dividing this by
    :func:`aspl_lower_bound` shows the observed-to-bound ASPL ratio tends to
    1 as ``n`` grows — the paper's Figure 3 asymptote.
    """
    num_nodes = check_positive_int(num_nodes, "num_nodes")
    degree = check_positive_int(degree, "degree")
    if degree < 3:
        raise BoundError("the diameter bound needs degree >= 3")
    if num_nodes < degree + 2:
        raise BoundError("bound needs num_nodes > degree + 1")
    base = degree - 1
    log_n = math.log(num_nodes) / math.log(base)
    log_log = math.log(max(math.log(num_nodes), 1.0)) / math.log(base)
    return log_n + log_log + 3.0
