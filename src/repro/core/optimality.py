"""Throughput-vs-upper-bound gap measurement (§4, Figures 1-2).

The headline homogeneous result: random regular graphs reach within a few
percent of the Theorem-1 + Cerf bound. :func:`measure_optimality_gap` runs
the full pipeline — sample an RRG, generate a uniform workload, solve the
exact LP, normalize against the bound — and returns both the absolute and
normalized throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bounds import aspl_lower_bound, throughput_upper_bound
from repro.exceptions import ExperimentError
from repro.metrics.paths import average_shortest_path_length
from repro.topology.random_regular import random_regular_topology
from repro.traffic.alltoall import all_to_all_traffic
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import child_rngs


def bound_ratio(
    throughput: float,
    num_switches: int,
    network_degree: int,
    num_flows: int,
) -> float:
    """Observed per-flow throughput over the Theorem-1 + Cerf bound."""
    upper = throughput_upper_bound(num_switches, network_degree, num_flows)
    if upper <= 0:
        raise ExperimentError("upper bound is non-positive")
    return throughput / upper


@dataclass(frozen=True)
class OptimalityGap:
    """One measured point of Figures 1-2."""

    num_switches: int
    network_degree: int
    servers_per_switch: int
    workload: str
    throughput: float
    bound: float
    ratio: float
    aspl: float
    aspl_bound: float

    @property
    def aspl_ratio(self) -> float:
        """Observed ASPL over the Cerf et al. lower bound."""
        return self.aspl / self.aspl_bound


def measure_optimality_gap(
    num_switches: int,
    network_degree: int,
    servers_per_switch: int,
    workload: str = "permutation",
    runs: int = 3,
    seed=None,
) -> OptimalityGap:
    """Measure an RRG's throughput against the homogeneous upper bound.

    Parameters
    ----------
    workload:
        ``"permutation"`` (server-level random permutation) or
        ``"all-to-all"``.
    runs:
        Independent topology+workload samples; throughput and ASPL are
        averaged (the paper averages 20 runs with ~1% deviation).
    """
    from repro.pipeline.engine import evaluate_throughput

    if workload not in ("permutation", "all-to-all"):
        raise ExperimentError(f"unknown workload {workload!r}")
    rngs = child_rngs(seed, runs)
    throughputs = []
    aspls = []
    num_flows = 0
    for rng in rngs:
        topo = random_regular_topology(
            num_switches,
            network_degree,
            servers_per_switch=servers_per_switch,
            seed=rng,
        )
        if workload == "permutation":
            traffic = random_permutation_traffic(topo, seed=rng)
        else:
            traffic = all_to_all_traffic(topo)
        result = evaluate_throughput(topo, traffic)
        throughputs.append(result.throughput)
        aspls.append(average_shortest_path_length(topo))
        # Use network-crossing flows only: co-located server pairs travel
        # zero hops, so charging them <D> each would understate the bound's
        # denominator and let the "upper bound" be exceeded.
        num_flows = traffic.num_network_flows
    mean_throughput = sum(throughputs) / len(throughputs)
    mean_aspl = sum(aspls) / len(aspls)
    bound = throughput_upper_bound(num_switches, network_degree, num_flows)
    return OptimalityGap(
        num_switches=num_switches,
        network_degree=network_degree,
        servers_per_switch=servers_per_switch,
        workload=workload,
        throughput=mean_throughput,
        bound=bound,
        ratio=mean_throughput / bound,
        aspl=mean_aspl,
        aspl_bound=aspl_lower_bound(num_switches, network_degree),
    )
