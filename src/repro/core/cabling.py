"""Cable-length accounting for topology layouts.

§5.1's flat-throughput plateau has an operational payoff the paper calls
out explicitly: "there is significant opportunity for clustering switches
to achieve shorter cable lengths on average, without compromising on
throughput". This module provides the measurement side of that claim —
assign switches to physical positions, total up cable lengths, and compare
layouts — so the trade can be demonstrated quantitatively (see
``examples/cabling_study.py``).

The model is deliberately simple and standard: racks on a line (or grid),
one switch per slot, cable length = Manhattan distance between slots, one
cable per link (trunked links count their multiplicity via capacity if
requested).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.util.rng import as_rng


def linear_layout(
    topo: Topology,
    order: "list | None" = None,
    group_by_cluster: bool = True,
    seed=None,
) -> dict:
    """Assign switches to consecutive integer slots on a line.

    With ``group_by_cluster`` (default), switches sharing a cluster label
    are placed contiguously — the "cluster your racks" layout; within each
    group (and for unlabeled switches) order is randomized by ``seed``.
    Passing ``order`` explicitly overrides everything.
    """
    if order is not None:
        order = list(order)
        if set(order) != set(topo.switches):
            raise TopologyError("order must contain every switch exactly once")
        return {node: index for index, node in enumerate(order)}
    rng = as_rng(seed)
    nodes = list(topo.switches)
    if group_by_cluster:
        def key(node):
            return (repr(topo.cluster_of(node) or "~"), rng.random())

        nodes.sort(key=key)
    else:
        rng.shuffle(nodes)
    return {node: index for index, node in enumerate(nodes)}


def grid_layout(
    topo: Topology,
    columns: int,
    order: "list | None" = None,
    group_by_cluster: bool = True,
    seed=None,
) -> dict:
    """Assign switches to (row, column) slots of a grid, row-major.

    Uses the same ordering policy as :func:`linear_layout`.
    """
    if columns <= 0:
        raise TopologyError(f"columns must be positive, got {columns}")
    line = linear_layout(
        topo, order=order, group_by_cluster=group_by_cluster, seed=seed
    )
    return {
        node: (slot // columns, slot % columns) for node, slot in line.items()
    }


def _distance(a, b) -> float:
    if isinstance(a, tuple) and isinstance(b, tuple):
        return float(sum(abs(x - y) for x, y in zip(a, b)))
    return float(abs(a - b))


@dataclass(frozen=True)
class CableReport:
    """Cable-length statistics for one (topology, layout) pair."""

    total_length: float
    mean_length: float
    max_length: float
    num_cables: int


def cable_report(
    topo: Topology,
    positions: dict,
    weight_by_capacity: bool = False,
) -> CableReport:
    """Measure cable lengths of a layout.

    ``weight_by_capacity`` counts a link of capacity ``c`` as ``c`` unit
    cables (a collapsed trunk), which matters when parallel links were
    aggregated.
    """
    missing = [v for v in topo.switches if v not in positions]
    if missing:
        raise TopologyError(f"layout misses switches: {missing[:4]!r}...")
    total = 0.0
    count = 0.0
    longest = 0.0
    for link in topo.links:
        length = _distance(positions[link.u], positions[link.v])
        multiplicity = link.capacity if weight_by_capacity else 1.0
        total += length * multiplicity
        count += multiplicity
        longest = max(longest, length)
    if count == 0:
        raise TopologyError("topology has no links to cable")
    return CableReport(
        total_length=total,
        mean_length=total / count,
        max_length=longest,
        num_cables=int(count) if count == int(count) else int(round(count)),
    )


@dataclass(frozen=True)
class CableChurn:
    """Physical rewiring cost of moving one topology to another.

    Counts the cables an operator must *pull out* and *install* (links
    present in exactly one of the two topologies, plus links whose trunk
    capacity changed, which require re-provisioning), with lengths taken
    from a shared layout. This is the §5.1 cabling story applied to
    expansion: a link-swap growth step touches ``O(r)`` cables while a
    structured upgrade rewires a large fraction of the fabric.
    """

    cables_removed: int
    cables_added: int
    removed_length: float
    added_length: float

    @property
    def cables_touched(self) -> int:
        """Total cables handled (removed + installed)."""
        return self.cables_removed + self.cables_added

    @property
    def length_touched(self) -> float:
        """Total cable length handled (removed + installed)."""
        return self.removed_length + self.added_length


def _link_map(topo: Topology) -> dict:
    return {
        frozenset((link.u, link.v)): link.capacity for link in topo.links
    }


def cable_churn(
    before: Topology,
    after: Topology,
    positions: dict,
) -> CableChurn:
    """Cables to remove and install when rewiring ``before`` into ``after``.

    ``positions`` must place every switch of *both* topologies (e.g. a
    :func:`linear_layout` over the union, with new racks appended at the
    end of the row). A link counts as churn when it exists in exactly one
    topology or changed capacity (a re-trunked pair removes the old cable
    bundle and installs the new one).
    """
    missing = [
        v
        for topo in (before, after)
        for v in topo.switches
        if v not in positions
    ]
    if missing:
        raise TopologyError(f"layout misses switches: {missing[:4]!r}...")
    old = _link_map(before)
    new = _link_map(after)
    removed = added = 0
    removed_length = added_length = 0.0
    for pair, capacity in old.items():
        if new.get(pair) != capacity:
            u, v = tuple(pair)
            removed += 1
            removed_length += _distance(positions[u], positions[v])
    for pair, capacity in new.items():
        if old.get(pair) != capacity:
            u, v = tuple(pair)
            added += 1
            added_length += _distance(positions[u], positions[v])
    return CableChurn(
        cables_removed=removed,
        cables_added=added,
        removed_length=removed_length,
        added_length=added_length,
    )


def compare_layouts(
    topo: Topology,
    seed=None,
) -> dict[str, CableReport]:
    """Cable reports for the clustered and the random linear layout.

    The clustered layout places each cluster contiguously; the random one
    ignores cluster structure. On cross-cluster-sparse topologies (the
    left-of-plateau regime of Figure 6 that still retains peak throughput)
    the clustered layout cuts mean cable length substantially.
    """
    rng = as_rng(seed)
    return {
        "clustered": cable_report(
            topo, linear_layout(topo, group_by_cluster=True, seed=rng)
        ),
        "random": cable_report(
            topo, linear_layout(topo, group_by_cluster=False, seed=rng)
        ),
    }
