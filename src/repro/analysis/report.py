"""One-call network analysis: structure, bounds, throughput, bottlenecks.

§6 of the paper explains throughput through utilization, path lengths,
stretch, and cut bounds; :func:`analyze_network` packages that workflow:
solve the exact flow LP for a workload, decompose the result, localize the
bottleneck by link group, and compare against the applicable analytical
bounds. The report renders as plain text for operators and is consumable
as a dataclass for programmatic use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bounds import aspl_lower_bound, throughput_upper_bound
from repro.flow.decomposition import (
    ThroughputDecomposition,
    decompose_throughput,
    group_utilization,
)
from repro.flow.result import ThroughputResult
from repro.metrics.paths import average_shortest_path_length, diameter
from repro.pipeline.engine import evaluate_throughput
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.traffic.registry import make_traffic


@dataclass
class NetworkAnalysis:
    """Everything :func:`analyze_network` measured."""

    topology_name: str
    num_switches: int
    num_links: int
    num_servers: int
    total_capacity: float
    degree_histogram: dict
    aspl: float
    network_diameter: int
    is_regular: bool
    regular_degree: "int | None"
    aspl_bound: "float | None"
    traffic_name: "str | None" = None
    throughput: "float | None" = None
    throughput_bound: "float | None" = None
    bound_ratio: "float | None" = None
    decomposition: "ThroughputDecomposition | None" = None
    group_utilizations: dict = field(default_factory=dict)
    bottleneck_group: "str | None" = None
    saturated_arcs: int = 0

    def to_text(self) -> str:
        """Render the analysis as an aligned plain-text report."""
        lines = [f"=== network analysis: {self.topology_name} ==="]
        lines.append(
            f"structure : {self.num_switches} switches, {self.num_links} links, "
            f"{self.num_servers} servers, capacity {self.total_capacity:g}"
        )
        degree_text = ", ".join(
            f"{count}x deg{deg}" for deg, count in self.degree_histogram.items()
        )
        lines.append(f"degrees   : {degree_text}")
        lines.append(
            f"paths     : ASPL {self.aspl:.3f}, diameter {self.network_diameter}"
        )
        if self.aspl_bound is not None:
            lines.append(
                f"ASPL bound: {self.aspl_bound:.3f} "
                f"(observed/bound {self.aspl / self.aspl_bound:.3f})"
            )
        if self.throughput is not None:
            lines.append("")
            lines.append(f"workload  : {self.traffic_name}")
            lines.append(f"throughput: {self.throughput:.4f} per flow (exact LP)")
            if self.throughput_bound is not None:
                lines.append(
                    f"bound     : {self.throughput_bound:.4f} "
                    f"(achieved {self.bound_ratio:.1%})"
                )
            if self.decomposition is not None:
                d = self.decomposition
                lines.append(
                    f"decompose : U={d.utilization:.3f}  <D>={d.aspl:.3f}  "
                    f"AS={d.stretch:.3f}"
                )
            if self.group_utilizations:
                lines.append("link-group utilization:")
                for group, value in sorted(self.group_utilizations.items()):
                    marker = "  <-- bottleneck" if group == self.bottleneck_group else ""
                    lines.append(f"  {group:20s} {value:6.1%}{marker}")
            lines.append(f"saturated arcs (>99% util): {self.saturated_arcs}")
        return "\n".join(lines)


def _regularity(topo: Topology) -> tuple[bool, "int | None"]:
    degrees = {topo.degree(v) for v in topo.switches}
    if len(degrees) == 1:
        return True, degrees.pop()
    return False, None


def analyze_network(
    topo: Topology,
    traffic: "TrafficMatrix | str | None" = "permutation",
    seed=None,
    result: "ThroughputResult | None" = None,
) -> NetworkAnalysis:
    """Analyze a topology, optionally under a workload.

    Parameters
    ----------
    traffic:
        A :class:`TrafficMatrix`, the name of any registered traffic model
        (see :func:`repro.traffic.registry.available_traffic_models`;
        most require servers), or ``None`` for a structure-only report.
    result:
        Optionally reuse an already-solved flow result for the given
        traffic instead of re-solving.
    """
    is_regular, degree = _regularity(topo)
    aspl = average_shortest_path_length(topo)
    bound = aspl_lower_bound(topo.num_switches, degree) if is_regular else None

    analysis = NetworkAnalysis(
        topology_name=topo.name,
        num_switches=topo.num_switches,
        num_links=topo.num_links,
        num_servers=topo.num_servers,
        total_capacity=topo.total_capacity,
        degree_histogram=topo.degree_histogram(),
        aspl=aspl,
        network_diameter=diameter(topo),
        is_regular=is_regular,
        regular_degree=degree,
        aspl_bound=bound,
    )
    if traffic is None:
        return analysis

    if isinstance(traffic, str):
        traffic = make_traffic(traffic, topo, seed=seed)

    if result is None:
        result = evaluate_throughput(topo, traffic)
    analysis.traffic_name = traffic.name
    analysis.throughput = result.throughput
    if is_regular and degree and traffic.num_network_flows > 0:
        analysis.throughput_bound = throughput_upper_bound(
            topo.num_switches, degree, traffic.num_network_flows
        )
        analysis.bound_ratio = result.throughput / analysis.throughput_bound
    if result.throughput > 0:
        analysis.decomposition = decompose_throughput(topo, traffic, result)
        groups = group_utilization(topo, result)
        analysis.group_utilizations = groups
        analysis.bottleneck_group = max(groups, key=groups.get)
    analysis.saturated_arcs = sum(
        1 for value in result.utilizations().values() if value > 0.99
    )
    return analysis
