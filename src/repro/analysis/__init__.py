"""Network analysis reports: the §6 methodology as a reusable tool."""

from repro.analysis.report import (
    NetworkAnalysis,
    analyze_network,
)

__all__ = [
    "NetworkAnalysis",
    "analyze_network",
]
