"""Small argument-validation helpers used across the library.

These raise :class:`ValueError` with a consistent message format naming the
offending argument, which keeps constructor bodies short and error messages
uniform.
"""

from __future__ import annotations

from numbers import Integral, Real


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    if not isinstance(value, Integral) or isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer >= 0 and return it as int."""
    if not isinstance(value, Integral) or isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number > 0 and return it as float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ValueError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if not value > 0 or value != value or value == float("inf"):
        raise ValueError(f"{name} must be positive and finite, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number >= 0 and return it as float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ValueError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if value < 0 or value != value or value == float("inf"):
        raise ValueError(f"{name} must be >= 0 and finite, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as float."""
    value = check_non_negative(value, name)
    if value > 1:
        raise ValueError(f"{name} must be <= 1, got {value}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in (0, 1] and return it as float."""
    value = check_positive(value, name)
    if value > 1:
        raise ValueError(f"{name} must be in (0, 1], got {value}")
    return value
