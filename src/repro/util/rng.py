"""Deterministic random-number-generator plumbing.

Every stochastic constructor in the library accepts either an integer seed,
``None`` (fresh entropy), or a :class:`numpy.random.Generator`. These helpers
normalize that convention and derive independent child generators for
multi-run experiment sweeps.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_rng(seed: "int | None | np.random.Generator | np.random.SeedSequence" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Passing an existing generator returns it unchanged, so callers can thread
    one generator through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(seed, count: int) -> list[np.random.SeedSequence]:
    """Derive ``count`` independent seed sequences from one root seed.

    Accepts any seed form :func:`as_rng` does: an existing generator is
    consumed for one draw of entropy, so repeated calls with the same
    generator yield different (but deterministic) children. Used by
    experiment sweeps so each run is independent yet the whole sweep is
    reproducible from a single integer.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        seed = int(seed.integers(2**63))
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(count)


def child_rngs(seed, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``seed``."""
    return [np.random.default_rng(ss) for ss in spawn_seeds(seed, count)]


def random_derangement(rng: np.random.Generator, n: int) -> np.ndarray:
    """Sample a uniformly random derangement of ``range(n)``.

    A derangement is a permutation with no fixed points; the paper's random
    permutation traffic requires every server to send to a *different*
    server. Uses rejection sampling, which succeeds with probability ~1/e
    per attempt, so the expected number of attempts is small and constant.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 1:
        raise ValueError("no derangement exists for n == 1")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    while True:
        perm = rng.permutation(n)
        if not np.any(perm == np.arange(n)):
            return perm


def sample_pairs_without_replacement(
    rng: np.random.Generator, items: Iterable[int]
) -> list[tuple[int, int]]:
    """Randomly partition ``items`` into disjoint unordered pairs.

    If the number of items is odd the last element is dropped. Used by
    stub-matching graph builders.
    """
    arr = np.fromiter(items, dtype=np.int64)
    rng.shuffle(arr)
    usable = len(arr) - (len(arr) % 2)
    return [(int(arr[i]), int(arr[i + 1])) for i in range(0, usable, 2)]
