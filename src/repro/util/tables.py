"""Plain-text rendering of experiment series.

The benchmark harness prints the same rows a paper figure plots; these
helpers produce aligned, copy-paste-friendly tables without any plotting
dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.4f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: Mapping[str, Mapping[float, float]],
    float_format: str = "{:.4f}",
) -> str:
    """Render several named y-series keyed by a shared x-axis.

    ``series`` maps series name -> {x: y}. Missing points render as ``-``.
    """
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label, *series.keys()]
    rows = []
    for x in xs:
        row: list[object] = [float(x) if isinstance(x, float) else x]
        for points in series.values():
            row.append(points.get(x, "-"))
        rows.append(row)
    return format_table(headers, rows, float_format=float_format)
