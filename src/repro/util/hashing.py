"""Stable content hashing for cache keys and deterministic seeding.

The pipeline's result cache is content-addressed: two sweep cells that
build byte-identical inputs must map to the same key, across processes and
Python versions. That rules out ``hash()`` (salted per process) and
``pickle`` (protocol-dependent); instead values are serialized to a
canonical JSON form (sorted keys, no whitespace) and digested with
SHA-256.
"""

from __future__ import annotations

import hashlib
import json


def canonical_json(value) -> str:
    """Serialize ``value`` to canonical JSON text.

    Keys are sorted and separators minimized so logically equal inputs
    produce identical text. Floats rely on ``repr``-shortest emission,
    which is deterministic and round-trip exact.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def stable_digest(value, length: int = 64) -> str:
    """Hex SHA-256 digest of the canonical JSON form, truncated to ``length``."""
    digest = hashlib.sha256(canonical_json(value).encode("ascii")).hexdigest()
    return digest[:length]


def stable_seed(value, bits: int = 63) -> int:
    """Deterministic non-negative integer seed derived from ``value``.

    Unlike Python's salted ``hash``, the result is identical across
    processes and sessions, so sweep cells seeded this way are reproducible
    no matter how the grid is sliced across workers.
    """
    digest = hashlib.sha256(canonical_json(value).encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)
