"""Shared utilities: RNG plumbing, validation helpers, table rendering."""

from repro.util.rng import (
    as_rng,
    child_rngs,
    spawn_seeds,
)
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "as_rng",
    "child_rngs",
    "spawn_seeds",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
