"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. More specific subclasses signal which subsystem
rejected the input or failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """A topology is malformed or a construction request is unsatisfiable."""


class GraphConstructionError(TopologyError):
    """A randomized graph builder could not realize the requested graph.

    Raised, for example, when a degree sequence is not graphical or when
    stub-matching repair fails after the configured number of attempts.
    """


class TrafficError(ReproError):
    """A traffic matrix is malformed or incompatible with a topology."""


class FlowError(ReproError):
    """A flow computation failed (infeasible model or solver failure)."""


class SolverError(FlowError):
    """The underlying LP solver reported failure."""


class BoundError(ReproError):
    """Invalid parameters passed to an analytical bound."""


class SimulationError(ReproError):
    """The packet-level simulator was misconfigured or failed."""


class EventLimitError(SimulationError):
    """The event loop hit its ``max_events`` safety wall.

    Catchable separately from other simulation failures so callers can
    retry with a larger budget (``SimulationConfig.max_events``) instead
    of treating the run as malformed.
    """


class ExperimentError(ReproError):
    """An experiment harness was given inconsistent parameters."""


class DesignError(ReproError):
    """A topology-design request is malformed or unsatisfiable.

    Raised by :mod:`repro.design` for inconsistent parts catalogs,
    infeasible design specs (e.g. no candidate fits the budget), and
    malformed Pareto-frontier insertions.
    """
