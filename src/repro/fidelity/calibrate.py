"""Per-(family, mechanism) calibration for the fidelity solvers.

The fluid mechanisms are lower bounds by construction, but *how far*
below the exact LP a mechanism lands is a property of the topology
family (ECMP on a fat tree collides differently than on a random
graph). This module fits exactly the same ratio bands as
:mod:`repro.estimate.calibrate` does for estimators — mechanism-vs-exact
on small instances, ratio range widened by a margin — so a band like
``sim_mptcp`` on ``rrg`` quantifies the routing gap §5 of the paper
reports, and the differential gate can assert a mechanism's result sits
*inside* its calibrated band, not merely below the LP.

Calibration is mechanism-configuration specific: a band fit with
``paths=8`` says nothing about ``paths=2``. ``calibrate_mechanisms``
therefore takes a mapping of mechanism name -> options and threads it
through as ``estimator_options``.
"""

from __future__ import annotations

from typing import Mapping

from repro.estimate.calibrate import (
    DEFAULT_MARGIN,
    CalibrationTable,
    calibrate_estimators,
)

#: Mechanisms (and the option sets) the fidelity experiment calibrates.
DEFAULT_MECHANISMS: "dict[str, dict]" = {
    "sim_ecmp": {"paths": 8},
    "sim_mptcp": {"subflows": 8},
}


def calibrate_mechanisms(
    mechanisms: "Mapping[str, Mapping] | None" = None,
    families: "Mapping[str, Mapping] | None" = None,
    sizes: "tuple | None" = None,
    replicates: int = 2,
    traffic: str = "permutation",
    traffic_params: "Mapping | None" = None,
    margin: float = DEFAULT_MARGIN,
    base_seed: int = 0,
    exact_solver: str = "edge_lp",
) -> CalibrationTable:
    """Fit mechanism-vs-exact ratio bands per topology family.

    ``mechanisms`` maps solver names to the options to calibrate under
    (default :data:`DEFAULT_MECHANISMS`); everything else mirrors
    :func:`repro.estimate.calibrate.calibrate_estimators`, which does the
    actual work — mechanism solvers satisfy the same solver contract, so
    the estimator harness applies unchanged.
    """
    chosen = {
        name: dict(options)
        for name, options in (
            DEFAULT_MECHANISMS if mechanisms is None else mechanisms
        ).items()
    }
    return calibrate_estimators(
        tuple(chosen),
        families=families,
        sizes=sizes,
        replicates=replicates,
        traffic=traffic,
        traffic_params=traffic_params,
        margin=margin,
        base_seed=base_seed,
        exact_solver=exact_solver,
        estimator_options=chosen,
    )
