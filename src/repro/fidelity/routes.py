"""Route-set precomputation: the shared substrate of the fidelity solvers.

A :class:`RouteSet` holds, for one (topology, demand-pair set, mechanism)
combination, the concrete switch paths a routing mechanism can use:

- ``mode="ecmp"``: the equal-cost shortest paths of every pair, each
  weighted by its per-hop hash probability (at every switch an ECMP hash
  splits uniformly over the next hops that lie on *some* shortest path,
  so a path's probability is the product of ``1/outdegree`` along it).
  These weights are exactly the distribution a hardware hash samples a
  flow's path from.
- ``mode="ksp"``: up to ``k`` short simple paths per pair for MPTCP-style
  subflow routing. The default ``"tree"`` method enumerates the
  shortest-path DAG first and then mines jittered shortest-path trees for
  detours — everything batched through :mod:`scipy.sparse.csgraph`, which
  is what keeps N = 1000+ precomputation in seconds where per-pair Yen
  would take minutes. ``method="yen"`` calls the exact
  :func:`repro.metrics.paths.k_shortest_paths` per pair (small N, and
  byte-compatible with the packet simulator's historical routing).

Route sets are content-addressed — (topology fingerprint, pair-set
digest, mode, k, method) — and shared through the pipeline's
:class:`~repro.pipeline.cache.ResultCache` as kind-tagged payloads, so a
sweep, an annealing run, and a growth trajectory touching the same fabric
compute its routes exactly once. A small in-process memo sits in front of
the disk store; :func:`route_stats` exposes computed/memo/disk counters
(the CI warm-run gate asserts ``computed == 0`` on a second pass).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.exceptions import FlowError, TopologyError
from repro.topology.base import Topology
from repro.util.hashing import stable_digest, stable_seed

#: Payload tag under which route sets live in the result cache.
ROUTE_SET_KIND = "route-set"

#: Bump when the RouteSet payload schema changes; old entries re-compute.
ROUTE_SET_SCHEMA_VERSION = 1

#: Default enumeration method per mode.
DEFAULT_METHODS = {"ecmp": "dag", "ksp": "tree"}

#: Accepted (mode, method) combinations.
_METHODS = {
    "ecmp": ("dag", "enum"),
    "ksp": ("tree", "yen"),
}

#: Minimum detour-mining rounds for the ``"tree"`` method beyond the
#: shortest tier; each round re-runs one batched Dijkstra per pending
#: source with a fresh edge jitter, so the cost is a few tree
#: computations per requested path, not k Yen runs. The actual round
#: count scales with ``k`` (see :func:`_ksp_tree_sets`).
MAX_DETOUR_ROUNDS = 8

#: Jitter amplitudes cycled across detour rounds. Small amplitudes
#: diversify among near-shortest paths; large ones (edge weights up to
#: 1 + amplitude) let genuinely longer detours win a tree, which is
#: where the extra MPTCP subflows come from on low-multiplicity graphs.
_JITTER_AMPLITUDES = (0.25, 0.5, 1.0, 1.75, 3.0, 5.0)

#: In-process memo size (route sets at N=1000 run to a few MB each).
_MEMO_MAX = 8

_MEMO: "OrderedDict[str, RouteSet]" = OrderedDict()
_STATS = {"computed": 0, "memo_hits": 0, "disk_hits": 0}


def route_stats() -> dict:
    """Counters since the last reset: computed / memo_hits / disk_hits."""
    return dict(_STATS)


def reset_route_stats() -> None:
    """Zero the counters and drop the in-process memo (tests, CLI runs)."""
    for key in _STATS:
        _STATS[key] = 0
    _MEMO.clear()


@dataclass(frozen=True)
class RouteSet:
    """Precomputed paths (and path weights) for an ordered pair set.

    ``paths[i]`` is the tuple of switch paths for ``pairs[i]`` (each path
    a node tuple from source to destination, inclusive); ``weights[i]``
    are the matching sampling probabilities, normalized to sum to 1.
    ``truncated`` counts pairs whose enumeration hit the ``k`` cap, so
    their weights describe the enumerated subset only.
    """

    mode: str
    k: int
    method: str
    key: str
    pairs: tuple
    paths: tuple
    weights: tuple
    truncated: int = 0
    _index: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._index.update((pair, i) for i, pair in enumerate(self.pairs))

    def paths_for(self, u, v) -> tuple:
        """The path tuple of pair ``(u, v)``."""
        return self.paths[self._position(u, v)]

    def weights_for(self, u, v) -> tuple:
        """The sampling weights of pair ``(u, v)``."""
        return self.weights[self._position(u, v)]

    def _position(self, u, v) -> int:
        try:
            return self._index[(u, v)]
        except KeyError:
            raise FlowError(
                f"route set has no pair ({u!r}, {v!r})"
            ) from None

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def num_paths(self) -> int:
        """Total paths across pairs."""
        return sum(len(group) for group in self.paths)

    def to_payload(self) -> dict:
        """JSON-safe form for the result cache."""
        from repro.topology.serialization import encode_node

        return {
            "schema_version": ROUTE_SET_SCHEMA_VERSION,
            "mode": self.mode,
            "k": self.k,
            "method": self.method,
            "key": self.key,
            "truncated": self.truncated,
            "pairs": [
                {
                    "u": encode_node(u),
                    "v": encode_node(v),
                    "paths": [
                        [encode_node(node) for node in path] for path in group
                    ],
                    "weights": list(wgroup),
                }
                for (u, v), group, wgroup in zip(
                    self.pairs, self.paths, self.weights
                )
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RouteSet":
        """Rebuild from :meth:`to_payload` output (raises on mismatch)."""
        from repro.topology.serialization import decode_node

        if payload.get("schema_version") != ROUTE_SET_SCHEMA_VERSION:
            raise FlowError("route-set payload schema mismatch")
        pairs: list = []
        paths: list = []
        weights: list = []
        for entry in payload["pairs"]:
            pairs.append((decode_node(entry["u"]), decode_node(entry["v"])))
            paths.append(
                tuple(
                    tuple(decode_node(node) for node in path)
                    for path in entry["paths"]
                )
            )
            weights.append(tuple(float(w) for w in entry["weights"]))
        return cls(
            mode=str(payload["mode"]),
            k=int(payload["k"]),
            method=str(payload["method"]),
            key=str(payload["key"]),
            pairs=tuple(pairs),
            paths=tuple(paths),
            weights=tuple(weights),
            truncated=int(payload.get("truncated", 0)),
        )


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------
def canonical_pairs(pairs) -> tuple:
    """Deduplicate and repr-sort a pair iterable (the key's pair order)."""
    unique = {
        (u, v): None for u, v in pairs
    }
    return tuple(sorted(unique, key=lambda p: (repr(p[0]), repr(p[1]))))


def pairs_digest(pairs: tuple) -> str:
    """Content digest of a canonical pair tuple."""
    from repro.topology.serialization import encode_node

    return stable_digest(
        [[encode_node(u), encode_node(v)] for u, v in pairs]
    )


def route_set_key(
    topo_fp: str, pairs_fp: str, mode: str, k: int, method: str
) -> str:
    """Content address of one route set.

    The leading ``kind`` field keeps route-set keys in their own address
    space — they can never collide with throughput-result keys, which
    hash a different canonical document.
    """
    return stable_digest(
        {
            "kind": ROUTE_SET_KIND,
            "schema": ROUTE_SET_SCHEMA_VERSION,
            "topology": topo_fp,
            "pairs": pairs_fp,
            "mode": mode,
            "k": int(k),
            "method": method,
        }
    )


def _check_mode(mode: str, method: "str | None") -> str:
    if mode not in _METHODS:
        known = ", ".join(sorted(_METHODS))
        raise FlowError(f"unknown route-set mode {mode!r}; known: {known}")
    method = method or DEFAULT_METHODS[mode]
    if method not in _METHODS[mode]:
        known = ", ".join(_METHODS[mode])
        raise FlowError(
            f"unknown method {method!r} for mode {mode!r}; known: {known}"
        )
    return method


# ----------------------------------------------------------------------
# Enumeration engines
# ----------------------------------------------------------------------
def _graph_arrays(topo: Topology):
    """(nodes, index, csr adjacency) shared by the scipy-backed methods."""
    import networkx as nx

    nodes = topo.switches
    index = {node: i for i, node in enumerate(nodes)}
    adjacency = nx.to_scipy_sparse_array(
        topo.graph, nodelist=nodes, weight=None, format="csr"
    )
    return nodes, index, adjacency


def _dag_enumerate(u, v, next_hops, cap: int):
    """DFS the shortest-path DAG from ``u`` toward ``v``.

    Returns ``(paths, weights, truncated)`` where each weight is the
    per-hop hash probability of its path (product of 1/outdegree). The
    weights of a complete enumeration sum to exactly 1.
    """
    paths: list = []
    weights: list = []
    truncated = False
    stack = [((u,), 1.0)]
    while stack:
        path, prob = stack.pop()
        node = path[-1]
        if node == v:
            paths.append(path)
            weights.append(prob)
            if len(paths) >= cap:
                truncated = bool(stack)
                break
            continue
        hops = next_hops(node)
        share = prob / len(hops)
        for nxt in reversed(hops):
            stack.append((path + (nxt,), share))
    return paths, weights, truncated


def _ecmp_dag_sets(topo: Topology, pairs: tuple, k: int):
    """Equal-cost path sets with hash weights, batched by destination."""
    import numpy as np
    from scipy.sparse import csgraph

    nodes, index, adjacency = _graph_arrays(topo)
    nbrs = {node: sorted(topo.neighbors(node), key=repr) for node in nodes}
    by_dest: dict = {}
    for u, v in pairs:
        by_dest.setdefault(v, []).append(u)
    dests = sorted(by_dest, key=repr)
    dest_rows = np.fromiter(
        (index[v] for v in dests), dtype=np.int64, count=len(dests)
    )
    out: dict = {}
    truncated_pairs = 0
    chunk = 256
    for start in range(0, len(dests), chunk):
        batch = dest_rows[start : start + chunk]
        distances = csgraph.dijkstra(adjacency, unweighted=True, indices=batch)
        for offset, dest in enumerate(dests[start : start + chunk]):
            dist = distances[offset]

            def next_hops(node, dist=dist):
                return [
                    b for b in nbrs[node]
                    if dist[index[b]] == dist[index[node]] - 1
                ]

            for u in by_dest[dest]:
                if not np.isfinite(dist[index[u]]):
                    raise TopologyError(
                        f"pair {u!r}->{dest!r} has no path in {topo.name!r}"
                    )
                paths, weights, truncated = _dag_enumerate(
                    u, dest, next_hops, k
                )
                if truncated:
                    truncated_pairs += 1
                    total = sum(weights)
                    weights = [w / total for w in weights]
                out[(u, dest)] = (tuple(paths), tuple(weights))
    return out, truncated_pairs


def _ecmp_enum_sets(topo: Topology, pairs: tuple, k: int):
    """Equal-cost pools in :func:`all_shortest_paths` order, uniform weights.

    This is the packet simulator's historical path pool, preserved
    byte-for-byte so route-table-backed runs reproduce the direct ones.
    """
    from repro.metrics.paths import all_shortest_paths

    out: dict = {}
    truncated_pairs = 0
    for u, v in pairs:
        pool = [tuple(p) for p in all_shortest_paths(topo, u, v, limit=k)]
        if not pool:
            raise TopologyError(
                f"pair {u!r}->{v!r} has no path in {topo.name!r}"
            )
        if len(pool) >= k:
            truncated_pairs += 1
        share = 1.0 / len(pool)
        out[(u, v)] = (tuple(pool), tuple(share for _ in pool))
    return out, truncated_pairs


def _first_dag_path(start, target, next_hops, avoid):
    """First shortest-DAG path from ``start`` to ``target`` that skips
    ``avoid`` (bounded DFS; ``None`` when every short path hits it)."""
    paths, _, _ = _dag_enumerate(start, target, next_hops, 8)
    for path in paths:
        if avoid not in path:
            return path
    return None


def _neighbor_detours(topo: Topology, pairs, k: int, found: dict, seen: dict):
    """Deterministic one-hop detours for pairs short of ``k`` paths.

    For a pending pair (u, v), force a path through every neighbor of
    each endpoint: ``u -> w -> (shortest w..v)`` and
    ``(shortest u..w') -> w' -> v``. Jitter alone starves short pairs —
    a direct edge wins nearly every jittered tree — while these detours
    are exactly the next-shortest alternatives MPTCP subflows would use.
    One batched Dijkstra over all endpoint nodes covers every candidate.
    """
    import numpy as np
    from scipy.sparse import csgraph

    pending = [pair for pair in pairs if len(found[pair]) < k]
    if not pending:
        return
    nodes, index, adjacency = _graph_arrays(topo)
    nbrs = {node: sorted(topo.neighbors(node), key=repr) for node in nodes}
    targets = sorted(
        {u for u, _ in pending} | {v for _, v in pending}, key=repr
    )
    rows = np.fromiter(
        (index[t] for t in targets), dtype=np.int64, count=len(targets)
    )
    dist_to: dict = {}
    chunk = 256
    for start in range(0, len(targets), chunk):
        batch = rows[start : start + chunk]
        distances = csgraph.dijkstra(adjacency, unweighted=True, indices=batch)
        for offset, target in enumerate(targets[start : start + chunk]):
            dist_to[target] = distances[offset]

    def hops_toward(target):
        dist = dist_to[target]

        def next_hops(node):
            return [
                b for b in nbrs[node]
                if dist[index[b]] == dist[index[node]] - 1
            ]

        return next_hops

    for u, v in pending:
        candidates: list = []
        toward_v = hops_toward(v)
        for w in nbrs[u]:
            if w == v or not np.isfinite(dist_to[v][index[w]]):
                continue
            tail = _first_dag_path(w, v, toward_v, avoid=u)
            if tail is not None:
                candidates.append((u,) + tail)
        toward_u = hops_toward(u)
        for w in nbrs[v]:
            if w == u or not np.isfinite(dist_to[u][index[w]]):
                continue
            head = _first_dag_path(w, u, toward_u, avoid=v)
            if head is not None:
                candidates.append(tuple(reversed(head)) + (v,))
        for path in candidates:
            if len(set(path)) != len(path) or path in seen[(u, v)]:
                continue
            seen[(u, v)].add(path)
            found[(u, v)].append(path)


def _extract_tree_path(pred_row, index, nodes, u, v):
    """Walk a Dijkstra predecessor row from ``v`` back to ``u``."""
    path = [v]
    row = index[u]
    cursor = index[v]
    while cursor != row:
        cursor = pred_row[cursor]
        if cursor < 0:
            return None
        path.append(nodes[cursor])
    path.reverse()
    return tuple(path)


def _ksp_tree_sets(topo: Topology, pairs: tuple, k: int, topo_fp: str):
    """k short simple paths per pair: shortest DAG tier + jittered trees.

    Round 0 takes up to ``k`` true shortest paths from the ECMP DAG.
    Subsequent rounds (a few per requested path) rebuild one
    shortest-path tree per pending source on a multiplicatively jittered
    copy of the graph, cycling through :data:`_JITTER_AMPLITUDES` — small
    amplitudes diversify among near-shortest paths, large ones trade hops
    for diversity, which is what MPTCP subflows need on low-multiplicity
    random graphs. Jitter is seeded from (topology fingerprint, round),
    so the result is a pure function of content.
    """
    import numpy as np
    from scipy.sparse import csgraph

    dag_sets, _ = _ecmp_dag_sets(topo, pairs, k)
    found: dict = {pair: list(dag_sets[pair][0]) for pair in pairs}
    seen: dict = {pair: set(found[pair]) for pair in pairs}
    _neighbor_detours(topo, pairs, k, found, seen)

    nodes, index, adjacency = _graph_arrays(topo)
    base = adjacency.astype(np.float64)
    rounds = max(MAX_DETOUR_ROUNDS, 4 * k)
    for round_no in range(1, rounds + 1):
        pending = [pair for pair in pairs if len(found[pair]) < k]
        if not pending:
            break
        by_source: dict = {}
        for u, v in pending:
            by_source.setdefault(u, []).append(v)
        sources = sorted(by_source, key=repr)
        seed = stable_seed(
            {"route-jitter": topo_fp, "round": round_no}
        )
        rng = np.random.default_rng(seed)
        jittered = base.copy()
        amplitude = _JITTER_AMPLITUDES[
            (round_no - 1) % len(_JITTER_AMPLITUDES)
        ]
        jittered.data = 1.0 + amplitude * rng.random(jittered.nnz)
        source_rows = np.fromiter(
            (index[u] for u in sources), dtype=np.int64, count=len(sources)
        )
        chunk = 256
        for start in range(0, len(sources), chunk):
            batch = source_rows[start : start + chunk]
            _, predecessors = csgraph.dijkstra(
                jittered, indices=batch, return_predecessors=True
            )
            for offset, u in enumerate(sources[start : start + chunk]):
                pred_row = predecessors[offset]
                for v in by_source[u]:
                    path = _extract_tree_path(pred_row, index, nodes, u, v)
                    if path is None or path in seen[(u, v)]:
                        continue
                    seen[(u, v)].add(path)
                    found[(u, v)].append(path)
    out: dict = {}
    for pair, group in found.items():
        group.sort(key=lambda p: (len(p), tuple(repr(n) for n in p)))
        group = group[:k]
        share = 1.0 / len(group)
        out[pair] = (tuple(group), tuple(share for _ in group))
    return out, 0


def _ksp_yen_sets(topo: Topology, pairs: tuple, k: int):
    """Exact Yen path sets, in Yen's native (length-sorted) order."""
    from repro.metrics.paths import k_shortest_paths

    out: dict = {}
    for u, v in pairs:
        group = [tuple(p) for p in k_shortest_paths(topo, u, v, k)]
        if not group:
            raise TopologyError(
                f"pair {u!r}->{v!r} has no path in {topo.name!r}"
            )
        share = 1.0 / len(group)
        out[(u, v)] = (tuple(group), tuple(share for _ in group))
    return out, 0


def compute_route_set(
    topo: Topology,
    pairs,
    mode: str = "ecmp",
    k: int = 8,
    method: "str | None" = None,
    topo_fp: "str | None" = None,
    key: "str | None" = None,
) -> RouteSet:
    """Enumerate a route set from scratch (no cache involved)."""
    from repro.util.validation import check_positive_int

    check_positive_int(k, "k")
    method = _check_mode(mode, method)
    pairs = canonical_pairs(pairs)
    if not pairs:
        raise FlowError("route set needs at least one pair")
    for u, v in pairs:
        if u == v:
            raise FlowError(f"pair ({u!r}, {v!r}) has equal endpoints")
        for node in (u, v):
            if node not in topo:
                raise TopologyError(f"switch {node!r} does not exist")
    if key is None:
        if topo_fp is None:
            from repro.pipeline.fingerprint import topology_fingerprint

            topo_fp = topology_fingerprint(topo)
        key = route_set_key(topo_fp, pairs_digest(pairs), mode, k, method)
    if mode == "ecmp" and method == "dag":
        sets, truncated = _ecmp_dag_sets(topo, pairs, k)
    elif mode == "ecmp":
        sets, truncated = _ecmp_enum_sets(topo, pairs, k)
    elif method == "tree":
        if topo_fp is None:
            from repro.pipeline.fingerprint import topology_fingerprint

            topo_fp = topology_fingerprint(topo)
        sets, truncated = _ksp_tree_sets(topo, pairs, k, topo_fp)
    else:
        sets, truncated = _ksp_yen_sets(topo, pairs, k)
    return RouteSet(
        mode=mode,
        k=int(k),
        method=method,
        key=key,
        pairs=pairs,
        paths=tuple(sets[pair][0] for pair in pairs),
        weights=tuple(sets[pair][1] for pair in pairs),
        truncated=truncated,
    )


def route_set_for(
    topo: Topology,
    pairs,
    mode: str = "ecmp",
    k: int = 8,
    method: "str | None" = None,
    cache=None,
    topo_fp: "str | None" = None,
) -> RouteSet:
    """Memo -> disk cache -> compute, in that order.

    ``cache=None`` consults :func:`repro.pipeline.cache.active_cache` —
    inside a ``run_grid``/``cached_solve`` invocation that is the sweep's
    own cache, so every worker process shares one on-disk route store.
    """
    method = _check_mode(mode, method)
    pairs = canonical_pairs(pairs)
    if topo_fp is None:
        from repro.pipeline.fingerprint import topology_fingerprint

        topo_fp = topology_fingerprint(topo)
    key = route_set_key(topo_fp, pairs_digest(pairs), mode, k, method)
    memoized = _MEMO.get(key)
    if memoized is not None:
        _MEMO.move_to_end(key)
        _STATS["memo_hits"] += 1
        return memoized
    if cache is None:
        from repro.pipeline.cache import active_cache

        cache = active_cache()
    if cache is not None:
        payload = cache.get_payload(key, ROUTE_SET_KIND)
        if payload is not None:
            try:
                route_set = RouteSet.from_payload(payload)
            except (FlowError, KeyError, TypeError, ValueError):
                route_set = None
            if route_set is not None:
                _STATS["disk_hits"] += 1
                _memoize(key, route_set)
                return route_set
    route_set = compute_route_set(
        topo, pairs, mode=mode, k=k, method=method, topo_fp=topo_fp, key=key
    )
    _STATS["computed"] += 1
    if cache is not None:
        cache.put_payload(key, ROUTE_SET_KIND, route_set.to_payload())
    _memoize(key, route_set)
    return route_set


def _memoize(key: str, route_set: RouteSet) -> None:
    _MEMO[key] = route_set
    _MEMO.move_to_end(key)
    while len(_MEMO) > _MEMO_MAX:
        _MEMO.popitem(last=False)
