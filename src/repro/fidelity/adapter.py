"""``sim_packet``: the seed packet simulator as a registry solver.

Wraps :class:`~repro.simulation.simulator.PacketLevelSimulator` in the
standard solver contract so packet-level fidelity slots into the same
sweeps, caches and differential tests as the fluid mechanisms and the
LPs. The adapter adds what the raw simulator lacks:

- the ``unreachable`` drop policy (server pairs whose switch pair is
  unroutable are dropped and reported, mirroring every other backend);
- :class:`~repro.flow.result.ThroughputResult` assembly — measured
  goodput as throughput, post-warmup link loads as ``arc_flows``;
- a content-derived default seed, so identical inputs reproduce
  identical runs without the caller managing RNG state.

Caching caveat: the pipeline's result fingerprint covers switch-level
demands but deliberately **not** ``server_pairs`` (see
:mod:`repro.pipeline.fingerprint`). Two traffic matrices with the same
demands but different server placements would share a cache key; for the
repo's generators placements are derived deterministically from the
demands, so this cannot arise there — but hand-built matrices that vary
``server_pairs`` independently should not be cached with ``sim_packet``.
``docs/fidelity.md`` spells this out.

The measured goodput is a *simulation outcome*, not a bound: TCP's
window dynamics generally leave it below the fluid optimum, but it is
not mathematically guaranteed to stay there, so the backend registers as
``estimate=True`` and the differential matrix checks it against a
calibrated band rather than a one-sided inequality.
"""

from __future__ import annotations

from repro.flow.reachability import resolve_unreachable, unserved_result
from repro.flow.result import ThroughputResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.util.hashing import stable_seed

#: Throughput statistics the adapter can report.
PACKET_METRICS = ("min", "mean")


def sim_packet(
    topo: Topology,
    traffic: TrafficMatrix,
    unreachable: str = "error",
    metric: str = "min",
    duration: float = 400.0,
    warmup: float = 150.0,
    subflows: int = 8,
    routing_mode: str = "k-shortest",
    server_capacity: float = 1.0,
    packet_size: float = 1.0,
    max_events: int = 20_000_000,
    seed: "int | None" = None,
    error_band=None,
) -> ThroughputResult:
    """Packet-level throughput of ``traffic`` on ``topo``.

    ``traffic`` must carry explicit ``server_pairs``. ``metric="min"``
    reports the worst per-flow goodput (the paper's definition);
    ``"mean"`` the average. Remaining keywords mirror
    :class:`~repro.simulation.simulator.SimulationConfig`.
    """
    from repro.exceptions import FlowError
    from repro.simulation.simulator import PacketLevelSimulator, SimulationConfig

    if metric not in PACKET_METRICS:
        known = ", ".join(PACKET_METRICS)
        raise FlowError(f"unknown packet metric {metric!r}; known: {known}")
    label = f"sim-packet-{metric}"
    if traffic.server_pairs is None:
        raise FlowError(
            f"traffic {traffic.name!r} has no server-level pairs; "
            "sim_packet needs explicit endpoints (build the matrix with "
            "from_server_pairs)"
        )
    served, dropped, dropped_demand = resolve_unreachable(
        topo, traffic, unreachable
    )
    if dropped:
        # Keep only flows whose switch pair survived the drop policy
        # (same-switch flows survive with their switch).
        kept = [
            (src, dst)
            for src, dst in traffic.server_pairs
            if (
                (src[0], dst[0]) in served.demands
                or (src[0] == dst[0] and topo.has_switch(src[0]))
            )
        ]
        if not kept:
            return unserved_result(
                topo, label, dropped, dropped_demand, exact=False
            )
        served = TrafficMatrix(
            name=f"{served.name}|packet",
            demands=served.demands,
            num_flows=len(kept),
            num_local_flows=sum(1 for s, d in kept if s[0] == d[0]),
            server_pairs=kept,
        )
    if served.demands:
        served.validate_against(topo.switches)

    if seed is None:
        from repro.pipeline.fingerprint import topology_fingerprint

        seed = stable_seed(
            {
                "sim-packet": topology_fingerprint(topo),
                "pairs": [
                    [[repr(s[0]), s[1]], [repr(d[0]), d[1]]]
                    for s, d in served.server_pairs
                ],
                "subflows": subflows,
                "routing": routing_mode,
            }
        )
    config = SimulationConfig(
        duration=duration,
        warmup=warmup,
        subflows=subflows,
        server_capacity=server_capacity,
        packet_size=packet_size,
        routing_mode=routing_mode,
        max_events=max_events,
    )
    report = PacketLevelSimulator(topo, config).run(served, seed=seed)
    throughput = report.min_rate if metric == "min" else report.mean_rate

    # Post-warmup average loads on the switch fabric; host access links
    # are the simulator's own model detail and stay out of the arc view.
    arc_capacities = {(u, v): float(cap) for u, v, cap in topo.arcs()}
    arc_flows = {}
    for (u, v), cap in arc_capacities.items():
        utilization = report.link_utilization.get((u, v), 0.0)
        if utilization > 0:
            arc_flows[(u, v)] = float(utilization) * cap

    from repro.estimate.common import check_error_band

    return ThroughputResult(
        throughput=float(throughput),
        arc_flows=arc_flows,
        arc_capacities=arc_capacities,
        total_demand=served.total_demand,
        solver=label,
        exact=False,
        is_estimate=True,
        dropped_pairs=tuple(dropped),
        dropped_demand=dropped_demand,
        error_band=check_error_band(error_band),
    )
