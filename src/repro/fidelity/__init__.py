"""Routing fidelity: flow-level simulation of real routing mechanisms.

The LP backends answer "what could a perfect routing scheme achieve";
this package answers "what do ECMP and MPTCP actually deliver on the
same fabric" — the gap between the two is the paper's §5 story. Three
layers:

- :mod:`repro.fidelity.routes` — content-cached route-set precomputation
  (equal-cost DAGs with hash weights, scalable k-shortest-path sets);
- :mod:`repro.fidelity.fluid` — the vectorized max-min water-filling
  core shared by the mechanism solvers;
- :mod:`repro.fidelity.solvers` / :mod:`repro.fidelity.adapter` — the
  ``sim_ecmp`` / ``sim_mptcp`` fluid mechanisms and the ``sim_packet``
  seed-simulator adapter, all registered as first-class solvers;
- :mod:`repro.fidelity.calibrate` — per-(family, mechanism) ratio bands
  against the exact LP.
"""

from repro.fidelity.adapter import PACKET_METRICS, sim_packet
from repro.fidelity.calibrate import DEFAULT_MECHANISMS, calibrate_mechanisms
from repro.fidelity.fluid import (
    FluidFlow,
    FluidOutcome,
    simulate_fluid,
    waterfill_rates,
)
from repro.fidelity.routes import (
    ROUTE_SET_KIND,
    RouteSet,
    compute_route_set,
    reset_route_stats,
    route_set_for,
    route_set_key,
    route_stats,
)
from repro.fidelity.solvers import sim_ecmp, sim_mptcp

__all__ = [
    "DEFAULT_MECHANISMS",
    "FluidFlow",
    "FluidOutcome",
    "PACKET_METRICS",
    "ROUTE_SET_KIND",
    "RouteSet",
    "calibrate_mechanisms",
    "compute_route_set",
    "reset_route_stats",
    "route_set_for",
    "route_set_key",
    "route_stats",
    "sim_ecmp",
    "sim_mptcp",
    "sim_packet",
    "simulate_fluid",
    "waterfill_rates",
]
