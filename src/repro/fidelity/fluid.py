"""Vectorized flow-level (fluid) simulation: water-filling + balancing.

The packet simulator answers "what rate does TCP actually reach on these
paths" one event at a time, which caps it near N≈50. This module answers
the fluid version of the same question — max-min fair rates over a
routing mechanism's own path choices — with nothing but sparse
matrix-vector products, which is what lets ``sim_ecmp``/``sim_mptcp``
run N = 1000+ grid cells in seconds.

Two cooperating iterations:

- **Water-filling** (:func:`waterfill_rates`): every subflow ramps up at
  a speed proportional to its split weight until some arc it crosses
  saturates; subflows crossing a saturated arc freeze, the rest keep
  filling. This is the classic progressive-filling construction of the
  (weighted) max-min fair allocation for a *fixed* split of each flow
  over its paths.
- **Split balancing** (:func:`balance_splits`): MPTCP's linked
  congestion control continually moves traffic off congested subflows.
  The fluid analog is a multiplicative-weights iteration on the split:
  each round scores every path by a softmax of the utilizations along
  it and shifts split mass toward the flow's less congested paths. The
  best split seen (by the min-max congestion it induces) wins — this is
  what closes most of the gap to the exact LP that a naive uncoupled
  equal split leaves open (§5 of the paper: MPTCP with ~k subflows runs
  within a few percent of optimal on random graphs).

Each flow may carry a virtual *access arc* of capacity
``weight * server_capacity`` shared by all its subflows — the server NIC
of the paper's model, which stops an uncontended flow short of infinite
rate. Pass ``server_capacity=None`` to drop the NIC cap and measure pure
fabric behavior (the fidelity experiment does, so ratios against the
exact LP are routing-gap only).

Guarantee the differential tests lean on: water-filled rates are a
feasible multicommodity flow whatever the splits, and max-min dominates
the equal-rate allocation, so ``min_f rate_f / weight_f`` is a feasible
concurrent throughput — never above the exact LP optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FlowError
from repro.topology.base import Topology

#: Relative slack used to call an arc saturated during filling.
_SATURATION_TOL = 1e-12

#: Multiplicative-weights step size (annealed over rounds).
_BALANCE_ETA = 1.2

#: Softmax sharpness of the per-arc congestion price, relative to the
#: current peak utilization.
_BALANCE_ALPHA = 24.0

#: Default balancing rounds for ``coupling="balanced"``. Each round is
#: two sparse matvecs; convergence is monotone in rounds (best-so-far),
#: and ~1e3 rounds lands within a few percent of the path-restricted LP.
BALANCE_ROUNDS = 1200


@dataclass(frozen=True)
class FluidFlow:
    """One simulated flow: a demand share routed over fixed paths.

    ``weight`` is the flow's demand in units (its fair NIC share and the
    normalization of its rate); ``paths`` the switch paths its subflows
    use — one subflow per path.
    """

    pair: tuple
    weight: float
    paths: tuple


@dataclass
class FluidOutcome:
    """Water-filling result, pre-assembled for ThroughputResult use."""

    throughput: float
    flow_rates: "list[float]"
    normalized_rates: "list[float]"
    arc_flows: dict
    arc_capacities: dict
    iterations: int


def waterfill_rates(
    incidence,
    capacities,
    speeds=None,
    max_iterations: "int | None" = None,
):
    """Progressive-filling max-min rates for one subflow system.

    ``incidence`` is a scipy CSR matrix (arcs x subflows, 0/1);
    ``capacities`` the per-arc capacity vector; ``speeds`` the per-subflow
    ramp speeds (default: all equal). Returns the subflow rate vector and
    the number of filling iterations. Pure numpy/scipy — no python loop
    over flows or arcs inside an iteration.
    """
    import numpy as np

    num_arcs, num_subflows = incidence.shape
    if num_subflows == 0:
        return np.zeros(0), 0
    if speeds is None:
        speeds = np.ones(num_subflows)
    else:
        speeds = np.asarray(speeds, dtype=np.float64)
        if (speeds <= 0).any():
            raise FlowError("subflow speeds must be positive")
    crossings = incidence.T.tocsr()
    rates = np.zeros(num_subflows)
    active = np.ones(num_subflows, dtype=bool)
    capacities = np.asarray(capacities, dtype=np.float64)
    residual = capacities.copy()
    if (residual <= 0).any():
        raise FlowError("fluid simulation requires positive arc capacities")
    limit = max_iterations if max_iterations is not None else num_arcs + 1
    iterations = 0
    while active.any():
        if iterations >= limit:
            raise FlowError(
                f"water-filling failed to converge in {limit} iterations"
            )
        iterations += 1
        counts = incidence @ np.where(active, speeds, 0.0)
        used = counts > 0
        if not used.any():
            # Active subflows crossing no arcs would fill without bound;
            # route construction guarantees every path has >= 1 arc.
            raise FlowError("active subflow traverses no arcs")
        increment = float((residual[used] / counts[used]).min())
        if increment > 0:
            rates[active] += speeds[active] * increment
            residual -= counts * increment
        saturated = used & (residual <= _SATURATION_TOL + 1e-9 * capacities)
        frozen = (crossings @ saturated.astype(np.float64)) > 0
        newly = active & frozen
        if not newly.any():
            # Numerical guard: zero increment with nothing freezing would
            # spin; saturate the tightest arc's subflows explicitly.
            tightest = int(np.argmin(
                np.where(used, residual / np.maximum(counts, 1e-300), np.inf)
            ))
            newly = active & (
                (crossings @ _one_hot(num_arcs, tightest)) > 0
            )
        active &= ~newly
    return rates, iterations


def _one_hot(size: int, position: int):
    import numpy as np

    vec = np.zeros(size)
    vec[position] = 1.0
    return vec


def balance_splits(
    incidence,
    capacities,
    subflow_flow,
    flow_weights,
    rounds: int = BALANCE_ROUNDS,
):
    """MPTCP-style split balancing: min-max congestion via MWU.

    ``incidence`` covers the *fabric* arcs only (no access arcs — their
    utilization is split-independent and would drown the signal). Each
    round prices every arc with a softmax of its utilization, scores each
    path by the summed prices along it, and multiplicatively shifts each
    flow's split toward its cheaper paths, annealing the step size.
    Returns the split vector that achieved the lowest peak utilization —
    a best-so-far rule, so more rounds never return a worse split.
    """
    import numpy as np

    num_subflows = incidence.shape[1]
    flow_weights = np.asarray(flow_weights, dtype=np.float64)
    subflow_flow = np.asarray(subflow_flow, dtype=np.int64)
    num_flows = len(flow_weights)
    per_flow = np.bincount(subflow_flow, minlength=num_flows)
    split = flow_weights[subflow_flow] / per_flow[subflow_flow]
    if rounds <= 0 or num_subflows == num_flows:
        return split  # single-path flows have nothing to balance
    capacities = np.asarray(capacities, dtype=np.float64)
    crossings = incidence.T.tocsr()
    best_util = np.inf
    best_split = split.copy()
    for round_no in range(rounds):
        util = (incidence @ split) / capacities
        peak = float(util.max())
        if peak < best_util:
            best_util = peak
            best_split = split.copy()
        if peak <= 0:
            break
        price = np.exp((_BALANCE_ALPHA / peak) * (util - peak))
        cost = crossings @ price
        lo = np.full(num_flows, np.inf)
        hi = np.zeros(num_flows)
        np.minimum.at(lo, subflow_flow, cost)
        np.maximum.at(hi, subflow_flow, cost)
        spread = np.maximum(hi - lo, 1e-12)[subflow_flow]
        score = (cost - lo[subflow_flow]) / spread
        eta = _BALANCE_ETA / (1.0 + round_no / 60.0)
        split = split * np.exp(-eta * score)
        norm = np.bincount(
            subflow_flow, weights=split, minlength=num_flows
        )
        split *= (flow_weights / np.maximum(norm, 1e-300))[subflow_flow]
    return best_split


def simulate_fluid(
    topo: Topology,
    flows: "list[FluidFlow]",
    server_capacity: "float | None" = 1.0,
    balance_rounds: int = 0,
) -> FluidOutcome:
    """Water-fill ``flows`` over ``topo``; return rates and arc loads.

    ``balance_rounds > 0`` runs the MPTCP-style split balancer first, so
    multi-path flows shift load off congested paths before the fill
    (``sim_mptcp``'s ``coupling="balanced"``). The reported
    ``throughput`` is the worst normalized flow rate (``rate / weight``)
    — the paper's per-flow throughput under the given mechanism.
    ``arc_flows`` are the *actual* simulated loads (feasible by
    construction), not the loads scaled to the concurrent rate.
    """
    import numpy as np
    from scipy.sparse import csr_matrix

    if not flows:
        raise FlowError("fluid simulation needs at least one flow")
    if server_capacity is not None and server_capacity <= 0:
        raise FlowError(
            f"server_capacity must be positive or None, got {server_capacity}"
        )
    arcs = topo.arcs()
    arc_index = {(u, v): i for i, (u, v, _) in enumerate(arcs)}
    capacities = [float(cap) for _, _, cap in arcs]

    rows: list = []
    cols: list = []
    subflow_flow: list = []
    subflow_id = 0
    for flow_id, flow in enumerate(flows):
        if flow.weight <= 0:
            raise FlowError(f"flow {flow.pair!r} has non-positive weight")
        if not flow.paths:
            raise FlowError(f"flow {flow.pair!r} has no paths")
        access_arc = None
        if server_capacity is not None:
            access_arc = len(capacities)
            capacities.append(flow.weight * server_capacity)
        for path in flow.paths:
            for a, b in zip(path[:-1], path[1:]):
                arc = arc_index.get((a, b))
                if arc is None:
                    raise FlowError(f"path uses unknown arc {(a, b)!r}")
                rows.append(arc)
                cols.append(subflow_id)
            if access_arc is not None:
                rows.append(access_arc)
                cols.append(subflow_id)
            subflow_flow.append(flow_id)
            subflow_id += 1

    incidence = csr_matrix(
        (np.ones(len(rows)), (rows, cols)),
        shape=(len(capacities), subflow_id),
    )
    # A path revisiting an arc would produce duplicate entries; sum_
    # duplicates keeps the load accounting right (simple paths never do).
    incidence.sum_duplicates()
    capacities = np.asarray(capacities, dtype=np.float64)
    weights = np.asarray([flow.weight for flow in flows])

    real = len(arcs)
    splits = balance_splits(
        incidence[:real],
        capacities[:real],
        subflow_flow,
        weights,
        rounds=balance_rounds,
    )
    rates, iterations = waterfill_rates(incidence, capacities, speeds=splits)

    flow_rates = np.zeros(len(flows))
    np.add.at(flow_rates, np.asarray(subflow_flow, dtype=np.int64), rates)
    normalized = flow_rates / weights

    loads = incidence[:real] @ rates
    arc_capacities = {(u, v): float(cap) for u, v, cap in arcs}
    arc_flows = {
        (u, v): float(loads[i])
        for i, (u, v, _) in enumerate(arcs)
        if loads[i] > 0
    }
    return FluidOutcome(
        throughput=float(normalized.min()),
        flow_rates=[float(r) for r in flow_rates],
        normalized_rates=[float(r) for r in normalized],
        arc_flows=arc_flows,
        arc_capacities=arc_capacities,
        iterations=iterations,
    )
