"""Routing-mechanism solvers: ``sim_ecmp`` and ``sim_mptcp``.

Both follow the registry's solver contract —
``fn(topo, traffic, **options) -> ThroughputResult`` with the standard
``unreachable`` policy — so the pipeline sweeps *routing mechanism* as
just another solver axis next to the LP backends. They share the
precomputed :mod:`repro.fidelity.routes` sets (content-cached, so a grid
never enumerates a topology's paths twice) and the
:mod:`repro.fidelity.fluid` water-filling core.

``sim_ecmp`` models hash-based ECMP: every unit server flow is pinned to
*one* equal-cost path, sampled from the per-hop hash distribution the
route set records. Collisions — several flows hashed onto one link —
are exactly what the paper's §5 shows ECMP suffering from, and exactly
what the max-min fill then prices in. The sampling is content-seeded
(topology, traffic, options), so results are reproducible across
processes and cache-coherent across sweep workers.

``sim_mptcp`` models MPTCP with k uncoupled subflows over the k-shortest
path sets: one subflow per path, each water-filled independently, flow
rate = sum of subflows. With enough subflows this approaches the fabric's
fluid optimum — the §5 claim the fidelity experiment reproduces.

Results are honest mechanism measurements: ``exact=False``,
``is_estimate=False`` (they are lower bounds by construction, not
calibrated estimates), with an optional ``error_band`` attached when a
:mod:`repro.fidelity.calibrate` table supplies one.
"""

from __future__ import annotations

from repro.exceptions import FlowError
from repro.fidelity.fluid import FluidFlow, simulate_fluid
from repro.fidelity.routes import route_set_for
from repro.flow.reachability import resolve_unreachable, unserved_result
from repro.flow.result import ThroughputResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.util.hashing import stable_seed
from repro.util.validation import check_positive_int


def _prepare(topo, traffic, unreachable, label):
    """Shared drop-policy preamble (mirrors the estimator scaffolding)."""
    served, dropped, dropped_demand = resolve_unreachable(
        topo, traffic, unreachable
    )
    if dropped and not served.demands:
        return served, dropped, dropped_demand, unserved_result(
            topo, label, dropped, dropped_demand, exact=False
        )
    if not served.demands:
        raise FlowError("traffic matrix has no network demands")
    served.validate_against(topo.switches)
    return served, dropped, dropped_demand, None


def _unit_flows(units: float) -> "tuple[int, float]":
    """Split a pair's demand units into whole flows of equal weight."""
    count = max(1, int(round(units)))
    return count, units / count


def _finish(
    outcome,
    served: TrafficMatrix,
    label: str,
    dropped: tuple,
    dropped_demand: float,
    error_band,
    truncated: int,
) -> ThroughputResult:
    from repro.estimate.common import check_error_band

    return ThroughputResult(
        throughput=outcome.throughput,
        arc_flows=outcome.arc_flows,
        arc_capacities=outcome.arc_capacities,
        total_demand=served.total_demand,
        solver=label,
        exact=False,
        dropped_pairs=tuple(dropped),
        dropped_demand=dropped_demand,
        truncated_pairs=truncated,
        error_band=check_error_band(error_band),
    )


def sim_ecmp(
    topo: Topology,
    traffic: TrafficMatrix,
    paths: int = 8,
    unreachable: str = "error",
    server_capacity: "float | None" = 1.0,
    seed: "int | None" = None,
    error_band=None,
) -> ThroughputResult:
    """Fluid simulation of hash-split ECMP over ``paths`` equal-cost paths.

    Every unit flow is hashed onto one path (per-hop hash probabilities
    from the route set); the max-min fill then measures what the worst
    collision victim actually gets. ``seed`` perturbs the hash draw; by
    default it derives from content, so identical inputs reproduce
    identical results in any process.
    """
    import numpy as np

    check_positive_int(paths, "paths")
    label = f"sim-ecmp-{paths}"
    served, dropped, dropped_demand, short = _prepare(
        topo, traffic, unreachable, label
    )
    if short is not None:
        return short
    routes = route_set_for(topo, served.demands, mode="ecmp", k=paths)
    from repro.pipeline.fingerprint import traffic_fingerprint

    rng = np.random.default_rng(
        stable_seed(
            {
                "sim-ecmp": routes.key,
                "traffic": traffic_fingerprint(served),
                "seed": seed,
            }
        )
    )
    flows: "list[FluidFlow]" = []
    for pair, group, weights in zip(routes.pairs, routes.paths, routes.weights):
        units = served.demands[pair]
        count, weight = _unit_flows(units)
        choices = rng.choice(len(group), size=count, p=np.asarray(weights))
        for pick in choices:
            flows.append(FluidFlow(pair=pair, weight=weight, paths=(group[int(pick)],)))
    outcome = simulate_fluid(topo, flows, server_capacity=server_capacity)
    return _finish(
        outcome, served, label, dropped, dropped_demand, error_band,
        routes.truncated,
    )


def sim_mptcp(
    topo: Topology,
    traffic: TrafficMatrix,
    subflows: int = 8,
    method: "str | None" = None,
    coupling: str = "balanced",
    unreachable: str = "error",
    server_capacity: "float | None" = 1.0,
    error_band=None,
) -> ThroughputResult:
    """Fluid simulation of MPTCP with ``subflows`` subflows per flow.

    Each flow spreads one subflow over every path in its k-shortest set
    (``method="tree"`` scales to N=1000+; ``method="yen"`` is the exact
    small-N enumeration). ``coupling="balanced"`` (default) models
    MPTCP's linked congestion control — splits are rebalanced off
    congested paths before the fill, which is what brings k-subflow
    MPTCP within a few percent of the LP (§5); ``"uncoupled"`` keeps
    the naive equal split of independent subflows. Fully deterministic —
    no hashing involved.
    """
    from repro.fidelity.fluid import BALANCE_ROUNDS

    check_positive_int(subflows, "subflows")
    if coupling not in ("balanced", "uncoupled"):
        raise FlowError(
            f"unknown coupling {coupling!r}; known: balanced, uncoupled"
        )
    label = f"sim-mptcp-{subflows}"
    served, dropped, dropped_demand, short = _prepare(
        topo, traffic, unreachable, label
    )
    if short is not None:
        return short
    routes = route_set_for(
        topo, served.demands, mode="ksp", k=subflows, method=method
    )
    flows: "list[FluidFlow]" = []
    for pair, group in zip(routes.pairs, routes.paths):
        units = served.demands[pair]
        count, weight = _unit_flows(units)
        for _ in range(count):
            flows.append(FluidFlow(pair=pair, weight=weight, paths=group))
    outcome = simulate_fluid(
        topo,
        flows,
        server_capacity=server_capacity,
        balance_rounds=BALANCE_ROUNDS if coupling == "balanced" else 0,
    )
    return _finish(
        outcome, served, label, dropped, dropped_demand, error_band,
        routes.truncated,
    )
