"""Declarative multi-stage expansion plans.

The paper's operational pillar — random graphs grow incrementally at
arbitrary granularity while Clos designs upgrade in coarse, expensive
steps — needs a vocabulary for *what the operator deploys when*. A
:class:`GrowthSchedule` is that vocabulary: an ordered sequence of
:class:`GrowthStage` entries, each naming the equipment available at
that point in time (target switch count, and optionally per-stage
overrides for network degree and servers per switch to model
heterogeneous equipment arrivals).

The first stage is the initial build; every later stage is an upgrade
step executed by a growth *strategy* (see
:mod:`repro.growth.strategies`). Schedules are plain frozen dataclasses:
hashable, picklable for worker processes, and JSON round-trippable so
the CLI and config files can describe growth campaigns declaratively,
exactly like :class:`~repro.pipeline.scenario.ScenarioGrid` does for
sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import ExperimentError
from repro.util.validation import (
    check_non_negative_int,
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class GrowthStage:
    """One point of the deployment timeline.

    ``target_switches`` is the *equipment budget*: how many switches the
    operator owns at this stage. Strategies that cannot use an arbitrary
    budget (the fat-tree ladder) deploy the largest legal design inside
    it and leave the remainder idle — that gap is the granularity cost
    the growth experiment measures.

    ``network_degree`` / ``servers_per_switch`` override the schedule
    defaults for equipment arriving *at this stage* (heterogeneous
    arrivals: a later tranche of switches may carry more ports).
    """

    target_switches: int
    network_degree: "int | None" = None
    servers_per_switch: "int | None" = None
    label: "str | None" = None

    def __post_init__(self) -> None:
        check_positive_int(self.target_switches, "target_switches")
        if self.network_degree is not None:
            check_positive_int(self.network_degree, "network_degree")
        if self.servers_per_switch is not None:
            check_non_negative_int(self.servers_per_switch, "servers_per_switch")

    def degree(self, schedule: "GrowthSchedule") -> int:
        """Network degree of switches arriving at this stage."""
        if self.network_degree is not None:
            return self.network_degree
        return schedule.network_degree

    def servers(self, schedule: "GrowthSchedule") -> int:
        """Servers attached to each switch arriving at this stage."""
        if self.servers_per_switch is not None:
            return self.servers_per_switch
        return schedule.servers_per_switch

    def name(self, index: int) -> str:
        """Display label (explicit label, or ``stage<i>@N=<target>``)."""
        if self.label:
            return self.label
        return f"stage{index}@N={self.target_switches}"

    def to_dict(self) -> dict:
        payload: dict = {"target_switches": self.target_switches}
        if self.network_degree is not None:
            payload["network_degree"] = self.network_degree
        if self.servers_per_switch is not None:
            payload["servers_per_switch"] = self.servers_per_switch
        if self.label is not None:
            payload["label"] = self.label
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "GrowthStage":
        return cls(
            target_switches=int(payload["target_switches"]),
            network_degree=(
                int(payload["network_degree"])
                if payload.get("network_degree") is not None
                else None
            ),
            servers_per_switch=(
                int(payload["servers_per_switch"])
                if payload.get("servers_per_switch") is not None
                else None
            ),
            label=payload.get("label"),
        )


@dataclass(frozen=True)
class GrowthSchedule:
    """A whole deployment timeline: initial build plus upgrade stages.

    ``network_degree`` / ``servers_per_switch`` / ``capacity`` are the
    default equipment parameters; individual stages may override the
    first two for their own arrivals. Stage targets must be strictly
    increasing — a schedule describes growth, never shrinkage.
    """

    name: str = "growth"
    network_degree: int = 8
    servers_per_switch: int = 0
    capacity: float = 1.0
    stages: "tuple[GrowthStage, ...]" = field(default=())

    def __post_init__(self) -> None:
        check_positive_int(self.network_degree, "network_degree")
        check_non_negative_int(self.servers_per_switch, "servers_per_switch")
        check_positive(self.capacity, "capacity")
        stages = tuple(
            stage if isinstance(stage, GrowthStage) else GrowthStage(int(stage))
            for stage in self.stages
        )
        object.__setattr__(self, "stages", stages)
        if not stages:
            raise ExperimentError("growth schedule needs at least one stage")
        targets = [stage.target_switches for stage in stages]
        for previous, current in zip(targets, targets[1:]):
            if current <= previous:
                raise ExperimentError(
                    "stage targets must be strictly increasing, got "
                    f"{previous} -> {current} in {targets}"
                )
        if targets[0] <= self.initial_stage.degree(self):
            raise ExperimentError(
                f"initial stage target {targets[0]} must exceed its network "
                f"degree {self.initial_stage.degree(self)}"
            )

    @property
    def initial_stage(self) -> GrowthStage:
        """The stage describing the initial build."""
        return self.stages[0]

    @property
    def growth_stages(self) -> "tuple[GrowthStage, ...]":
        """Every stage after the initial build, in order."""
        return self.stages[1:]

    @property
    def final_switches(self) -> int:
        """Equipment budget of the last stage."""
        return self.stages[-1].target_switches

    def __len__(self) -> int:
        return len(self.stages)

    @classmethod
    def from_targets(
        cls, targets: Iterable[int], **kwargs
    ) -> "GrowthSchedule":
        """Build a schedule from a plain sequence of switch budgets."""
        return cls(
            stages=tuple(GrowthStage(int(target)) for target in targets),
            **kwargs,
        )

    @classmethod
    def geometric(
        cls,
        start_switches: int,
        target_switches: int,
        num_stages: int,
        **kwargs,
    ) -> "GrowthSchedule":
        """Geometrically spaced budgets from ``start`` to ``target``.

        ``num_stages`` counts the *growth* steps after the initial build
        (the Jellyfish deployment story: start small, multiply capacity
        each budget cycle); duplicate rounded targets collapse, so tiny
        ranges may produce fewer steps. ``num_stages=0`` is the trivial
        one-stage schedule.
        """
        start_switches = check_positive_int(start_switches, "start_switches")
        target_switches = check_positive_int(target_switches, "target_switches")
        check_non_negative_int(num_stages, "num_stages")
        if target_switches < start_switches:
            raise ExperimentError(
                f"target_switches {target_switches} must be >= start_switches "
                f"{start_switches}"
            )
        targets = [start_switches]
        if num_stages > 0 and target_switches > start_switches:
            ratio = target_switches / start_switches
            for step in range(1, num_stages + 1):
                value = round(start_switches * ratio ** (step / num_stages))
                if value > targets[-1]:
                    targets.append(value)
            targets[-1] = target_switches
        return cls.from_targets(targets, **kwargs)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "network_degree": self.network_degree,
            "servers_per_switch": self.servers_per_switch,
            "capacity": self.capacity,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "GrowthSchedule":
        return cls(
            name=payload.get("name", "growth"),
            network_degree=int(payload.get("network_degree", 8)),
            servers_per_switch=int(payload.get("servers_per_switch", 0)),
            capacity=float(payload.get("capacity", 1.0)),
            stages=tuple(
                GrowthStage.from_dict(entry)
                for entry in payload.get("stages", ())
            ),
        )
