"""Multi-stage incremental expansion planning and trajectory evaluation.

The paper's operational pillar: random-graph fabrics grow incrementally
at arbitrary granularity, while structured (Clos) designs upgrade in
coarse, expensive steps. This package turns that claim into a measured
subsystem:

- :mod:`repro.growth.plan` — declarative :class:`GrowthSchedule` /
  :class:`GrowthStage` deployment timelines (JSON round-trippable,
  optionally heterogeneous per-stage equipment arrivals),
- :mod:`repro.growth.strategies` — registry-keyed execution strategies
  (``swap``, ``swap_anneal``, ``rebuild``, ``fattree_upgrade``),
- :mod:`repro.growth.trajectory` — stage-by-stage throughput
  trajectories (exact LP small, calibrated estimators large) with
  rewiring and cabling churn accounting, cached and fingerprinted
  through the evaluation pipeline, parallel across strategies and
  replicate seeds,
- :mod:`repro.growth.factory` — the ``"grown"`` topology-registry kind.

See ``docs/growth.md`` for the model and the granularity comparison.
"""

from repro.growth.factory import grown_topology
from repro.growth.plan import GrowthSchedule, GrowthStage
from repro.growth.strategies import (
    FatTreeUpgrade,
    GrowthStrategy,
    RebuildGrowth,
    SwapAnnealGrowth,
    SwapGrowth,
    available_strategies,
    fat_tree_ladder_arity,
    grow_stages,
    make_strategy,
    register_strategy,
)
from repro.growth.trajectory import (
    DEFAULT_ESTIMATOR,
    DEFAULT_EXACT_LIMIT,
    GrowthSweepResult,
    GrowthTrajectory,
    StageRecord,
    run_growth,
    run_growth_sweep,
    solver_for_size,
)

__all__ = [
    "DEFAULT_ESTIMATOR",
    "DEFAULT_EXACT_LIMIT",
    "FatTreeUpgrade",
    "GrowthSchedule",
    "GrowthStage",
    "GrowthStrategy",
    "GrowthSweepResult",
    "GrowthTrajectory",
    "RebuildGrowth",
    "StageRecord",
    "SwapAnnealGrowth",
    "SwapGrowth",
    "available_strategies",
    "fat_tree_ladder_arity",
    "grow_stages",
    "grown_topology",
    "make_strategy",
    "register_strategy",
    "run_growth",
    "run_growth_sweep",
    "solver_for_size",
]
