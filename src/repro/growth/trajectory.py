"""Execute growth schedules: throughput trajectories with churn accounting.

:func:`run_growth` walks one (schedule, strategy, seed) chain stage by
stage, and for every stage records

- the solved **throughput** (exact LP while the fabric is small, a
  calibrated :mod:`repro.estimate` backend beyond ``exact_limit`` —
  the ``"auto"`` solver policy),
- the **rewiring churn** against the previous stage (links added and
  removed, via link-set diff — strategy-agnostic, so a swap stage and a
  forklift fat-tree upgrade are measured with the same ruler),
- the **cabling churn** (cable counts and Manhattan lengths on a
  rack-row layout that appends new racks as equipment arrives, via
  :func:`repro.core.cabling.cable_churn`), and
- the cumulative totals an operator would budget against.

Solves route through the pipeline's
:func:`~repro.pipeline.engine.cached_solve`, so trajectories are
content-fingerprinted and cached exactly like sweep cells: re-running a
schedule against a warm cache re-solves nothing.
:func:`run_growth_sweep` fans (strategy, replicate) pairs across worker
processes. The *strategy* axis is excluded from seed derivation —
every strategy sees the same initial build and the same per-stage
arrival randomness, so trajectories are paired the way the pipeline
pairs its solver columns.
"""

from __future__ import annotations

import csv
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from statistics import fmean, pstdev

import numpy as np

from repro.core.cabling import cable_churn
from repro.exceptions import ExperimentError
from repro.flow.solvers import SolverConfig, get_solver
from repro.growth.plan import GrowthSchedule
from repro.growth.strategies import grow_stages, make_strategy
from repro.pipeline.cache import ResultCache, default_cache
from repro.pipeline.engine import cached_solve
from repro.topology.base import Topology
from repro.traffic.registry import make_traffic
from repro.util.hashing import stable_seed
from repro.util.tables import format_table

#: Largest fabric the ``"auto"`` solver policy still solves exactly.
DEFAULT_EXACT_LIMIT = 80

#: Estimator backend ``"auto"`` switches to beyond the exact limit.
DEFAULT_ESTIMATOR = "estimate_bound"


def solver_for_size(
    num_switches: int,
    solver: str = "auto",
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    estimator: str = DEFAULT_ESTIMATOR,
) -> str:
    """Resolve the ``"auto"`` solver policy for one fabric size.

    ``solver="auto"`` picks the exact LP up to ``exact_limit`` switches
    and ``estimator`` beyond it; any other name is returned unchanged
    (after registry validation).
    """
    if solver == "auto":
        return "edge_lp" if num_switches <= exact_limit else estimator
    return get_solver(solver).name


@dataclass(frozen=True)
class StageRecord:
    """Everything measured at one stage of one trajectory."""

    index: int
    label: str
    target_switches: int
    num_switches: int
    num_servers: int
    num_links: int
    idle_switches: int
    solver: str
    throughput: float
    is_estimate: bool
    error_lo: "float | None"
    error_hi: "float | None"
    links_added: int
    links_removed: int
    cables_added_length: float
    cables_removed_length: float
    cumulative_links_touched: int
    cumulative_cable_length: float
    cache_hit: bool
    elapsed_s: float

    #: Column order shared by CSV artifacts and the summary table.
    FIELDS = (
        "stage",
        "label",
        "target_switches",
        "num_switches",
        "num_servers",
        "num_links",
        "idle_switches",
        "solver",
        "throughput",
        "is_estimate",
        "error_lo",
        "error_hi",
        "links_added",
        "links_removed",
        "cables_added_length",
        "cables_removed_length",
        "cumulative_links_touched",
        "cumulative_cable_length",
        "cache_hit",
        "elapsed_s",
    )

    @property
    def links_touched(self) -> int:
        """Links handled at this stage (added + removed)."""
        return self.links_added + self.links_removed

    def row(self) -> dict:
        """Flat record for CSV/JSON artifacts."""
        return {
            "stage": self.index,
            "label": self.label,
            "target_switches": self.target_switches,
            "num_switches": self.num_switches,
            "num_servers": self.num_servers,
            "num_links": self.num_links,
            "idle_switches": self.idle_switches,
            "solver": self.solver,
            "throughput": self.throughput,
            "is_estimate": self.is_estimate,
            "error_lo": self.error_lo,
            "error_hi": self.error_hi,
            "links_added": self.links_added,
            "links_removed": self.links_removed,
            "cables_added_length": self.cables_added_length,
            "cables_removed_length": self.cables_removed_length,
            "cumulative_links_touched": self.cumulative_links_touched,
            "cumulative_cable_length": self.cumulative_cable_length,
            "cache_hit": self.cache_hit,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class GrowthTrajectory:
    """All stage records of one (schedule, strategy, replicate) chain."""

    schedule: GrowthSchedule
    strategy: str
    replicate: int
    seed: int
    records: "list[StageRecord]" = field(default_factory=list)

    def rows(self) -> "list[dict]":
        out = []
        for record in self.records:
            row = {
                "strategy": self.strategy,
                "replicate": self.replicate,
                "seed": self.seed,
            }
            row.update(record.row())
            out.append(row)
        return out

    def throughputs(self) -> "list[float]":
        return [record.throughput for record in self.records]

    def final(self) -> StageRecord:
        return self.records[-1]

    def to_dict(self) -> dict:
        return {
            "schedule": self.schedule.to_dict(),
            "strategy": self.strategy,
            "replicate": self.replicate,
            "seed": self.seed,
            "stages": [record.row() for record in self.records],
        }


def _extend_layout(positions: dict, topo: Topology) -> None:
    """Append this stage's new switches to the rack row, in place.

    Models the operational reality the cable accounting needs: racks
    already on the floor never move, newly arriving racks take the next
    slots, so old cables keep their lengths across stages.
    """
    slot = len(positions)
    for node in topo.switches:
        if node not in positions:
            positions[node] = slot
            slot += 1


def run_growth(
    schedule: GrowthSchedule,
    strategy: str = "swap",
    *,
    strategy_options: "dict | None" = None,
    traffic: str = "permutation",
    traffic_params: "dict | None" = None,
    solver: str = "auto",
    exact_limit: int = DEFAULT_EXACT_LIMIT,
    estimator: str = DEFAULT_ESTIMATOR,
    estimator_band: "tuple[float, float] | None" = None,
    solver_options: "dict | None" = None,
    replicate: int = 0,
    base_seed: int = 0,
    seed: "int | None" = None,
    cache: "ResultCache | None | bool" = None,
) -> GrowthTrajectory:
    """Execute one growth chain and measure every stage.

    ``seed`` defaults to a content-derived value hashing the schedule,
    workload, and replicate index (strategy deliberately excluded — see
    the module docstring). ``estimator_band`` attaches a calibrated
    error band (:mod:`repro.estimate.calibrate`) to every estimator
    solve. ``cache`` follows the
    :func:`~repro.pipeline.engine.evaluate_throughput` convention:
    ``None``/``True`` use the ``REPRO_CACHE_DIR`` process cache,
    ``False`` disables, a :class:`ResultCache` is used directly.
    """
    strategy_obj = make_strategy(strategy, **(strategy_options or {}))
    if cache is None or cache is True:
        cache = default_cache()
    elif cache is False:
        cache = None
    if seed is None:
        seed = stable_seed(
            {
                "growth": schedule.to_dict(),
                "traffic": [traffic, sorted((traffic_params or {}).items())],
                "base": base_seed,
                "replicate": replicate,
            }
        )
    chain_ss, traffic_root = np.random.SeedSequence(seed).spawn(2)
    traffic_seeds = traffic_root.spawn(len(schedule))

    trajectory = GrowthTrajectory(
        schedule=schedule,
        strategy=strategy_obj.label(),
        replicate=replicate,
        seed=seed,
    )
    positions: dict = {}
    previous: "Topology | None" = None
    cumulative_links = 0
    cumulative_cable = 0.0
    for index, stage, topo in grow_stages(schedule, strategy_obj, seed=chain_ss):
        start = time.perf_counter()
        _extend_layout(positions, topo)
        # The initial build diffs against an empty floor: every cable is
        # installed, none removed. Links and cables are the same objects
        # under the collapsed-trunk model, so the churn report carries
        # both the counts and the lengths.
        churn = cable_churn(
            previous if previous is not None else Topology(), topo, positions
        )
        cumulative_links += churn.cables_touched
        cumulative_cable += churn.length_touched

        tm = make_traffic(
            traffic, topo, seed=traffic_seeds[index], **(traffic_params or {})
        )
        solver_name = solver_for_size(
            topo.num_switches,
            solver=solver,
            exact_limit=exact_limit,
            estimator=estimator,
        )
        options = dict(solver_options or {})
        if estimator_band is not None and get_solver(solver_name).estimate:
            options.setdefault("error_band", tuple(estimator_band))
        config = SolverConfig.make(solver_name, **options)
        result, cache_hit = cached_solve(topo, tm, config, cache)

        trajectory.records.append(
            StageRecord(
                index=index,
                label=stage.name(index),
                target_switches=stage.target_switches,
                num_switches=topo.num_switches,
                num_servers=topo.num_servers,
                num_links=topo.num_links,
                idle_switches=stage.target_switches - topo.num_switches,
                solver=config.label(),
                throughput=result.throughput,
                is_estimate=result.is_estimate,
                error_lo=(
                    result.error_band[0]
                    if result.error_band is not None
                    else None
                ),
                error_hi=(
                    result.error_band[1]
                    if result.error_band is not None
                    else None
                ),
                links_added=churn.cables_added,
                links_removed=churn.cables_removed,
                cables_added_length=churn.added_length,
                cables_removed_length=churn.removed_length,
                cumulative_links_touched=cumulative_links,
                cumulative_cable_length=cumulative_cable,
                cache_hit=cache_hit,
                elapsed_s=time.perf_counter() - start,
            )
        )
        previous = topo
    return trajectory


def _run_growth_task(args: tuple) -> GrowthTrajectory:
    """Module-level worker entry (must be picklable for process pools).

    An explicit ``cache`` passed through the sweep's keyword arguments
    wins; otherwise the worker opens the shared ``cache_dir`` itself
    (or runs uncached), mirroring :func:`repro.pipeline.engine.run_grid`.
    """
    schedule, strategy, replicate, cache_dir, kwargs = args
    if "cache" not in kwargs:
        kwargs["cache"] = ResultCache(cache_dir) if cache_dir else False
    return run_growth(schedule, strategy, replicate=replicate, **kwargs)


@dataclass
class GrowthSweepResult:
    """All trajectories of one growth campaign, plus run provenance."""

    schedule: GrowthSchedule
    trajectories: "list[GrowthTrajectory]" = field(default_factory=list)
    workers: int = 1
    cache_dir: "str | None" = None
    elapsed_s: float = 0.0

    @property
    def cache_hits(self) -> int:
        return sum(
            1
            for trajectory in self.trajectories
            for record in trajectory.records
            if record.cache_hit
        )

    @property
    def num_cells(self) -> int:
        return sum(len(t.records) for t in self.trajectories)

    def rows(self) -> "list[dict]":
        return [row for t in self.trajectories for row in t.rows()]

    def mean_series(self) -> "list[dict]":
        """Replicate-averaged stage metrics per strategy."""
        groups: dict = {}
        for trajectory in self.trajectories:
            for record in trajectory.records:
                key = (trajectory.strategy, record.index)
                groups.setdefault(key, []).append(record)
        out = []
        for (strategy, stage), records in sorted(groups.items()):
            throughputs = [r.throughput for r in records]
            out.append(
                {
                    "strategy": strategy,
                    "stage": stage,
                    "target_switches": records[0].target_switches,
                    "num_switches_mean": fmean(
                        r.num_switches for r in records
                    ),
                    "num_servers_mean": fmean(r.num_servers for r in records),
                    "idle_switches_mean": fmean(
                        r.idle_switches for r in records
                    ),
                    "replicates": len(records),
                    "throughput_mean": fmean(throughputs),
                    "throughput_std": pstdev(throughputs),
                    "links_touched_mean": fmean(
                        r.links_touched for r in records
                    ),
                    "cable_length_mean": fmean(
                        r.cables_added_length + r.cables_removed_length
                        for r in records
                    ),
                    "cumulative_links_touched_mean": fmean(
                        r.cumulative_links_touched for r in records
                    ),
                }
            )
        return out

    def to_table(self, float_format: str = "{:.4f}") -> str:
        """Replicate-averaged summary as an aligned text table."""
        headers = [
            "strategy", "stage", "budget", "switches", "servers", "idle",
            "reps", "throughput", "std", "links±", "cable",
        ]
        rows = [
            [
                entry["strategy"],
                entry["stage"],
                entry["target_switches"],
                round(entry["num_switches_mean"]),
                round(entry["num_servers_mean"]),
                round(entry["idle_switches_mean"]),
                entry["replicates"],
                entry["throughput_mean"],
                entry["throughput_std"],
                round(entry["links_touched_mean"]),
                round(entry["cable_length_mean"]),
            ]
            for entry in self.mean_series()
        ]
        header = (
            f"== growth {self.schedule.name!r}: "
            f"{len(self.trajectories)} trajectories, {self.num_cells} stage "
            f"cells, {self.cache_hits} cache hits, {self.workers} worker(s), "
            f"{self.elapsed_s:.1f}s ==\n"
        )
        return header + format_table(headers, rows, float_format=float_format)

    def to_dict(self) -> dict:
        return {
            "schedule": self.schedule.to_dict(),
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "elapsed_s": self.elapsed_s,
            "cache_hits": self.cache_hits,
            "trajectories": [t.to_dict() for t in self.trajectories],
            "summary": self.mean_series(),
        }

    def write_json(self, path: str) -> None:
        """Write the full campaign (trajectories + summary) as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    def write_csv(self, path: str) -> None:
        """Write one CSV row per (strategy, replicate, stage)."""
        fieldnames = ["strategy", "replicate", "seed", *StageRecord.FIELDS]
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for row in self.rows():
                writer.writerow(row)


def run_growth_sweep(
    schedule: GrowthSchedule,
    strategies: "tuple[str, ...]" = ("swap",),
    *,
    seeds: int = 1,
    base_seed: int = 0,
    workers: int = 1,
    cache_dir: "str | None" = None,
    strategy_options: "dict[str, dict] | None" = None,
    estimator_bands: "dict[str, tuple] | None" = None,
    progress=None,
    **run_kwargs,
) -> GrowthSweepResult:
    """Run ``seeds`` replicates of every strategy over one schedule.

    (strategy, replicate) chains are independent, so ``workers > 1``
    fans them over a process pool; the shared on-disk cache keeps
    workers coordinated through content-addressed files, exactly like
    :func:`~repro.pipeline.engine.run_grid`. ``strategy_options`` maps a
    strategy name to its constructor options, ``estimator_bands`` maps a
    strategy name to the calibrated band its estimator solves carry.
    ``progress`` is an optional ``callable(done, total, trajectory)``.
    """
    if seeds < 1:
        raise ExperimentError(f"seeds must be >= 1, got {seeds}")
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    options = strategy_options or {}
    bands = estimator_bands or {}
    tasks = []
    for strategy in strategies:
        for replicate in range(seeds):
            kwargs = dict(run_kwargs)
            kwargs["base_seed"] = base_seed
            kwargs["strategy_options"] = options.get(strategy)
            if strategy in bands:
                kwargs["estimator_band"] = bands[strategy]
            tasks.append((schedule, strategy, replicate, cache_dir, kwargs))

    start = time.perf_counter()
    trajectories: "list[GrowthTrajectory]" = []
    if workers == 1:
        for index, task in enumerate(tasks):
            trajectory = _run_growth_task(task)
            trajectories.append(trajectory)
            if progress is not None:
                progress(index + 1, len(tasks), trajectory)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for index, trajectory in enumerate(
                pool.map(_run_growth_task, tasks)
            ):
                trajectories.append(trajectory)
                if progress is not None:
                    progress(index + 1, len(tasks), trajectory)
    return GrowthSweepResult(
        schedule=schedule,
        trajectories=trajectories,
        workers=workers,
        cache_dir=cache_dir,
        elapsed_s=time.perf_counter() - start,
    )
