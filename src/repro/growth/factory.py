"""The ``"grown"`` topology-registry kind: a fabric built by growing.

Exposes the growth chain behind the standard topology-factory signature
so grown fabrics are first-class citizens of the evaluation pipeline:
sweepable by :class:`~repro.pipeline.scenario.ScenarioGrid`
(``TopologySpec.make("grown", ...)``), fingerprint-stable (the whole
chain derives from one seed), and constructible from the CLI next to
``"rrg"`` and ``"optimized"``.
"""

from __future__ import annotations

from repro.exceptions import TopologyError
from repro.growth.plan import GrowthSchedule
from repro.growth.strategies import grow_stages
from repro.topology.base import Topology
from repro.util.validation import check_non_negative_int, check_positive_int


def grown_topology(
    num_switches: int,
    network_degree: int,
    servers_per_switch: int = 0,
    capacity: float = 1.0,
    start_switches: "int | None" = None,
    num_stages: int = 3,
    strategy: str = "swap",
    seed=None,
    name: "str | None" = None,
    **strategy_options,
) -> Topology:
    """An RRG-equipment fabric grown to ``num_switches`` — the ``"grown"`` kind.

    Builds a geometric :class:`~repro.growth.plan.GrowthSchedule` from
    ``start_switches`` (default: an eighth of the target, floored at
    ``network_degree + 1`` so the initial RRG is legal) up to
    ``num_switches`` in ``num_stages`` steps, then runs ``strategy``
    along it and returns the final fabric. Both the initial sample and
    every growth step derive from ``seed``, so the construction is
    reproducible — and cache/fingerprint stable — from one integer.
    """
    num_switches = check_positive_int(num_switches, "num_switches")
    check_positive_int(network_degree, "network_degree")
    check_non_negative_int(servers_per_switch, "servers_per_switch")
    if start_switches is None:
        start_switches = max(network_degree + 1, num_switches // 8)
    start_switches = check_positive_int(start_switches, "start_switches")
    if start_switches > num_switches:
        raise TopologyError(
            f"start_switches {start_switches} exceeds num_switches "
            f"{num_switches}"
        )
    if start_switches <= network_degree:
        raise TopologyError(
            f"start_switches {start_switches} must exceed network_degree "
            f"{network_degree} (the initial fabric is an RRG)"
        )
    schedule = GrowthSchedule.geometric(
        start_switches,
        num_switches,
        num_stages,
        name="grown",
        network_degree=network_degree,
        servers_per_switch=servers_per_switch,
        capacity=capacity,
    )
    topo: "Topology | None" = None
    for _, _, topo in grow_stages(
        schedule, strategy, seed=seed, **strategy_options
    ):
        pass
    assert topo is not None  # schedules always have >= 1 stage
    topo.name = name or (
        f"grown(N={num_switches},r={network_degree},strategy={strategy},"
        f"stages={len(schedule) - 1})"
    )
    return topo
