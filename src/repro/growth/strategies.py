"""Pluggable growth strategies: how a fabric moves between stages.

A strategy answers two questions — what to deploy at the initial stage,
and how to reach the next stage's equipment budget from the current
fabric. Strategies are registered under string keys (mirroring the
solver and topology registries) so schedules stay declarative and the
CLI/pipeline can enumerate them:

- ``swap`` — Jellyfish incremental growth: every arriving switch splits
  ``r/2`` random existing links (:mod:`repro.topology.expansion`); the
  rest of the fabric is untouched.
- ``swap_anneal`` — ``swap`` followed by a budgeted
  :mod:`repro.search` annealing pass per stage, modelling an operator
  who spends a little optimization effort on each upgrade window.
- ``rebuild`` — a fresh matched RRG at every stage: the throughput
  gold standard, and the churn *worst case* (nearly every cable moves).
- ``fattree_upgrade`` — the structured comparison: deploy the largest
  complete fat-tree inside the stage budget. Upgrades happen only when
  the budget crosses the next rung of the ``5k^2/4`` ladder, and the
  switches beyond the rung sit idle — the coarse-granularity cost the
  paper (and Solnushkin's automated fat-tree design line) attributes to
  Clos designs.

Every strategy is deterministic given its per-stage seed, so grown
topologies fingerprint stably and trajectory caches survive re-runs.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator

from repro.exceptions import TopologyError
from repro.growth.plan import GrowthSchedule, GrowthStage
from repro.topology.base import Topology
from repro.topology.expansion import expand_topology
from repro.topology.fattree import fat_tree_topology
from repro.topology.random_regular import random_regular_topology
from repro.util.rng import spawn_seeds
from repro.util.validation import check_positive_int


class GrowthStrategy:
    """Base strategy: matched-RRG initial build, abstract growth step."""

    #: Registry key; subclasses override.
    name = "base"

    def label(self) -> str:
        """Display label including any option state."""
        return self.name

    def initial(self, schedule: GrowthSchedule, seed=None) -> Topology:
        """The stage-0 fabric (default: an RRG matching the stage)."""
        stage = schedule.initial_stage
        return random_regular_topology(
            stage.target_switches,
            stage.degree(schedule),
            servers_per_switch=stage.servers(schedule),
            capacity=schedule.capacity,
            seed=seed,
            name=f"{schedule.name}/{self.name}@N={stage.target_switches}",
        )

    def grow(
        self,
        topo: Topology,
        stage: GrowthStage,
        schedule: GrowthSchedule,
        seed=None,
    ) -> Topology:
        """Return the fabric for ``stage`` (never mutates ``topo``)."""
        raise NotImplementedError


class SwapGrowth(GrowthStrategy):
    """Incremental link-swap growth (the Jellyfish procedure)."""

    name = "swap"

    def grow(
        self,
        topo: Topology,
        stage: GrowthStage,
        schedule: GrowthSchedule,
        seed=None,
    ) -> Topology:
        work = topo.copy(
            name=f"{schedule.name}/{self.name}@N={stage.target_switches}"
        )
        new_ids = _new_switch_ids(work, stage.target_switches)
        degree = stage.degree(schedule)
        servers = stage.servers(schedule)
        expand_topology(
            work,
            {node: degree for node in new_ids},
            servers={node: servers for node in new_ids},
            seed=seed,
        )
        return work


class SwapAnnealGrowth(SwapGrowth):
    """Link-swap growth plus a budgeted annealing refinement per stage."""

    name = "swap_anneal"

    def __init__(self, steps: int = 200, objective: str = "aspl") -> None:
        self.steps = check_positive_int(steps, "steps")
        self.objective = objective

    def label(self) -> str:
        return f"{self.name}(steps={self.steps},objective={self.objective})"

    def grow(
        self,
        topo: Topology,
        stage: GrowthStage,
        schedule: GrowthSchedule,
        seed=None,
    ) -> Topology:
        # Imported lazily: repro.search itself builds on the topology
        # package, and the other strategies must not pay the import.
        from repro.search.annealing import anneal

        swap_seed, anneal_seed = spawn_seeds(seed, 2)
        grown = super().grow(topo, stage, schedule, seed=swap_seed)
        result = anneal(
            grown, self.objective, steps=self.steps, seed=anneal_seed
        )
        refined = result.topology
        refined.name = (
            f"{schedule.name}/{self.name}@N={stage.target_switches}"
        )
        return refined


class RebuildGrowth(GrowthStrategy):
    """Fresh matched RRG at every stage (throughput ideal, churn worst case)."""

    name = "rebuild"

    def grow(
        self,
        topo: Topology,
        stage: GrowthStage,
        schedule: GrowthSchedule,
        seed=None,
    ) -> Topology:
        return random_regular_topology(
            stage.target_switches,
            stage.degree(schedule),
            servers_per_switch=stage.servers(schedule),
            capacity=schedule.capacity,
            seed=seed,
            name=f"{schedule.name}/{self.name}@N={stage.target_switches}",
        )


def fat_tree_ladder_arity(budget_switches: int) -> int:
    """Largest even arity ``k`` whose fat-tree (``5k^2/4`` switches) fits.

    The rungs of the upgrade ladder: a complete three-tier k-ary fat-tree
    deploys exactly ``5k^2/4`` switches, so a budget between rungs leaves
    equipment idle. Budgets below the smallest rung (k=2, five switches)
    raise.
    """
    check_positive_int(budget_switches, "budget_switches")
    k = int(math.sqrt(4 * budget_switches / 5))
    k -= k % 2
    while 5 * (k + 2) * (k + 2) // 4 <= budget_switches:
        k += 2
    if k < 2:
        raise TopologyError(
            f"no complete fat-tree fits a budget of {budget_switches} "
            "switches (the smallest, k=2, needs 5)"
        )
    return k


class FatTreeUpgrade(GrowthStrategy):
    """Coarse structured upgrades: the largest fat-tree inside each budget.

    ``max_arity`` models fixed-radix switches: a three-tier fat-tree of
    k-port switches cannot grow past ``k`` (Jellyfish's §1 example —
    64-port switches cap a fat-tree at 65,536 servers while the random
    graph keeps absorbing equipment), so with the cap set to the random
    fabric's port count the ladder both *steps* between rungs and
    *saturates* at the top rung. ``servers_per_edge`` stays at the
    full-bisection ``k/2`` default; the schedule's
    ``servers_per_switch``/``network_degree`` describe the random
    fabric's equipment and are ignored here — the comparison is
    budget-for-budget, which is how the upgrade-granularity question is
    posed operationally.
    """

    name = "fattree_upgrade"

    def __init__(self, max_arity: "int | None" = None) -> None:
        if max_arity is not None:
            check_positive_int(max_arity, "max_arity")
            max_arity -= max_arity % 2
            if max_arity < 2:
                raise TopologyError("max_arity must be at least 2")
        self.max_arity = max_arity

    def label(self) -> str:
        if self.max_arity is None:
            return self.name
        return f"{self.name}(max_arity={self.max_arity})"

    def initial(self, schedule: GrowthSchedule, seed=None) -> Topology:
        return self._deploy(schedule.initial_stage, schedule)

    def grow(
        self,
        topo: Topology,
        stage: GrowthStage,
        schedule: GrowthSchedule,
        seed=None,
    ) -> Topology:
        return self._deploy(stage, schedule)

    def _deploy(self, stage: GrowthStage, schedule: GrowthSchedule) -> Topology:
        k = fat_tree_ladder_arity(stage.target_switches)
        if self.max_arity is not None:
            k = min(k, self.max_arity)
        return fat_tree_topology(
            k,
            capacity=schedule.capacity,
            name=f"{schedule.name}/{self.name}@N={stage.target_switches}"
            f"(k={k})",
        )


_STRATEGIES: "dict[str, Callable[..., GrowthStrategy]]" = {
    SwapGrowth.name: SwapGrowth,
    SwapAnnealGrowth.name: SwapAnnealGrowth,
    RebuildGrowth.name: RebuildGrowth,
    FatTreeUpgrade.name: FatTreeUpgrade,
}


def available_strategies() -> "list[str]":
    """Sorted names accepted by :func:`make_strategy`."""
    return sorted(_STRATEGIES)


def make_strategy(name: str, **options) -> GrowthStrategy:
    """Construct a growth strategy by registry name.

    An already-constructed strategy passes through unchanged — but only
    without ``options``, which would otherwise be dropped silently and
    leave results labeled with a configuration that never ran.
    """
    if isinstance(name, GrowthStrategy):
        if options:
            raise TopologyError(
                f"cannot apply options {sorted(options)} to an "
                f"already-constructed strategy {name.label()!r}; pass the "
                f"registry name instead"
            )
        return name
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        known = ", ".join(available_strategies())
        raise TopologyError(
            f"unknown growth strategy {name!r}; known strategies: {known}"
        )
    return factory(**options)


def register_strategy(
    name: str, factory: "Callable[..., GrowthStrategy]"
) -> None:
    """Register a custom growth strategy under ``name``.

    Existing names cannot be overwritten (raise instead of silently
    shadowing a built-in).
    """
    if name in _STRATEGIES:
        raise TopologyError(f"growth strategy {name!r} is already registered")
    _STRATEGIES[name] = factory


def _new_switch_ids(topo: Topology, target: int) -> "list":
    """Fresh integer switch ids taking ``topo`` up to ``target`` switches.

    Continues the integer id sequence used by the RRG builders, skipping
    any ids already present so repeated growth never collides.
    """
    current = topo.num_switches
    if target <= current:
        raise TopologyError(
            f"growth target {target} does not exceed current size {current}"
        )
    taken = set(topo.switches)
    out: list = []
    candidate = current
    while len(out) < target - current:
        if candidate not in taken:
            out.append(candidate)
        candidate += 1
    return out


def grow_stages(
    schedule: GrowthSchedule,
    strategy: "str | GrowthStrategy",
    seed=None,
    **strategy_options,
) -> "Iterator[tuple[int, GrowthStage, Topology]]":
    """Yield ``(index, stage, topology)`` along one deterministic chain.

    The shared execution core of the trajectory runner and the
    ``"grown"`` topology-registry factory: one per-stage child seed is
    drawn up front from ``seed``, so the whole chain is reproducible
    from a single integer and any prefix of it is byte-identical to a
    shorter schedule's chain.
    """
    strategy = make_strategy(strategy, **strategy_options)
    stage_seeds = spawn_seeds(seed, len(schedule))
    topo = strategy.initial(schedule, seed=stage_seeds[0])
    yield 0, schedule.initial_stage, topo
    for index, stage in enumerate(schedule.growth_stages, start=1):
        topo = strategy.grow(topo, stage, schedule, seed=stage_seeds[index])
        yield index, stage, topo
