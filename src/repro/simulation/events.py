"""Discrete-event queue for the packet simulator."""

from __future__ import annotations

import heapq
from typing import Callable

from repro.exceptions import EventLimitError, SimulationError


class EventQueue:
    """A time-ordered callback queue.

    Events at equal times fire in scheduling order (a monotone sequence
    number breaks ties), which keeps runs deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = 0
        self.now = 0.0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, self._counter, action))
        self._counter += 1

    def schedule_at(self, when: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self.now}"
            )
        heapq.heappush(self._heap, (when, self._counter, action))
        self._counter += 1

    def run_until(self, end_time: float, max_events: "int | None" = None) -> int:
        """Process events up to ``end_time``; returns the number processed.

        ``max_events`` guards against runaway event storms (raises
        :class:`~repro.exceptions.EventLimitError` when exceeded).
        """
        processed = 0
        while self._heap and self._heap[0][0] <= end_time:
            when, _, action = heapq.heappop(self._heap)
            self.now = when
            action()
            processed += 1
            if max_events is not None and processed > max_events:
                raise EventLimitError(
                    f"exceeded {max_events} events before t={end_time}"
                )
        self.now = max(self.now, end_time)
        return processed

    def __len__(self) -> int:
        return len(self._heap)
