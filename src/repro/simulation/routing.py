"""Route selection for the packet simulator.

Subflows are source-routed: each carries a fixed host-to-host path
``[src_host, src_switch, ..., dst_switch, dst_host]``. Paths come from the
k shortest simple switch paths (Yen), matching the paper's "MPTCP with the
shortest paths" evaluation; an ECMP variant samples among equal-cost
shortest paths only.
"""

from __future__ import annotations

from repro.exceptions import SimulationError
from repro.metrics.paths import all_shortest_paths, k_shortest_paths
from repro.topology.base import Topology
from repro.util.rng import as_rng
from repro.util.validation import check_positive_int

#: Host node ids are tuples ("host", switch, index) to avoid clashing with
#: any switch naming scheme.
HOST = "host"


def host_id(server) -> tuple:
    """Simulator node id for a ``(switch, index)`` server."""
    switch, index = server
    return (HOST, switch, index)


def host_paths_for_pair(
    topo: Topology,
    src_server,
    dst_server,
    num_paths: int,
    mode: str = "k-shortest",
    seed=None,
) -> list[list]:
    """Host-to-host paths for one server pair.

    Parameters
    ----------
    num_paths:
        Desired path count; fewer are returned if the topology has fewer
        simple paths.
    mode:
        ``"k-shortest"`` (Yen; the paper's choice) or ``"ecmp"`` (sample
        with replacement among equal-cost shortest paths).

    Returns
    -------
    list of node paths including the host endpoints. Same-switch pairs get
    the two-hop host-switch-host path.
    """
    check_positive_int(num_paths, "num_paths")
    src_switch, _ = src_server
    dst_switch, _ = dst_server
    for switch in (src_switch, dst_switch):
        if switch not in topo:
            raise SimulationError(f"switch {switch!r} does not exist")
    src = host_id(src_server)
    dst = host_id(dst_server)
    if src_switch == dst_switch:
        return [[src, src_switch, dst]]

    if mode == "k-shortest":
        switch_paths = k_shortest_paths(topo, src_switch, dst_switch, num_paths)
    elif mode == "ecmp":
        rng = as_rng(seed)
        pool = list(all_shortest_paths(topo, src_switch, dst_switch, limit=64))
        if not pool:
            switch_paths = []
        else:
            picks = rng.integers(len(pool), size=num_paths)
            switch_paths = [pool[int(i)] for i in picks]
    else:
        raise SimulationError(f"unknown routing mode {mode!r}")
    if not switch_paths:
        raise SimulationError(
            f"no path between switches {src_switch!r} and {dst_switch!r}"
        )
    return [[src, *path, dst] for path in switch_paths]
