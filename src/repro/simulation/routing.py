"""Route selection for the packet simulator.

Subflows are source-routed: each carries a fixed host-to-host path
``[src_host, src_switch, ..., dst_switch, dst_host]``. Paths come from the
k shortest simple switch paths (Yen), matching the paper's "MPTCP with the
shortest paths" evaluation; an ECMP variant samples among equal-cost
shortest paths only.
"""

from __future__ import annotations

from repro.exceptions import SimulationError
from repro.metrics.paths import all_shortest_paths, k_shortest_paths
from repro.topology.base import Topology
from repro.util.rng import as_rng
from repro.util.validation import check_positive_int

#: Host node ids are tuples ("host", switch, index) to avoid clashing with
#: any switch naming scheme.
HOST = "host"


def host_id(server) -> tuple:
    """Simulator node id for a ``(switch, index)`` server."""
    switch, index = server
    return (HOST, switch, index)


#: ECMP samples with replacement from at most this many equal-cost paths.
ECMP_POOL_LIMIT = 64


def route_table_for_traffic(
    topo: Topology, server_pairs, num_paths: int, mode: str = "k-shortest"
):
    """Precompute one route set covering ``server_pairs``' switch pairs.

    Returns ``None`` when every pair is same-switch (nothing to route).
    The table reproduces :func:`host_paths_for_pair`'s direct computation
    byte-for-byte — Yen's native path order for ``"k-shortest"``, the
    ``limit=64`` equal-cost pool for ``"ecmp"`` — it just computes each
    distinct switch pair once instead of once per flow, and shares the
    result through the pipeline cache across runs.
    """
    from repro.fidelity.routes import route_set_for

    pairs = {
        (src[0], dst[0])
        for src, dst in server_pairs
        if src[0] != dst[0]
    }
    if not pairs:
        return None
    if mode == "k-shortest":
        return route_set_for(
            topo, pairs, mode="ksp", k=num_paths, method="yen"
        )
    if mode == "ecmp":
        return route_set_for(
            topo, pairs, mode="ecmp", k=ECMP_POOL_LIMIT, method="enum"
        )
    raise SimulationError(f"unknown routing mode {mode!r}")


def host_paths_for_pair(
    topo: Topology,
    src_server,
    dst_server,
    num_paths: int,
    mode: str = "k-shortest",
    seed=None,
    route_table=None,
) -> list[list]:
    """Host-to-host paths for one server pair.

    Parameters
    ----------
    num_paths:
        Desired path count; fewer are returned if the topology has fewer
        simple paths.
    mode:
        ``"k-shortest"`` (Yen; the paper's choice) or ``"ecmp"`` (sample
        with replacement among equal-cost shortest paths).
    route_table:
        Optional precomputed :class:`~repro.fidelity.routes.RouteSet` from
        :func:`route_table_for_traffic`. When given, switch paths are read
        from the table instead of recomputed per flow — identical output,
        one path computation per distinct switch pair instead of one per
        flow.

    Returns
    -------
    list of node paths including the host endpoints. Same-switch pairs get
    the two-hop host-switch-host path.
    """
    check_positive_int(num_paths, "num_paths")
    src_switch, _ = src_server
    dst_switch, _ = dst_server
    for switch in (src_switch, dst_switch):
        if switch not in topo:
            raise SimulationError(f"switch {switch!r} does not exist")
    src = host_id(src_server)
    dst = host_id(dst_server)
    if src_switch == dst_switch:
        return [[src, src_switch, dst]]

    if mode == "k-shortest":
        if route_table is not None:
            switch_paths = [
                list(p)
                for p in route_table.paths_for(src_switch, dst_switch)[:num_paths]
            ]
        else:
            switch_paths = k_shortest_paths(
                topo, src_switch, dst_switch, num_paths
            )
    elif mode == "ecmp":
        rng = as_rng(seed)
        if route_table is not None:
            pool = [
                list(p) for p in route_table.paths_for(src_switch, dst_switch)
            ]
        else:
            pool = list(
                all_shortest_paths(
                    topo, src_switch, dst_switch, limit=ECMP_POOL_LIMIT
                )
            )
        if not pool:
            switch_paths = []
        else:
            picks = rng.integers(len(pool), size=num_paths)
            switch_paths = [pool[int(i)] for i in picks]
    else:
        raise SimulationError(f"unknown routing mode {mode!r}")
    if not switch_paths:
        raise SimulationError(
            f"no path between switches {src_switch!r} and {dst_switch!r}"
        )
    return [[src, *path, dst] for path in switch_paths]
