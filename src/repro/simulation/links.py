"""Directed link model: rate-limited FIFO queue with drop-tail buffer.

Packet transmission on a link of capacity ``c`` takes ``size / c`` time
units; packets then arrive at the far end after a fixed propagation delay.
The buffer bounds the number of packets queued or in transmission; arrivals
beyond it are dropped (drop-tail), which is what the AIMD senders react to.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import SimulationError
from repro.simulation.events import EventQueue
from repro.util.validation import check_positive, check_positive_int


class LinkQueue:
    """One direction of a link, serialized through an event queue.

    Parameters
    ----------
    rate:
        Capacity in flow units (packets of size 1 take ``1 / rate`` time).
    propagation_delay:
        Added after serialization before delivery at the far end.
    buffer_packets:
        Maximum packets held (queued + in service); beyond it, drop-tail.
    """

    def __init__(
        self,
        events: EventQueue,
        rate: float,
        propagation_delay: float = 0.01,
        buffer_packets: int = 64,
        name: str = "link",
    ) -> None:
        self.events = events
        self.rate = check_positive(rate, "rate")
        if propagation_delay < 0:
            raise SimulationError(
                f"propagation_delay must be >= 0, got {propagation_delay}"
            )
        self.propagation_delay = propagation_delay
        self.buffer_packets = check_positive_int(buffer_packets, "buffer_packets")
        self.name = name
        self.occupancy = 0
        self.busy_until = 0.0
        self.delivered = 0
        self.dropped = 0
        self.busy_time = 0.0

    def submit(
        self, size: float, deliver: Callable[[], None]
    ) -> bool:
        """Offer a packet; returns False (and counts a drop) if buffer-full.

        ``deliver`` fires at the packet's arrival time at the far end.
        """
        if self.occupancy >= self.buffer_packets:
            self.dropped += 1
            return False
        self.occupancy += 1
        now = self.events.now
        start = max(self.busy_until, now)
        finish = start + size / self.rate
        self.busy_time += size / self.rate
        self.busy_until = finish

        def complete() -> None:
            self.occupancy -= 1
            self.delivered += 1
            deliver()

        self.events.schedule_at(finish + self.propagation_delay, complete)
        return True

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time the transmitter was busy."""
        if elapsed <= 0:
            raise SimulationError("elapsed time must be positive")
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:
        return (
            f"LinkQueue({self.name}, rate={self.rate}, "
            f"occ={self.occupancy}/{self.buffer_packets})"
        )
