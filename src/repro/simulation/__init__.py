"""Packet-level network simulation (§8.2, Figure 13).

A discrete-event, per-packet simulator with FIFO drop-tail link queues and
MPTCP-style multipath transport: each flow stripes packets over several
subflows, one per (k-shortest) path, each governed by an AIMD congestion
window with per-packet ACKs, RTT estimation, and timeout-driven loss
recovery.

The paper ran htsim with full MPTCP to show packet-level throughput lands
within a few percent of the fluid-flow LP optimum; this simulator exercises
the same code path — multipath congestion control over a concrete topology —
with a documented, simplified transport model (see
:class:`~repro.simulation.mptcp.Subflow` for the exact abstractions).
"""

from repro.simulation.events import EventQueue
from repro.simulation.links import LinkQueue
from repro.simulation.routing import host_paths_for_pair
from repro.simulation.mptcp import MptcpFlow, Subflow
from repro.simulation.simulator import (
    PacketLevelSimulator,
    SimulationConfig,
    SimulationReport,
)

__all__ = [
    "EventQueue",
    "LinkQueue",
    "host_paths_for_pair",
    "MptcpFlow",
    "Subflow",
    "PacketLevelSimulator",
    "SimulationConfig",
    "SimulationReport",
]
