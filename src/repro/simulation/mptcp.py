"""MPTCP-style multipath transport with per-subflow AIMD windows.

Model (simplifications are deliberate and documented):

- Each subflow source-routes packets of size 1 along a fixed host-to-host
  path and keeps at most ``cwnd`` packets outstanding.
- Receivers ACK every packet; ACKs return after the path's propagation
  delay without queueing (ACK bandwidth is negligible at these sizes).
- Slow start doubles the window per RTT (``+1`` per ACK) until
  ``ssthresh``; congestion avoidance adds ``1 / cwnd`` per ACK.
- Loss is detected by per-packet retransmission timeouts driven by an EWMA
  RTT estimator (no dupack machinery — with per-packet ACKs and source
  routing, timeouts recover equivalently). On loss the window halves, at
  most once per RTT (fast-recovery-like behaviour, never collapsing to
  slow start).
- Subflows are uncoupled by default (one AIMD loop each, as in EWTCP);
  ``coupling="ewtcp"`` scales each subflow's additive increase by ``1/k``
  so a k-subflow flow gains no aggressiveness over a single-path flow.

Senders have infinite backlogs: the simulator measures achievable
throughput, not flow completion times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SimulationError
from repro.simulation.events import EventQueue
from repro.simulation.links import LinkQueue


@dataclass
class SubflowStats:
    """Counters exposed for reporting and tests."""

    sent: int = 0
    delivered: int = 0
    retransmits: int = 0
    timeouts: int = 0
    acks: int = 0


class Subflow:
    """One AIMD-controlled path of an MPTCP flow."""

    def __init__(
        self,
        events: EventQueue,
        links: "list[LinkQueue]",
        flow: "MptcpFlow",
        initial_cwnd: float = 2.0,
        ssthresh: float = 32.0,
        max_cwnd: float = 256.0,
        min_rto: float = 1.0,
        increase_scale: float = 1.0,
        packet_size: float = 1.0,
    ) -> None:
        if not links:
            raise SimulationError("subflow needs at least one link")
        if packet_size <= 0:
            raise SimulationError(f"packet_size must be positive, got {packet_size}")
        self.events = events
        self.links = links
        self.flow = flow
        self.packet_size = float(packet_size)
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float(ssthresh)
        self.max_cwnd = float(max_cwnd)
        self.min_rto = float(min_rto)
        self.increase_scale = float(increase_scale)
        self.inflight = 0
        self.next_seq = 0
        # seq -> (send_time, send_index); send_index orders transmissions so
        # ACKs for later-sent packets can signal losses (dupack-style).
        self.outstanding: dict[int, tuple[float, int]] = {}
        self.dupacks: dict[int, int] = {}
        self.retransmit_queue: list[int] = []
        # Seqs ever retransmitted: their receive-side delay samples are
        # ambiguous (which copy arrived?) and are excluded from latency.
        self.retransmitted_seqs: set[int] = set()
        self.delivered_seqs: set[int] = set()
        self.stats = SubflowStats()
        self.srtt: "float | None" = None
        self.rttvar = 0.0
        self._recovery_until = 0.0
        self._send_counter = 0
        #: ACKs-for-later-packets needed to declare a loss (TCP's classic 3).
        self.dupack_threshold = 3
        self.ack_delay = sum(link.propagation_delay for link in links)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting."""
        self.maybe_send()

    def maybe_send(self) -> None:
        """Fill the congestion window with (re)transmissions."""
        while self.inflight < int(self.cwnd):
            if self.retransmit_queue:
                seq = self.retransmit_queue.pop(0)
                self.stats.retransmits += 1
                self.retransmitted_seqs.add(seq)
            else:
                seq = self.next_seq
                self.next_seq += 1
            self._transmit(seq)

    def _transmit(self, seq: int) -> None:
        self.inflight += 1
        self.outstanding[seq] = (self.events.now, self._send_counter)
        self._send_counter += 1
        self.dupacks[seq] = 0
        self.stats.sent += 1

        def forward(hop: int) -> None:
            if hop == len(self.links):
                self._arrived(seq)
                return
            accepted = self.links[hop].submit(
                self.packet_size, lambda: forward(hop + 1)
            )
            if not accepted:
                # Dropped; dupacks or the retransmission timeout recover it.
                return

        forward(0)
        self.events.schedule(self._rto(), lambda: self._on_timeout(seq))

    def _arrived(self, seq: int) -> None:
        """Packet reached the receiver: count delivery, return an ACK."""
        if seq not in self.delivered_seqs:
            self.delivered_seqs.add(seq)
            self.stats.delivered += 1
            record = self.outstanding.get(seq)
            delay = None
            if record is not None and seq not in self.retransmitted_seqs:
                delay = self.events.now - record[0]
            self.flow.on_delivery(delay)
        self.events.schedule(self.ack_delay, lambda: self._on_ack(seq))

    def _on_ack(self, seq: int) -> None:
        self.stats.acks += 1
        record = self.outstanding.pop(seq, None)
        self.dupacks.pop(seq, None)
        if record is None:
            return  # Late ACK for a packet loss recovery already handled.
        sent_at, send_index = record
        self.inflight -= 1
        self._sample_rtt(self.events.now - sent_at)
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += self.increase_scale / self.cwnd
        self.cwnd = min(self.cwnd, self.max_cwnd)
        # Dupack accounting: an ACK for a packet sent *after* one still
        # outstanding suggests the earlier packet was lost.
        lost: list[int] = []
        for other, (_, other_index) in self.outstanding.items():
            if other_index < send_index:
                count = self.dupacks.get(other, 0) + 1
                self.dupacks[other] = count
                if count >= self.dupack_threshold:
                    lost.append(other)
        for other in lost:
            self._declare_loss(other, timeout=False)
        self.maybe_send()

    def _declare_loss(self, seq: int, timeout: bool) -> None:
        if seq not in self.outstanding:
            return
        del self.outstanding[seq]
        self.dupacks.pop(seq, None)
        self.inflight -= 1
        if timeout:
            self.stats.timeouts += 1
        now = self.events.now
        if now >= self._recovery_until:
            # Halve at most once per RTT-ish window.
            self.ssthresh = max(self.cwnd / 2.0, 1.0)
            self.cwnd = max(self.cwnd / 2.0, 1.0)
            self._recovery_until = now + (self.srtt or self._rto())
        self.retransmit_queue.append(seq)

    def _on_timeout(self, seq: int) -> None:
        if seq not in self.outstanding:
            return  # Already acknowledged or recovered via dupacks.
        self._declare_loss(seq, timeout=True)
        self.maybe_send()

    # ------------------------------------------------------------------
    def _sample_rtt(self, rtt: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt

    def _rto(self) -> float:
        if self.srtt is None:
            # No sample yet: be generous so queue-buildup at startup does
            # not trigger spurious retransmission storms.
            return max(4.0 * self.min_rto, 8.0 * self.ack_delay + 4.0)
        return max(self.min_rto, self.srtt + 4.0 * self.rttvar)


class MptcpFlow:
    """A multipath flow: several subflows feeding one delivery counter."""

    #: Cap on retained one-way-delay samples per flow (first-come; enough
    #: for stable percentiles without unbounded memory).
    MAX_LATENCY_SAMPLES = 512

    def __init__(self, flow_id, coupling: str = "uncoupled") -> None:
        if coupling not in ("uncoupled", "ewtcp"):
            raise SimulationError(f"unknown coupling {coupling!r}")
        self.flow_id = flow_id
        self.coupling = coupling
        self.subflows: list[Subflow] = []
        self.delivered = 0
        #: One-way packet delays recorded while ``measure_latency`` is set
        #: (the simulator enables it after warmup).
        self.measure_latency = False
        self.latency_samples: list[float] = []

    def add_subflow(
        self, events: EventQueue, links: "list[LinkQueue]", **kwargs
    ) -> Subflow:
        """Attach a subflow over ``links`` (kwargs as in :class:`Subflow`)."""
        subflow = Subflow(events, links, flow=self, **kwargs)
        self.subflows.append(subflow)
        return subflow

    def finalize_coupling(self) -> None:
        """Apply the coupling policy once all subflows are attached."""
        if self.coupling == "ewtcp" and self.subflows:
            scale = 1.0 / len(self.subflows)
            for subflow in self.subflows:
                subflow.increase_scale = scale

    def start(self) -> None:
        """Start every subflow."""
        self.finalize_coupling()
        for subflow in self.subflows:
            subflow.start()

    def on_delivery(self, delay: "float | None" = None) -> None:
        """Called by subflows when a new data packet reaches the receiver.

        ``delay`` is the packet's one-way send-to-deliver time; sampled
        only while the measurement window is open.
        """
        self.delivered += 1
        if (
            self.measure_latency
            and delay is not None
            and len(self.latency_samples) < self.MAX_LATENCY_SAMPLES
        ):
            self.latency_samples.append(delay)
