"""Top-level packet simulator: topology + traffic -> per-flow rates.

Builds one :class:`~repro.simulation.links.LinkQueue` per directed switch
arc plus host access links at the server line-speed, instantiates an MPTCP
flow per server pair of the traffic matrix, runs the event loop, and
reports per-flow goodput measured after a warmup period.

Rates are in the same units as link capacities, so a report's
``min_rate`` compares directly against the flow LP's per-flow throughput
(Figure 13 plots exactly this pair).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.exceptions import EventLimitError, SimulationError
from repro.simulation.events import EventQueue
from repro.simulation.links import LinkQueue
from repro.simulation.mptcp import MptcpFlow
from repro.simulation.routing import host_paths_for_pair, route_table_for_traffic
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.util.rng import as_rng


@dataclass
class SimulationConfig:
    """Tunables for a packet-level run.

    ``duration``/``warmup`` are in simulated time units (one unit = the
    serialization time of one packet on a unit-capacity link). Goodput is
    measured over ``[warmup, duration]``.
    """

    duration: float = 400.0
    warmup: float = 150.0
    subflows: int = 8
    server_capacity: float = 1.0
    #: Packet size in capacity-units x time. Smaller packets emulate the
    #: fine-grained windows of real MTU-vs-line-rate ratios (a 1500B packet
    #: on a 10G link is a tiny fraction of the BDP); they multiply the event
    #: count, so this trades fidelity for runtime.
    packet_size: float = 1.0
    buffer_packets: int = 32
    propagation_delay: float = 0.01
    initial_cwnd: float = 2.0
    ssthresh: float = 8.0
    max_cwnd: float = 64.0
    min_rto: float = 15.0
    coupling: str = "uncoupled"
    routing_mode: str = "k-shortest"
    max_events: int = 20_000_000

    def __post_init__(self) -> None:
        if self.duration <= self.warmup:
            raise SimulationError(
                f"duration {self.duration} must exceed warmup {self.warmup}"
            )
        if self.subflows < 1:
            raise SimulationError("need at least one subflow")


@dataclass
class SimulationReport:
    """Measured outcome of a packet-level run."""

    flow_rates: dict = field(default_factory=dict)
    duration: float = 0.0
    warmup: float = 0.0
    total_delivered: int = 0
    total_dropped: int = 0
    link_utilization: dict = field(default_factory=dict)
    #: Pooled one-way packet delays sampled after warmup (time units).
    latency_samples: list = field(default_factory=list)

    @property
    def min_rate(self) -> float:
        """Worst per-flow goodput (the paper's throughput definition)."""
        if not self.flow_rates:
            raise SimulationError("report has no flows")
        return min(self.flow_rates.values())

    @property
    def mean_rate(self) -> float:
        """Average per-flow goodput."""
        if not self.flow_rates:
            raise SimulationError("report has no flows")
        return statistics.fmean(self.flow_rates.values())

    @property
    def percentile_rate(self) -> "callable":
        raise AttributeError("use rate_percentile(q)")

    def rate_percentile(self, q: float) -> float:
        """q-th percentile of per-flow goodput (q in [0, 100])."""
        return _percentile(sorted(self.flow_rates.values()), q, "flows")

    def latency_percentile(self, q: float) -> float:
        """q-th percentile of one-way packet delay (q in [0, 100]).

        Sampled after warmup; includes queueing, so the spread between the
        median and the tail measures how full the buffers run.
        """
        return _percentile(sorted(self.latency_samples), q, "latency samples")

    @property
    def mean_latency(self) -> float:
        """Mean one-way packet delay over the measurement window."""
        if not self.latency_samples:
            raise SimulationError("report has no latency samples")
        return statistics.fmean(self.latency_samples)


def _percentile(values: list, q: float, what: str) -> float:
    if not 0 <= q <= 100:
        raise SimulationError(f"percentile must be in [0, 100], got {q}")
    if not values:
        raise SimulationError(f"report has no {what}")
    position = (len(values) - 1) * q / 100.0
    low = int(position)
    high = min(low + 1, len(values) - 1)
    weight = position - low
    return values[low] * (1 - weight) + values[high] * weight


class PacketLevelSimulator:
    """Assemble and run a packet-level simulation on a topology."""

    def __init__(self, topo: Topology, config: "SimulationConfig | None" = None) -> None:
        self.topo = topo
        self.config = config or SimulationConfig()
        self.events = EventQueue()
        self._links: dict[tuple, LinkQueue] = {}
        self._build_switch_links()

    def _build_switch_links(self) -> None:
        cfg = self.config
        for u, v, cap in self.topo.arcs():
            self._links[(u, v)] = LinkQueue(
                self.events,
                rate=cap,
                propagation_delay=cfg.propagation_delay,
                buffer_packets=cfg.buffer_packets,
                name=f"{u!r}->{v!r}",
            )

    def _host_link(self, endpoint: tuple, toward_host: bool) -> LinkQueue:
        """Lazily create the access link for a host endpoint."""
        key = (endpoint, "in") if toward_host else (endpoint, "out")
        if key not in self._links:
            cfg = self.config
            self._links[key] = LinkQueue(
                self.events,
                rate=cfg.server_capacity,
                propagation_delay=cfg.propagation_delay,
                buffer_packets=cfg.buffer_packets,
                name=f"host-{endpoint!r}-{'in' if toward_host else 'out'}",
            )
        return self._links[key]

    def _links_for_path(self, path: list) -> list[LinkQueue]:
        """Map a host-level node path onto LinkQueues."""
        links: list[LinkQueue] = []
        for a, b in zip(path[:-1], path[1:]):
            a_is_host = isinstance(a, tuple) and a and a[0] == "host"
            b_is_host = isinstance(b, tuple) and b and b[0] == "host"
            if a_is_host and not b_is_host:
                links.append(self._host_link(a, toward_host=False))
            elif b_is_host and not a_is_host:
                links.append(self._host_link(b, toward_host=True))
            else:
                link = self._links.get((a, b))
                if link is None:
                    raise SimulationError(f"no switch link {a!r} -> {b!r}")
                links.append(link)
        return links

    def run(self, traffic: TrafficMatrix, seed=None) -> SimulationReport:
        """Simulate ``traffic`` (which must carry server-level pairs).

        Flow start times are staggered uniformly over one time unit to
        avoid artificial synchronization.
        """
        if traffic.server_pairs is None:
            raise SimulationError(
                f"traffic {traffic.name!r} has no server-level pairs; "
                "packet simulation needs explicit endpoints"
            )
        if not traffic.server_pairs:
            raise SimulationError("traffic has no flows")
        rng = as_rng(seed)
        cfg = self.config

        # One route computation per distinct switch pair (cached across
        # runs via the pipeline's route store), not one per flow.
        route_table = route_table_for_traffic(
            self.topo,
            traffic.server_pairs,
            num_paths=cfg.subflows,
            mode=cfg.routing_mode,
        )

        flows: list[MptcpFlow] = []
        for flow_index, (src, dst) in enumerate(traffic.server_pairs):
            paths = host_paths_for_pair(
                self.topo,
                src,
                dst,
                num_paths=cfg.subflows,
                mode=cfg.routing_mode,
                seed=rng,
                route_table=route_table,
            )
            flow = MptcpFlow((flow_index, src, dst), coupling=cfg.coupling)
            for path in paths:
                flow.add_subflow(
                    self.events,
                    self._links_for_path(path),
                    initial_cwnd=cfg.initial_cwnd,
                    ssthresh=cfg.ssthresh,
                    max_cwnd=cfg.max_cwnd,
                    min_rto=cfg.min_rto,
                    packet_size=cfg.packet_size,
                )
            flows.append(flow)
            start_offset = float(rng.random())
            self.events.schedule(start_offset, flow.start)

        snapshots: dict = {}

        def take_snapshot() -> None:
            for flow in flows:
                snapshots[flow.flow_id] = flow.delivered
                flow.measure_latency = True

        self.events.schedule_at(cfg.warmup, take_snapshot)
        try:
            self.events.run_until(cfg.duration, max_events=cfg.max_events)
        except EventLimitError as exc:
            raise EventLimitError(
                f"packet simulation of {traffic.name!r} on "
                f"{self.topo.name!r} {exc}; raise "
                "SimulationConfig.max_events (or shorten duration / grow "
                "packet_size) to let the run finish"
            ) from exc

        window = cfg.duration - cfg.warmup
        flow_rates = {
            flow.flow_id: (flow.delivered - snapshots.get(flow.flow_id, 0))
            * cfg.packet_size
            / window
            for flow in flows
        }
        total_delivered = sum(flow.delivered for flow in flows)
        total_dropped = sum(link.dropped for link in self._links.values())
        link_utilization = {
            key: link.utilization(cfg.duration)
            for key, link in self._links.items()
        }
        latency_samples: list = []
        for flow in flows:
            latency_samples.extend(flow.latency_samples)
        return SimulationReport(
            flow_rates=flow_rates,
            duration=cfg.duration,
            warmup=cfg.warmup,
            total_delivered=total_delivered,
            total_dropped=total_dropped,
            link_utilization=link_utilization,
            latency_samples=latency_samples,
        )
