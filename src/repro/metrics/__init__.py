"""Graph metrics: path lengths, cuts, and spectral/expansion measures."""

from repro.metrics.paths import (
    all_pairs_shortest_lengths,
    all_shortest_paths,
    average_shortest_path_length,
    demand_hop_sum,
    demand_weighted_aspl,
    diameter,
    k_shortest_paths,
    path_length_histogram,
    shortest_path_lengths_from,
)
from repro.metrics.cuts import (
    bisection_bandwidth,
    cut_capacity,
    nonuniform_sparsest_cut,
    uniform_sparsest_cut,
)
from repro.metrics.incremental import IncrementalASPL, SwapEvaluation
from repro.metrics.spectral import (
    adjacency_spectral_gap,
    algebraic_connectivity,
    cheeger_bounds,
    expander_mixing_deviation,
    sparse_algebraic_connectivity,
    sparse_fiedler_vector,
)

__all__ = [
    "all_pairs_shortest_lengths",
    "all_shortest_paths",
    "average_shortest_path_length",
    "demand_hop_sum",
    "demand_weighted_aspl",
    "diameter",
    "k_shortest_paths",
    "path_length_histogram",
    "shortest_path_lengths_from",
    "IncrementalASPL",
    "SwapEvaluation",
    "bisection_bandwidth",
    "cut_capacity",
    "nonuniform_sparsest_cut",
    "uniform_sparsest_cut",
    "adjacency_spectral_gap",
    "algebraic_connectivity",
    "cheeger_bounds",
    "expander_mixing_deviation",
    "sparse_algebraic_connectivity",
    "sparse_fiedler_vector",
]
