"""Incremental all-pairs shortest paths under double edge swaps.

The topology search engine evaluates thousands of candidate double edge
swaps per run; recomputing all-pairs BFS from scratch for each candidate
costs O(n * m) python-level work and dominates the hot loop. This module
maintains the full distance matrix across swaps and repairs it in
O(affected pairs) vectorized work instead:

1. **Deletions.** An edge ``(u, v)`` lies on some shortest path from
   source ``x`` iff ``|d(x, u) - d(x, v)| == 1``; rows where neither
   removed edge satisfies this are provably untouched by the deletions.
   Only the affected rows are recomputed, with a multi-source BFS whose
   per-level step is one dense matrix product (BLAS) rather than a python
   loop.
2. **Insertions.** Distances can only shrink through a new edge
   ``(u, v)``, and any improved path decomposes at its first use of a new
   edge, so the exact update for the remaining rows is the vectorized
   relaxation ``d'(x, y) = min(d(x, y), d'(u, x) + 1 + d'(v, y), ...)``
   using the already-exact rows of the four swap endpoints.

The matrix is repaired exactly (asserted against full recomputation in the
test suite), so the search loop can read ASPL deltas after every proposed
swap at a small fraction of the full-recompute cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import NodeId, Topology
from repro.topology.mutation import DoubleEdgeSwap


def _bfs_rows(adjacency: np.ndarray, sources: np.ndarray) -> np.ndarray:
    """BFS distance rows for ``sources`` over a dense float32 adjacency.

    Runs all sources simultaneously: each BFS level is one ``(k, n) @
    (n, n)`` matrix product. Unreachable entries hold the sentinel ``n``.
    """
    n = adjacency.shape[0]
    k = len(sources)
    dist = np.full((k, n), n, dtype=np.int32)
    frontier = np.zeros((k, n), dtype=np.float32)
    frontier[np.arange(k), sources] = 1.0
    visited = frontier > 0
    dist[visited] = 0
    level = 0
    while True:
        level += 1
        reached = (frontier @ adjacency) > 0
        fresh = reached & ~visited
        if not fresh.any():
            return dist
        dist[fresh] = level
        visited |= fresh
        frontier = fresh.astype(np.float32)


@dataclass
class SwapEvaluation:
    """Outcome of evaluating one candidate swap without committing it.

    ``connected`` is ``False`` when the swap disconnects the network, in
    which case ``total_distance``/``aspl`` are meaningless and committing
    the evaluation raises.
    """

    swap: DoubleEdgeSwap
    connected: bool
    total_distance: int
    aspl: float
    #: Number of distance-matrix rows recomputed by BFS (diagnostics).
    rows_recomputed: int = 0
    _dist: "np.ndarray | None" = field(default=None, repr=False, compare=False)
    _adjacency: "np.ndarray | None" = field(
        default=None, repr=False, compare=False
    )


class IncrementalASPL:
    """Maintain all-pairs hop distances of a topology across edge swaps.

    The tracker snapshots the topology's switch graph at construction; it
    does **not** observe later out-of-band mutations of the topology.
    Drive all structural changes through :meth:`apply` / :meth:`commit`
    (the search engine does), or rebuild with a fresh instance.

    Link capacities are irrelevant here — distances are hop counts, as in
    :func:`repro.metrics.paths.average_shortest_path_length`.
    """

    def __init__(self, topo: Topology) -> None:
        nodes = topo.switches
        if len(nodes) < 2:
            raise TopologyError("incremental ASPL needs at least 2 switches")
        self._nodes: list[NodeId] = list(nodes)
        self._index: dict[NodeId, int] = {v: i for i, v in enumerate(nodes)}
        n = len(nodes)
        adjacency = np.zeros((n, n), dtype=np.float32)
        for link in topo.links:
            i, j = self._index[link.u], self._index[link.v]
            adjacency[i, j] = 1.0
            adjacency[j, i] = 1.0
        dist = _bfs_rows(adjacency, np.arange(n))
        if int(dist.max()) >= n:
            raise TopologyError(
                f"topology {topo.name!r} is disconnected; ASPL undefined"
            )
        self._adjacency = adjacency
        self._dist = dist
        self._total = int(dist.sum())

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_switches(self) -> int:
        return len(self._nodes)

    @property
    def total_distance(self) -> int:
        """Sum of hop distances over all ordered switch pairs."""
        return self._total

    @property
    def aspl(self) -> float:
        """Average shortest path length over ordered pairs."""
        n = len(self._nodes)
        return self._total / (n * (n - 1))

    def distance(self, u: NodeId, v: NodeId) -> int:
        """Current hop distance between two switches."""
        try:
            i, j = self._index[u], self._index[v]
        except KeyError as exc:
            raise TopologyError(f"switch {exc.args[0]!r} does not exist")
        return int(self._dist[i, j])

    def distances(self) -> dict:
        """Mapping node -> {node -> hop distance} (matches metrics.paths)."""
        return {
            u: {
                v: int(self._dist[i, j])
                for j, v in enumerate(self._nodes)
            }
            for i, u in enumerate(self._nodes)
        }

    # ------------------------------------------------------------------
    # Swap evaluation
    # ------------------------------------------------------------------
    def evaluate(self, swap: DoubleEdgeSwap) -> SwapEvaluation:
        """Evaluate ``swap`` against the current graph without mutating it.

        Raises :class:`TopologyError` when the swap is structurally invalid
        for the current graph (missing removed links, present added links,
        repeated endpoints).
        """
        try:
            a, b, c, d = (self._index[v] for v in swap.touched())
        except KeyError as exc:
            raise TopologyError(f"switch {exc.args[0]!r} does not exist")
        if len({a, b, c, d}) < 4:
            raise TopologyError(f"swap endpoints must be distinct: {swap}")
        adj = self._adjacency
        if not (adj[a, b] and adj[c, d]):
            raise TopologyError(f"swap removes a missing link: {swap}")
        if adj[a, d] or adj[c, b]:
            raise TopologyError(f"swap adds an existing link: {swap}")

        n = len(self._nodes)
        adj_new = adj.copy()
        adj_new[a, b] = adj_new[b, a] = 0.0
        adj_new[c, d] = adj_new[d, c] = 0.0
        adj_new[a, d] = adj_new[d, a] = 1.0
        adj_new[c, b] = adj_new[b, c] = 1.0

        dist = self._dist
        affected = (np.abs(dist[:, a] - dist[:, b]) == 1) | (
            np.abs(dist[:, c] - dist[:, d]) == 1
        )
        affected[[a, b, c, d]] = True
        rows = np.flatnonzero(affected)
        repaired = _bfs_rows(adj_new, rows)
        if int(repaired.max()) >= n:
            return SwapEvaluation(
                swap=swap,
                connected=False,
                total_distance=-1,
                aspl=float("inf"),
                rows_recomputed=len(rows),
            )
        dist_new = dist.copy()
        dist_new[rows] = repaired
        # Exact relaxation of the untouched rows through the added edges,
        # using the endpoint rows just recomputed (see module docstring).
        for u, v in ((a, d), (c, b)):
            row_u = dist_new[u]
            row_v = dist_new[v]
            np.minimum(
                dist_new, row_u[:, None] + (row_v + 1)[None, :], out=dist_new
            )
            np.minimum(
                dist_new, row_v[:, None] + (row_u + 1)[None, :], out=dist_new
            )
        total = int(dist_new.sum())
        return SwapEvaluation(
            swap=swap,
            connected=True,
            total_distance=total,
            aspl=total / (n * (n - 1)),
            rows_recomputed=len(rows),
            _dist=dist_new,
            _adjacency=adj_new,
        )

    def commit(self, evaluation: SwapEvaluation) -> None:
        """Adopt a previously evaluated swap as the current state.

        Evaluations are only valid against the graph they were computed
        from; commit them before evaluating further swaps.
        """
        if not evaluation.connected:
            raise TopologyError(
                f"cannot commit disconnecting swap {evaluation.swap}"
            )
        if evaluation._dist is None or evaluation._adjacency is None:
            raise TopologyError("evaluation is missing its repaired state")
        self._dist = evaluation._dist
        self._adjacency = evaluation._adjacency
        self._total = evaluation.total_distance

    def apply(self, swap: DoubleEdgeSwap) -> SwapEvaluation:
        """Evaluate ``swap`` and commit it if it keeps the network connected.

        Returns the evaluation either way; check ``connected`` to learn
        whether the state advanced.
        """
        evaluation = self.evaluate(swap)
        if evaluation.connected:
            self.commit(evaluation)
        return evaluation
