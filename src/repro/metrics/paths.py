"""Shortest-path metrics over topologies.

Path lengths are measured in switch-to-switch hops (link capacities do not
affect distance), matching the paper's ``<D>`` and the Cerf et al. bound it
is compared against. Includes a self-contained Yen's algorithm for the
k-shortest simple paths used by the path-restricted LP and the MPTCP
simulator.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterator

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.util.validation import check_positive_int


def shortest_path_lengths_from(topo: Topology, source) -> dict:
    """Hop distances from ``source`` to every reachable switch (BFS)."""
    if source not in topo:
        raise TopologyError(f"switch {source!r} does not exist")
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbor in topo.neighbors(node):
            if neighbor not in dist:
                dist[neighbor] = dist[node] + 1
                frontier.append(neighbor)
    return dist


def all_pairs_shortest_lengths(topo: Topology) -> dict:
    """Mapping node -> {node -> hop distance} over reachable pairs."""
    return {v: shortest_path_lengths_from(topo, v) for v in topo.switches}


def average_shortest_path_length(topo: Topology) -> float:
    """ASPL over all ordered pairs of distinct switches (the paper's ``<D>``).

    Raises :class:`TopologyError` on disconnected or single-switch networks,
    where the quantity is undefined.
    """
    nodes = topo.switches
    if len(nodes) < 2:
        raise TopologyError("ASPL is undefined for fewer than 2 switches")
    total = 0
    count = 0
    for source in nodes:
        dist = shortest_path_lengths_from(topo, source)
        if len(dist) != len(nodes):
            raise TopologyError(
                f"topology {topo.name!r} is disconnected; ASPL undefined"
            )
        total += sum(dist.values())
        count += len(nodes) - 1
    return total / count


def diameter(topo: Topology) -> int:
    """Longest shortest-path distance between any switch pair."""
    nodes = topo.switches
    if len(nodes) < 2:
        raise TopologyError("diameter is undefined for fewer than 2 switches")
    worst = 0
    for source in nodes:
        dist = shortest_path_lengths_from(topo, source)
        if len(dist) != len(nodes):
            raise TopologyError(
                f"topology {topo.name!r} is disconnected; diameter undefined"
            )
        worst = max(worst, max(dist.values()))
    return worst


def path_length_histogram(topo: Topology) -> dict[int, int]:
    """Mapping hop distance -> number of ordered switch pairs at it."""
    hist: dict[int, int] = {}
    for source in topo.switches:
        dist = shortest_path_lengths_from(topo, source)
        for node, d in dist.items():
            if node == source:
                continue
            hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))


def demand_weighted_aspl(topo: Topology, traffic: TrafficMatrix) -> float:
    """Average hop distance across demand pairs, weighted by demand units.

    This is the ``<D>`` that enters the throughput decomposition for a
    concrete workload; for uniform workloads over evenly spread servers it
    coincides with the unweighted ASPL up to sampling noise.
    """
    if not traffic.demands:
        raise TopologyError("traffic matrix has no network demands")
    by_source: dict = {}
    for (u, v), units in traffic.demands.items():
        by_source.setdefault(u, []).append((v, units))
    weighted = 0.0
    total_units = 0.0
    for source, dests in by_source.items():
        dist = shortest_path_lengths_from(topo, source)
        for v, units in dests:
            if v not in dist:
                raise TopologyError(
                    f"demand {source!r}->{v!r} has no path in {topo.name!r}"
                )
            weighted += units * dist[v]
            total_units += units
    return weighted / total_units


def demand_hop_sum(
    topo: Topology,
    traffic: TrafficMatrix,
    chunk_size: int = 512,
    max_sources: "int | None" = None,
    seed: int = 0,
) -> float:
    """Sum over demands of ``units * hop_distance(u, v)``, at scale.

    This is the denominator of the capacity-charging throughput bound
    (each delivered unit consumes at least its shortest-path hops of
    capacity) and equals ``demand_weighted_aspl * total_demand``. Unlike
    the pure-python BFS in :func:`demand_weighted_aspl`, distances come
    from :mod:`scipy.sparse.csgraph` in source batches of ``chunk_size``
    rows, which keeps N = 10,000 networks within seconds and bounded
    memory. Raises :class:`TopologyError` on an unroutable demand.

    ``max_sources`` caps the number of BFS roots: when set below the
    number of distinct demand sources, that many sources are drawn
    uniformly without replacement (deterministic in ``seed``) and the
    sampled hop sum is scaled by ``num_sources / max_sources`` — the
    Horvitz-Thompson estimator, unbiased over the sampling draw. This is
    what takes the bound estimator to N = 100,000, where exact all-source
    BFS costs hours: ~256 sampled sources pin a permutation workload's
    hop sum to well under a percent. Unroutable demands are only detected
    at sampled sources in this mode.
    """
    if not traffic.demands:
        raise TopologyError("traffic matrix has no network demands")
    check_positive_int(chunk_size, "chunk_size")
    if max_sources is not None:
        check_positive_int(max_sources, "max_sources")
    import networkx as nx
    import numpy as np
    from scipy.sparse import csgraph

    nodes = topo.switches
    index = {node: i for i, node in enumerate(nodes)}
    by_source: dict = {}
    for (u, v), units in traffic.demands.items():
        for node in (u, v):
            if node not in index:
                raise TopologyError(f"demand endpoint {node!r} is not a switch")
        by_source.setdefault(u, []).append((index[v], units))
    from repro.estimate.batch import active_artifacts

    store = active_artifacts()
    if store is not None:
        # Same matrix the direct build produces (the store builds it with
        # this exact call), shared across the batch's backends.
        adjacency = store.csr_adjacency(topo)
    else:
        adjacency = nx.to_scipy_sparse_array(
            topo.graph, nodelist=nodes, weight=None, format="csr"
        )
    sources = sorted(by_source, key=repr)
    scale = 1.0
    if max_sources is not None and max_sources < len(sources):
        rng = np.random.default_rng(seed)
        picks = np.sort(
            rng.choice(len(sources), size=max_sources, replace=False)
        )
        scale = len(sources) / max_sources
        sources = [sources[i] for i in picks]
    source_rows = np.fromiter(
        (index[u] for u in sources), dtype=np.int64, count=len(sources)
    )
    total = 0.0
    for start in range(0, len(sources), chunk_size):
        batch = source_rows[start : start + chunk_size]
        distances = csgraph.dijkstra(adjacency, unweighted=True, indices=batch)
        for offset, source in enumerate(sources[start : start + chunk_size]):
            row = distances[offset]
            for dest_row, units in by_source[source]:
                hops = row[dest_row]
                if not np.isfinite(hops):
                    raise TopologyError(
                        f"demand {source!r}->{nodes[dest_row]!r} has no path "
                        f"in {topo.name!r}"
                    )
                total += units * float(hops)
    return total * scale


class DemandHopTracker:
    """Incrementally-maintained :func:`demand_hop_sum` for demand deltas.

    Built once per topology, the tracker caches each demand source's BFS
    distance row (distances depend only on the topology, which replay
    holds fixed) and its per-source hop-sum contribution. Applying a
    :class:`~repro.traffic.timeline.DemandDelta` re-prices **only the
    touched sources** — an O(changed pairs) dictionary update per source
    already priced, one BFS for a source never seen — so
    ``estimate_bound`` re-prices a timestep without the all-source sweep.

    Exact (no ``max_sources`` sampling): replay compares steps against
    each other, where sampling noise would swamp small deltas.
    """

    def __init__(
        self,
        topo: Topology,
        traffic: TrafficMatrix,
        chunk_size: int = 512,
    ) -> None:
        if not traffic.demands:
            raise TopologyError("traffic matrix has no network demands")
        check_positive_int(chunk_size, "chunk_size")
        import networkx as nx

        self._topo = topo
        self._nodes = topo.switches
        self._index = {node: i for i, node in enumerate(self._nodes)}
        self._chunk_size = chunk_size
        from repro.estimate.batch import active_artifacts

        store = active_artifacts()
        if store is not None:
            self._adjacency = store.csr_adjacency(topo)
        else:
            self._adjacency = nx.to_scipy_sparse_array(
                topo.graph, nodelist=self._nodes, weight=None, format="csr"
            )
        self._by_source: dict = {}
        for (u, v), units in traffic.demands.items():
            for node in (u, v):
                if node not in self._index:
                    raise TopologyError(
                        f"demand endpoint {node!r} is not a switch"
                    )
            self._by_source.setdefault(u, {})[v] = units
        self._dist_rows: dict = {}
        self._source_sums: dict = {}
        self.num_repriced = 0
        self._price_sources(sorted(self._by_source, key=repr))
        self.total = float(sum(self._source_sums.values()))

    # ------------------------------------------------------------------
    def _price_sources(self, sources: list) -> None:
        """(Re)compute hop-sum contributions for ``sources``."""
        import numpy as np
        from scipy.sparse import csgraph

        missing = [u for u in sources if u not in self._dist_rows]
        for start in range(0, len(missing), self._chunk_size):
            batch = missing[start : start + self._chunk_size]
            rows = np.fromiter(
                (self._index[u] for u in batch),
                dtype=np.int64,
                count=len(batch),
            )
            distances = csgraph.dijkstra(
                self._adjacency, unweighted=True, indices=rows
            )
            for offset, source in enumerate(batch):
                self._dist_rows[source] = distances[offset]
        import math

        for source in sources:
            row = self._dist_rows[source]
            dests = self._by_source.get(source, {})
            subtotal = 0.0
            for v, units in dests.items():
                hops = float(row[self._index[v]])
                if not math.isfinite(hops):
                    raise TopologyError(
                        f"demand {source!r}->{v!r} has no path in "
                        f"{self._topo.name!r}"
                    )
                subtotal += units * hops
            self._source_sums[source] = subtotal
            self.num_repriced += 1

    def apply_delta(self, delta) -> float:
        """Fold a delta in; returns the new total hop sum.

        Raises :class:`TopologyError` on unknown endpoints or a pair
        driven negative, leaving the tracker untouched in that case.
        """
        from repro.traffic.timeline import ZERO_DEMAND_TOLERANCE

        pending: dict = {}
        for (u, v), units in delta.changes:
            for node in (u, v):
                if node not in self._index:
                    raise TopologyError(
                        f"delta endpoint {node!r} is not a switch"
                    )
            current = pending.get((u, v))
            if current is None:
                current = self._by_source.get(u, {}).get(v, 0.0)
            new_units = current + units
            if new_units < -ZERO_DEMAND_TOLERANCE:
                raise TopologyError(
                    f"delta {delta.label!r} drives demand for ({u!r}, {v!r}) "
                    f"negative ({new_units})"
                )
            pending[(u, v)] = new_units
        touched: dict = {}
        for (u, v), new_units in pending.items():
            dests = self._by_source.setdefault(u, {})
            if abs(new_units) <= ZERO_DEMAND_TOLERANCE:
                dests.pop(v, None)
            else:
                dests[v] = new_units
            touched.setdefault(u, None)
        self._price_sources(sorted(touched, key=repr))
        for u in list(touched):
            if not self._by_source.get(u):
                self._by_source.pop(u, None)
        self.total = float(sum(self._source_sums.values()))
        return self.total


# ----------------------------------------------------------------------
# Path enumeration
# ----------------------------------------------------------------------
def _bfs_path(adjacency: dict, source, target, banned_nodes: set, banned_edges: set):
    """Shortest path avoiding banned nodes/edges; None if unreachable."""
    if source == target:
        return [source]
    parent = {source: None}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbor in adjacency[node]:
            if neighbor in parent or neighbor in banned_nodes:
                continue
            if (node, neighbor) in banned_edges:
                continue
            parent[neighbor] = node
            if neighbor == target:
                path = [neighbor]
                while parent[path[-1]] is not None:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            frontier.append(neighbor)
    return None


def k_shortest_paths(topo: Topology, source, target, k: int) -> list[list]:
    """Yen's algorithm: up to ``k`` shortest simple paths (by hops).

    Returns fewer than ``k`` paths when the graph does not contain that many
    simple paths. Ties are broken deterministically by path node sequence.
    """
    check_positive_int(k, "k")
    for node in (source, target):
        if node not in topo:
            raise TopologyError(f"switch {node!r} does not exist")
    if source == target:
        raise TopologyError("source and target must differ")
    adjacency = {v: sorted(topo.neighbors(v), key=repr) for v in topo.switches}

    first = _bfs_path(adjacency, source, target, set(), set())
    if first is None:
        return []
    accepted: list[list] = [first]
    candidates: list[tuple[int, list, list]] = []  # (length, tiebreak, path)
    seen: set[tuple] = {tuple(first)}

    while len(accepted) < k:
        prev = accepted[-1]
        for j in range(len(prev) - 1):
            spur_node = prev[j]
            root = prev[: j + 1]
            banned_edges: set = set()
            for path in accepted:
                if len(path) > j and path[: j + 1] == root:
                    banned_edges.add((path[j], path[j + 1]))
                    banned_edges.add((path[j + 1], path[j]))
            banned_nodes = set(root[:-1])
            spur = _bfs_path(adjacency, spur_node, target, banned_nodes, banned_edges)
            if spur is None:
                continue
            candidate = root[:-1] + spur
            key = tuple(candidate)
            if key in seen:
                continue
            seen.add(key)
            heapq.heappush(
                candidates, (len(candidate), [repr(n) for n in candidate], candidate)
            )
        if not candidates:
            break
        _, _, best = heapq.heappop(candidates)
        accepted.append(best)
    return accepted


def all_shortest_paths(
    topo: Topology, source, target, limit: "int | None" = None
) -> Iterator[list]:
    """Enumerate every shortest path from ``source`` to ``target`` (ECMP set).

    Builds the BFS predecessor DAG and walks it; ``limit`` truncates the
    enumeration (shortest-path counts can grow exponentially).
    """
    for node in (source, target):
        if node not in topo:
            raise TopologyError(f"switch {node!r} does not exist")
    if source == target:
        raise TopologyError("source and target must differ")
    dist = shortest_path_lengths_from(topo, source)
    if target not in dist:
        return
    predecessors: dict = {}
    for v in dist:
        predecessors[v] = [
            u for u in topo.neighbors(v) if dist.get(u, -1) == dist[v] - 1
        ]

    emitted = 0
    stack = [(target, [target])]
    while stack:
        node, suffix = stack.pop()
        if node == source:
            yield list(reversed(suffix))
            emitted += 1
            if limit is not None and emitted >= limit:
                return
            continue
        for pred in predecessors[node]:
            stack.append((pred, suffix + [pred]))
