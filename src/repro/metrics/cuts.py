"""Cut metrics: bisection bandwidth and sparsest cuts.

§6 of the paper argues bisection bandwidth is a poor throughput predictor
while the (non-uniform) sparsest cut governs the bottleneck regime. These
helpers compute exact cuts by brute force on small networks and fall back to
spectral (Fiedler-vector sweep) heuristics on larger ones.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.exceptions import TopologyError
from repro.metrics.spectral import fiedler_vector
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix

#: Largest switch count for which exact enumeration over subsets is used.
EXACT_CUT_LIMIT = 18


def cut_capacity(topo: Topology, side: set) -> float:
    """Capacity crossing between ``side`` and its complement (both ways)."""
    side = set(side)
    unknown = [v for v in side if v not in topo]
    if unknown:
        raise TopologyError(f"unknown switches in cut side: {unknown!r}")
    other = [v for v in topo.switches if v not in side]
    return topo.cut_capacity(side, other)


def _sweep_cuts(topo: Topology) -> list[set]:
    """Candidate cuts from a Fiedler-vector sweep (sorted prefixes)."""
    order = fiedler_vector(topo)
    ranked = [node for node, _ in sorted(order.items(), key=lambda kv: kv[1])]
    return [set(ranked[:i]) for i in range(1, len(ranked))]


def bisection_bandwidth(
    topo: Topology, exact_limit: int = EXACT_CUT_LIMIT, attempts: int = 200, seed=None
) -> float:
    """Minimum capacity crossing any balanced bipartition.

    Exact for ``num_switches <= exact_limit`` (enumeration); otherwise the
    minimum over a Fiedler sweep's balanced prefix and random balanced
    bipartitions — an upper bound on the true bisection bandwidth.
    """
    nodes = topo.switches
    n = len(nodes)
    if n < 2:
        raise TopologyError("bisection needs at least 2 switches")
    half = n // 2
    if n <= exact_limit:
        best = float("inf")
        for side in combinations(nodes, half):
            best = min(best, cut_capacity(topo, set(side)))
        return best

    rng = np.random.default_rng(seed)
    best = float("inf")
    order = fiedler_vector(topo)
    ranked = [node for node, _ in sorted(order.items(), key=lambda kv: kv[1])]
    best = min(best, cut_capacity(topo, set(ranked[:half])))
    node_list = list(nodes)
    for _ in range(attempts):
        perm = rng.permutation(n)
        side = {node_list[int(i)] for i in perm[:half]}
        best = min(best, cut_capacity(topo, side))
    return best


def uniform_sparsest_cut(
    topo: Topology, exact_limit: int = EXACT_CUT_LIMIT
) -> tuple[float, set]:
    """Uniform sparsest cut: min over S of cap(S, S̄) / (|S| * |S̄|).

    Returns ``(value, side)``. Exact by enumeration for small networks,
    Fiedler-sweep upper bound otherwise.
    """
    nodes = topo.switches
    n = len(nodes)
    if n < 2:
        raise TopologyError("sparsest cut needs at least 2 switches")

    def ratio(side: set) -> float:
        size = len(side)
        return cut_capacity(topo, side) / (size * (n - size))

    best_val = float("inf")
    best_side: set = set()
    if n <= exact_limit:
        anchor = nodes[0]
        rest = nodes[1:]
        # Fixing one node on a side halves the enumeration (complementary
        # cuts have equal ratios).
        for size in range(0, n - 1):
            for extra in combinations(rest, size):
                side = {anchor, *extra}
                if len(side) == n:
                    continue
                value = ratio(side)
                if value < best_val:
                    best_val = value
                    best_side = side
        return best_val, best_side

    for side in _sweep_cuts(topo):
        value = ratio(side)
        if value < best_val:
            best_val = value
            best_side = side
    return best_val, best_side


def nonuniform_sparsest_cut(
    topo: Topology,
    traffic: TrafficMatrix,
    exact_limit: int = EXACT_CUT_LIMIT,
) -> tuple[float, set]:
    """Non-uniform sparsest cut: min over S of Cap(S) / Dem(S).

    ``Dem(S)`` counts demand units separated by the cut (in either
    direction), matching Theorem 3's demand graph formulation. Subsets
    separating no demand are skipped. Exact for small networks; Fiedler
    sweep otherwise.
    """
    nodes = topo.switches
    n = len(nodes)
    if n < 2:
        raise TopologyError("sparsest cut needs at least 2 switches")
    if not traffic.demands:
        raise TopologyError("traffic matrix has no network demands")

    def demand_across(side: set) -> float:
        total = 0.0
        for (u, v), units in traffic.demands.items():
            if (u in side) != (v in side):
                total += units
        return total

    def ratio(side: set) -> float:
        dem = demand_across(side)
        if dem <= 0:
            return float("inf")
        return cut_capacity(topo, side) / dem

    best_val = float("inf")
    best_side: set = set()
    if n <= exact_limit:
        anchor = nodes[0]
        rest = nodes[1:]
        for size in range(0, n - 1):
            for extra in combinations(rest, size):
                side = {anchor, *extra}
                if len(side) == n:
                    continue
                value = ratio(side)
                if value < best_val:
                    best_val = value
                    best_side = side
        return best_val, best_side

    for side in _sweep_cuts(topo):
        value = ratio(side)
        if value < best_val:
            best_val = value
            best_side = side
    return best_val, best_side
