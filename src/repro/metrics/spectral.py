"""Spectral graph measures: expansion, mixing, and Cheeger bounds.

The paper's Theorem 2 rests on expander properties of random regular graphs
(the expander mixing lemma, Lemma 2). These helpers expose the spectral
quantities those arguments use so tests and benchmarks can check them
directly on sampled graphs.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology


def _adjacency_matrix(topo: Topology, weighted: bool = False) -> tuple[np.ndarray, list]:
    nodes = topo.switches
    index = {v: i for i, v in enumerate(nodes)}
    matrix = np.zeros((len(nodes), len(nodes)))
    for link in topo.links:
        weight = link.capacity if weighted else 1.0
        i, j = index[link.u], index[link.v]
        matrix[i, j] = weight
        matrix[j, i] = weight
    return matrix, nodes


def adjacency_spectral_gap(topo: Topology, weighted: bool = False) -> float:
    """Gap between the two largest adjacency eigenvalues, ``λ1 - λ2``.

    For a d-regular graph ``λ1 = d`` and a large gap certifies expansion.
    """
    if topo.num_switches < 2:
        raise TopologyError("spectral gap needs at least 2 switches")
    matrix, _ = _adjacency_matrix(topo, weighted=weighted)
    eigenvalues = np.sort(np.linalg.eigvalsh(matrix))[::-1]
    return float(eigenvalues[0] - eigenvalues[1])


def second_largest_adjacency_eigenvalue_magnitude(topo: Topology) -> float:
    """λ = max(|λ2|, |λn|) — the mixing-lemma eigenvalue."""
    if topo.num_switches < 2:
        raise TopologyError("needs at least 2 switches")
    matrix, _ = _adjacency_matrix(topo)
    eigenvalues = np.sort(np.linalg.eigvalsh(matrix))[::-1]
    return float(max(abs(eigenvalues[1]), abs(eigenvalues[-1])))


def algebraic_connectivity(topo: Topology, weighted: bool = True) -> float:
    """Second-smallest Laplacian eigenvalue (Fiedler value)."""
    if topo.num_switches < 2:
        raise TopologyError("algebraic connectivity needs at least 2 switches")
    matrix, _ = _adjacency_matrix(topo, weighted=weighted)
    degrees = matrix.sum(axis=1)
    laplacian = np.diag(degrees) - matrix
    eigenvalues = np.sort(np.linalg.eigvalsh(laplacian))
    return float(eigenvalues[1])


def fiedler_vector(topo: Topology, weighted: bool = True) -> dict:
    """Eigenvector of the second-smallest Laplacian eigenvalue, per node.

    Sorting nodes by their Fiedler-vector entry gives the classic spectral
    sweep used for cut heuristics.
    """
    if topo.num_switches < 2:
        raise TopologyError("Fiedler vector needs at least 2 switches")
    matrix, nodes = _adjacency_matrix(topo, weighted=weighted)
    degrees = matrix.sum(axis=1)
    laplacian = np.diag(degrees) - matrix
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    order = np.argsort(eigenvalues)
    vector = eigenvectors[:, order[1]]
    return {node: float(vector[i]) for i, node in enumerate(nodes)}


def expander_mixing_deviation(topo: Topology, side_s: set, side_t: set) -> dict:
    """Expander mixing lemma accounting for node sets S, T.

    For a d-regular graph, ``|e(S,T) - d|S||T|/n| <= λ sqrt(|S||T|)``. Returns
    the observed edge count, the expected count, the lemma's bound on the
    deviation, and whether it holds. Requires a regular topology.
    """
    degrees = {topo.degree(v) for v in topo.switches}
    if len(degrees) != 1:
        raise TopologyError("expander mixing lemma requires a regular graph")
    d = degrees.pop()
    n = topo.num_switches
    side_s = set(side_s)
    side_t = set(side_t)
    edges = 0
    for link in topo.links:
        if link.u in side_s and link.v in side_t:
            edges += 1
        if link.v in side_s and link.u in side_t:
            edges += 1
    expected = d * len(side_s) * len(side_t) / n
    lam = second_largest_adjacency_eigenvalue_magnitude(topo)
    bound = lam * float(np.sqrt(len(side_s) * len(side_t)))
    deviation = abs(edges - expected)
    return {
        "observed": float(edges),
        "expected": expected,
        "deviation": deviation,
        "bound": bound,
        "holds": deviation <= bound + 1e-9,
    }


#: Below this switch count the sparse helpers fall back to the dense
#: eigensolvers: LAPACK on a tiny matrix beats ARPACK setup cost and
#: avoids shift-invert corner cases on very small graphs.
SPARSE_SPECTRAL_THRESHOLD = 256

#: Above this switch count the Fiedler solve drops shift-invert ARPACK —
#: whose sparse LU factorization of the Laplacian costs minutes and
#: gigabytes by N = 100,000 — for factorization-free Lanczos on the
#: reflected operator ``c I - L`` (matvec-only; ~50 s at N = 100,000).
#: Between the thresholds shift-invert stays, byte-for-byte, the solver
#: it has always been.
SHIFT_INVERT_LIMIT = 20_000


def _sparse_fiedler_pair(
    topo: Topology, weighted: bool = True
) -> "tuple[float, np.ndarray, list]":
    """(lambda_2, Fiedler vector, node order) via sparse shift-invert ARPACK.

    The Laplacian is symmetric positive semidefinite with a known
    eigenvalue at 0; asking ARPACK for the two eigenpairs nearest a small
    negative shift returns 0 and the Fiedler pair without factorizing a
    singular matrix. Dense fallback below
    :data:`SPARSE_SPECTRAL_THRESHOLD` switches.
    """
    import networkx as nx
    from scipy import sparse
    from scipy.sparse.linalg import eigsh

    if topo.num_switches < 2:
        raise TopologyError("Fiedler pair needs at least 2 switches")
    nodes = topo.switches
    if topo.num_switches <= SPARSE_SPECTRAL_THRESHOLD:
        matrix, _ = _adjacency_matrix(topo, weighted=weighted)
        degrees = matrix.sum(axis=1)
        laplacian = np.diag(degrees) - matrix
        eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
        order = np.argsort(eigenvalues)
        return (
            float(eigenvalues[order[1]]),
            eigenvectors[:, order[1]],
            nodes,
        )
    adjacency = nx.to_scipy_sparse_array(
        topo.graph,
        nodelist=nodes,
        weight="capacity" if weighted else None,
        format="csr",
        dtype=float,
    )
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    laplacian = sparse.diags(degrees) - adjacency
    # A fixed start vector keeps ARPACK deterministic: without v0 it
    # seeds the Krylov iteration from the *global* numpy RandomState,
    # which would make cut estimates (and their cache entries) vary
    # between otherwise identical runs. A seeded Gaussian draw avoids
    # pathological starts (e.g. exactly the all-ones kernel vector).
    v0 = np.random.default_rng(0xF1ED1E2).standard_normal(len(nodes))
    if len(nodes) > SHIFT_INVERT_LIMIT:
        # Gershgorin puts every Laplacian eigenvalue in [0, 2 max-degree],
        # so ``c I - L`` with c = 2 max-degree is PSD and its two largest
        # eigenpairs are the kernel (value c) and the Fiedler pair (value
        # c - lambda_2) — plain Lanczos finds both without factorizing
        # anything.
        c = 2.0 * max(float(degrees.max()), 1.0)
        reflected = (
            sparse.identity(len(nodes), format="csr", dtype=float) * c
            - laplacian
        )
        eigenvalues, eigenvectors = eigsh(reflected, k=2, which="LA", v0=v0)
        order = np.argsort(eigenvalues)[::-1]
        return (
            c - float(eigenvalues[order[1]]),
            eigenvectors[:, order[1]],
            nodes,
        )
    shift = -1e-2 * max(float(degrees.max()), 1.0)
    eigenvalues, eigenvectors = eigsh(
        laplacian.tocsc(), k=2, sigma=shift, which="LM", v0=v0
    )
    order = np.argsort(eigenvalues)
    return float(eigenvalues[order[1]]), eigenvectors[:, order[1]], nodes


def _fiedler_pair_shared(topo: Topology, weighted: bool):
    """One Fiedler eigensolve, via the batch artifact memo when active.

    Inside a :func:`repro.estimate.batch.shared_artifacts` scope the
    eigenpair is computed once per topology and reused by every backend
    (``cut`` wants the vector, ``spectral`` the value); outside a scope
    this is a plain call.
    """
    from repro.estimate.batch import active_artifacts

    store = active_artifacts()
    if store is not None:
        return store.fiedler_pair(topo, weighted=weighted)
    return _sparse_fiedler_pair(topo, weighted=weighted)


def sparse_algebraic_connectivity(topo: Topology, weighted: bool = True) -> float:
    """Fiedler value at scale: sparse ARPACK above the dense threshold.

    Agrees with :func:`algebraic_connectivity` (to solver tolerance) but
    stays tractable for N = 10,000 networks where the dense O(N^3)
    eigensolve does not.
    """
    value, _, _ = _fiedler_pair_shared(topo, weighted=weighted)
    return max(value, 0.0)


def sparse_fiedler_vector(topo: Topology, weighted: bool = True) -> dict:
    """Per-node Fiedler-vector entries at scale (cf. :func:`fiedler_vector`)."""
    _, vector, nodes = _fiedler_pair_shared(topo, weighted=weighted)
    return {node: float(vector[i]) for i, node in enumerate(nodes)}


def cheeger_bounds(topo: Topology) -> tuple[float, float]:
    """Cheeger inequality bounds on edge expansion for a d-regular graph.

    Returns ``(lower, upper)`` with ``lower = (d - λ2) / 2`` and
    ``upper = sqrt(2 d (d - λ2))``, bracketing the conductance-style edge
    expansion ``h``.
    """
    degrees = {topo.degree(v) for v in topo.switches}
    if len(degrees) != 1:
        raise TopologyError("Cheeger bounds require a regular graph")
    d = degrees.pop()
    matrix, _ = _adjacency_matrix(topo)
    eigenvalues = np.sort(np.linalg.eigvalsh(matrix))[::-1]
    lambda2 = float(eigenvalues[1])
    gap = d - lambda2
    return gap / 2.0, float(np.sqrt(2.0 * d * gap))
