"""Max concurrent multi-commodity flow engines.

Throughput in the paper is the optimum of the standard maximum concurrent
flow problem: maximize ``t`` such that every source-destination pair with
demand ``d`` simultaneously receives ``t * d`` units of fluid, splittable
flow within link capacities. Maximizing the minimum flow builds fairness
into the metric itself.

Three engines are provided:

- :func:`~repro.flow.edge_lp.max_concurrent_flow` — exact arc-based LP
  (scipy HiGHS) with commodities aggregated by source switch,
- :func:`~repro.flow.path_lp.max_concurrent_flow_paths` — LP restricted to
  k-shortest path sets (a fast lower bound, and the model MPTCP-over-
  shortest-paths approximates),
- :func:`~repro.flow.approx.garg_koenemann_throughput` — the
  Garg–Könemann (1-ε) combinatorial approximation, no LP solver needed.
"""

from repro.flow.result import ThroughputResult
from repro.flow.reachability import (
    UNREACHABLE_POLICIES,
    split_unreachable_demands,
)
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.path_lp import max_concurrent_flow_paths
from repro.flow.approx import garg_koenemann_throughput
from repro.flow.ecmp import ecmp_throughput
from repro.flow.decomposition import (
    ThroughputDecomposition,
    decompose_throughput,
    group_utilization,
)
from repro.flow.objective import (
    available_throughput_solvers,
    throughput_evaluator,
)
from repro.flow.solvers import (
    SolverBackend,
    SolverConfig,
    ThroughputSolver,
    available_solvers,
    get_solver,
    normalize_solver_name,
    register_solver,
    solve_throughput,
)
from repro.flow.path_decomposition import (
    PathFlow,
    decompose_arc_flows,
    decompose_commodity_flows,
)
from repro.flow.incremental import (
    EdgeLPModel,
    model_for,
    model_stats,
)

__all__ = [
    "ThroughputResult",
    "UNREACHABLE_POLICIES",
    "split_unreachable_demands",
    "max_concurrent_flow",
    "max_concurrent_flow_paths",
    "garg_koenemann_throughput",
    "ecmp_throughput",
    "available_throughput_solvers",
    "throughput_evaluator",
    "SolverBackend",
    "SolverConfig",
    "ThroughputSolver",
    "available_solvers",
    "get_solver",
    "normalize_solver_name",
    "register_solver",
    "solve_throughput",
    "ThroughputDecomposition",
    "decompose_throughput",
    "group_utilization",
    "PathFlow",
    "decompose_arc_flows",
    "decompose_commodity_flows",
    "EdgeLPModel",
    "model_for",
    "model_stats",
]
