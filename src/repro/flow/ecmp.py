"""ECMP fluid throughput: equal splitting over shortest paths.

The paper (and Jellyfish before it) evaluates topologies under *optimal*
routing; real fabrics usually run ECMP, which hashes flows uniformly over
shortest paths only. This module computes the fluid-limit throughput of two
ECMP idealizations:

- ``per-hop`` (default): at every switch, traffic toward a destination
  splits equally across all shortest-path next hops — exactly the fixed
  point of per-packet ECMP hashing,
- ``per-path``: demand splits equally over the set of end-to-end shortest
  paths (an idealization closer to flowlet/WCMP-style balancing).

Both produce deterministic arc loads for a demand matrix; the reported
throughput is the largest ``t`` such that ``t x`` loads fit in capacity,
i.e. ``min over arcs of capacity / load``. Comparing against
:func:`repro.flow.edge_lp.max_concurrent_flow` quantifies how much of the
optimal throughput ECMP forfeits on a given topology (substantial on random
graphs — the Jellyfish finding that motivated MPTCP over k-shortest paths).
"""

from __future__ import annotations

from repro.exceptions import FlowError
from repro.flow.reachability import resolve_unreachable, unserved_result
from repro.flow.result import ThroughputResult
from repro.metrics.paths import all_shortest_paths, shortest_path_lengths_from
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.util.validation import check_positive_int

#: Default cap on enumerated paths per pair in per-path mode
#: (shortest-path counts can grow combinatorially). Pairs that hit the
#: cap split over the enumerated subset only — a bias the result reports
#: via :attr:`~repro.flow.result.ThroughputResult.truncated_pairs`.
MAX_PATHS_PER_PAIR = 256


def ecmp_throughput(
    topo: Topology,
    traffic: TrafficMatrix,
    mode: str = "per-hop",
    unreachable: str = "error",
    max_paths: int = MAX_PATHS_PER_PAIR,
) -> ThroughputResult:
    """Fluid ECMP throughput for a traffic matrix.

    Returns a :class:`ThroughputResult` whose arc flows are the ECMP loads
    scaled by the achieved ``t`` (so utilization/decomposition helpers work
    unchanged). ``exact=False``: ECMP is a restricted routing policy.

    ``unreachable`` chooses the degraded-fabric policy (``"error"`` raises
    on unroutable demands, ``"drop"`` serves what it can — see
    :mod:`repro.flow.reachability`). ``max_paths`` caps per-pair path
    enumeration in per-path mode; pairs that hit it are counted in
    ``result.truncated_pairs`` instead of being truncated silently.
    """
    if mode not in ("per-hop", "per-path"):
        raise FlowError(f"unknown ECMP mode {mode!r}")
    check_positive_int(max_paths, "max_paths")
    traffic, dropped, dropped_demand = resolve_unreachable(
        topo, traffic, unreachable
    )
    if dropped and not traffic.demands:
        return unserved_result(
            topo, f"ecmp-{mode}", dropped, dropped_demand, exact=False
        )
    traffic.validate_against(topo.switches)
    if not traffic.demands:
        raise FlowError("traffic matrix has no network demands")

    arcs = topo.arcs()
    loads = {(u, v): 0.0 for u, v, _ in arcs}
    caps = {(u, v): float(cap) for u, v, cap in arcs}

    truncated = 0
    if mode == "per-hop":
        _accumulate_per_hop(topo, traffic, loads)
    else:
        truncated = _accumulate_per_path(topo, traffic, loads, max_paths)

    throughput = float("inf")
    for arc, load in loads.items():
        if load > 0:
            throughput = min(throughput, caps[arc] / load)
    if throughput == float("inf"):
        raise FlowError("no demand produced any load")
    arc_flows = {arc: load * throughput for arc, load in loads.items()}
    return ThroughputResult(
        throughput=throughput,
        arc_flows=arc_flows,
        arc_capacities=caps,
        total_demand=traffic.total_demand,
        solver=f"ecmp-{mode}",
        exact=False,
        dropped_pairs=tuple(dropped),
        dropped_demand=dropped_demand,
        truncated_pairs=truncated,
    )


def _accumulate_per_hop(
    topo: Topology, traffic: TrafficMatrix, loads: dict
) -> None:
    """Per-destination equal next-hop splitting (true ECMP fixed point)."""
    by_destination: dict = {}
    for (u, v), units in traffic.demands.items():
        by_destination.setdefault(v, {})[u] = units
    for destination, sources in by_destination.items():
        dist = shortest_path_lengths_from(topo, destination)
        arrived: dict = {}
        for source, units in sources.items():
            if source not in dist:
                raise FlowError(
                    f"demand {source!r}->{destination!r} has no path"
                )
            arrived[source] = arrived.get(source, 0.0) + float(units)
        # The shortest-path DAG toward `destination` only has arcs from
        # farther nodes to strictly closer ones, so one pass over nodes in
        # decreasing distance order sees all of a node's incoming mass
        # before splitting it across its next hops.
        for node in sorted(dist, key=lambda n: -dist[n]):
            amount = arrived.get(node, 0.0)
            if amount <= 0 or node == destination:
                continue
            next_hops = [
                neighbor
                for neighbor in topo.neighbors(node)
                if dist.get(neighbor, float("inf")) == dist[node] - 1
            ]
            share = amount / len(next_hops)
            for neighbor in next_hops:
                loads[(node, neighbor)] += share
                arrived[neighbor] = arrived.get(neighbor, 0.0) + share
            arrived[node] = 0.0


def _accumulate_per_path(
    topo: Topology, traffic: TrafficMatrix, loads: dict, max_paths: int
) -> int:
    """Equal split over the enumerated shortest-path set of each pair.

    Enumerates one path past the cap to detect truncation; returns the
    number of pairs whose shortest-path set exceeded ``max_paths`` (their
    demand splits over the first ``max_paths`` enumerated paths only).
    """
    truncated = 0
    for (u, v), units in traffic.demands.items():
        paths = list(all_shortest_paths(topo, u, v, limit=max_paths + 1))
        if not paths:
            raise FlowError(f"demand {u!r}->{v!r} has no path")
        if len(paths) > max_paths:
            truncated += 1
            paths = paths[:max_paths]
        share = float(units) / len(paths)
        for path in paths:
            for a, b in zip(path[:-1], path[1:]):
                loads[(a, b)] += share
    return truncated
