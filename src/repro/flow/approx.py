"""Garg–Könemann combinatorial approximation for max concurrent flow.

A fully polynomial (1 - ε)-approximation that needs no LP solver: maintain
exponential arc lengths, repeatedly route each commodity's demand along
shortest paths under those lengths, then scale the accumulated (infeasible)
flow down by the worst arc overload. The scaled flow is feasible by
construction, so the returned throughput is always a valid lower bound —
the ε guarantee only governs how far below the optimum it can fall.

Useful for networks too large for the exact LP, and as an independent
cross-check of the LP engines (see ``bench_ablation_solvers``).

The termination test ``sum(capacity * length) >= 1`` runs before every
routed chunk; recomputing that sum is a full O(m) scan per chunk. The
sum is instead maintained incrementally (lengths only change on the arcs
of the routed path), dropping the test to O(1) and leaving the Dijkstra
as the per-chunk cost — measured ~1.3x end-to-end on RRG permutation
instances from N=32/r=6 through N=64/r=8 at the default epsilon, with
bit-identical throughput (the regression test in
``tests/test_flow_approx.py`` checks against the full-rescan reference).
"""

from __future__ import annotations

import heapq
import math

from repro.exceptions import FlowError
from repro.flow.reachability import resolve_unreachable, unserved_result
from repro.flow.result import ThroughputResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.util.validation import check_fraction


def garg_koenemann_throughput(
    topo: Topology,
    traffic: TrafficMatrix,
    epsilon: float = 0.1,
    max_phases: int = 10_000,
    unreachable: str = "error",
) -> ThroughputResult:
    """Approximate max concurrent flow by the Garg–Könemann phase scheme.

    Parameters
    ----------
    epsilon:
        Accuracy knob in (0, 1); smaller is tighter and slower. The phase
        count grows as ``O(log(m) / epsilon^2)``.
    max_phases:
        Hard stop to keep runtime bounded for extreme parameters.
    unreachable:
        Policy for demands with no path (degraded fabrics): ``"error"``
        raises, ``"drop"`` routes only the served demand set and records
        the dropped pairs on the result. See
        :mod:`repro.flow.reachability`.

    Returns
    -------
    ThroughputResult
        ``exact=False``; ``throughput`` is a feasible concurrent rate.
    """
    epsilon = check_fraction(epsilon, "epsilon")
    if epsilon >= 1.0:
        raise FlowError("epsilon must be < 1")
    traffic, dropped, dropped_demand = resolve_unreachable(
        topo, traffic, unreachable
    )
    if dropped and not traffic.demands:
        return unserved_result(
            topo, "garg-koenemann", dropped, dropped_demand, exact=False
        )
    traffic.validate_against(topo.switches)
    if not traffic.demands:
        raise FlowError("traffic matrix has no network demands")

    arcs = topo.arcs()
    if not arcs:
        raise FlowError("topology has no links")
    num_arcs = len(arcs)
    capacity = [cap for _, _, cap in arcs]
    arc_index = {(u, v): i for i, (u, v, _) in enumerate(arcs)}
    adjacency: dict = {v: [] for v in topo.switches}
    for i, (u, v, _) in enumerate(arcs):
        adjacency[u].append((v, i))

    delta = (num_arcs / (1.0 - epsilon)) ** (-1.0 / epsilon)
    lengths = [delta / c for c in capacity]
    flows = [0.0] * num_arcs
    commodities = sorted(
        traffic.demands.items(), key=lambda kv: (repr(kv[0][0]), repr(kv[0][1]))
    )

    # The arc-length sum sum(c * l) gates every routed chunk; it is
    # maintained incrementally (lengths change only on the routed path's
    # arcs) instead of rescanned, keeping the gate O(1) per chunk.
    total_length = sum(c * length for c, length in zip(capacity, lengths))

    phases = 0
    flows_at_last_complete = list(flows)
    while phases < max_phases:
        if total_length >= 1.0:
            break
        complete = True
        for (src, dst), demand in commodities:
            remaining = float(demand)
            while remaining > 1e-15:
                if total_length >= 1.0:
                    complete = False
                    break
                path_arcs = _shortest_path_arcs(adjacency, lengths, src, dst)
                if path_arcs is None:
                    raise FlowError(f"no path from {src!r} to {dst!r}")
                bottleneck = min(capacity[a] for a in path_arcs)
                amount = min(remaining, bottleneck)
                for a in path_arcs:
                    flows[a] += amount
                    old_length = lengths[a]
                    new_length = old_length * (
                        1.0 + epsilon * amount / capacity[a]
                    )
                    lengths[a] = new_length
                    total_length += capacity[a] * (new_length - old_length)
                remaining -= amount
            if not complete:
                break
        if not complete:
            break
        phases += 1
        flows_at_last_complete = list(flows)

    if phases == 0:
        raise FlowError(
            "no complete phase executed; epsilon too large for this instance"
        )
    # Scale the flow accumulated over *complete* phases to feasibility: each
    # complete phase routed the full demand of every commodity once, so the
    # scaled flow concurrently delivers `phases * scale` per demand unit.
    flows = flows_at_last_complete
    overload = max(
        (flows[a] / capacity[a] for a in range(num_arcs)), default=0.0
    )
    if overload <= 0:
        raise FlowError("accumulated flow is empty")
    scale = 1.0 / overload
    throughput = phases * scale
    arc_flows = {
        (arcs[a][0], arcs[a][1]): flows[a] * scale for a in range(num_arcs)
    }
    return ThroughputResult(
        throughput=throughput,
        arc_flows=arc_flows,
        arc_capacities={(u, v): float(cap) for u, v, cap in arcs},
        total_demand=traffic.total_demand,
        solver="garg-koenemann",
        exact=False,
        dropped_pairs=tuple(dropped),
        dropped_demand=dropped_demand,
    )


def _shortest_path_arcs(
    adjacency: dict, lengths: list, source, target
) -> "list[int] | None":
    """Dijkstra under the current arc lengths; returns arc indices."""
    dist = {source: 0.0}
    back: dict = {}
    heap = [(0.0, 0, source)]
    counter = 1
    visited: set = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            break
        for neighbor, arc in adjacency[node]:
            nd = d + lengths[arc]
            if nd < dist.get(neighbor, math.inf):
                dist[neighbor] = nd
                back[neighbor] = (node, arc)
                heapq.heappush(heap, (nd, counter, neighbor))
                counter += 1
    if target not in visited:
        return None
    path_arcs: list[int] = []
    node = target
    while node != source:
        prev, arc = back[node]
        path_arcs.append(arc)
        node = prev
    path_arcs.reverse()
    return path_arcs
