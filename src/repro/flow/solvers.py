"""Uniform throughput-solver protocol and string-keyed backend registry.

Every flow engine in :mod:`repro.flow` answers the same question — "what
concurrent throughput does this topology sustain under this traffic
matrix?" — but historically each was imported and called by name. This
module puts them behind one shape so callers (search objectives, the
scenario pipeline, the CLI) select a backend by string key and pass
options uniformly:

>>> result = solve_throughput(topo, traffic, solver="path_lp", k=8)

Canonical backend keys are ``edge_lp`` (exact arc LP), ``path_lp``
(k-shortest-path LP), ``approx`` (Garg–Könemann), ``ecmp`` (fluid ECMP),
and the scalable estimators of :mod:`repro.estimate` (``estimate_bound``,
``estimate_cut``, ``estimate_spectral``, ``estimate_sampled_lp`` —
flagged ``estimate=True`` on their :class:`SolverBackend` entries); the
legacy hyphenated labels (``edge-lp``, ``garg-koenemann``, ...) are
accepted as aliases. New backends register via :func:`register_solver`.

:class:`SolverConfig` captures a backend choice *plus its options* as an
immutable, hashable, JSON-serializable value — the unit the result cache
keys on and the sweep grid enumerates over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol, runtime_checkable

from repro.exceptions import FlowError
from repro.flow.approx import garg_koenemann_throughput
from repro.flow.ecmp import ecmp_throughput
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.path_lp import max_concurrent_flow_paths
from repro.flow.result import ThroughputResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix


@runtime_checkable
class ThroughputSolver(Protocol):
    """Anything callable as ``solver(topo, traffic, **options) -> result``."""

    def __call__(
        self, topo: Topology, traffic: TrafficMatrix, **options
    ) -> ThroughputResult: ...


@dataclass(frozen=True)
class SolverBackend:
    """One registered flow engine.

    ``exact`` mirrors :attr:`ThroughputResult.exact` for the backend's
    default options: whether it returns the true optimum rather than a
    lower bound. ``estimate`` marks backends whose output is neither an
    optimum nor a guaranteed lower bound and should be read against a
    calibrated error band — the differential test matrix keys its
    assertions off these two flags, so future backends are auto-enrolled
    by registering with the right combination. ``simulation`` marks the
    routing-fidelity backends of :mod:`repro.fidelity`, which measure a
    concrete routing mechanism instead of an optimal routing: their
    results carry a mechanism gap by design, and the fidelity
    differential gate additionally checks them against per-family
    calibrated bands.
    """

    name: str
    fn: Callable[..., ThroughputResult]
    description: str = ""
    exact: bool = True
    aliases: tuple = ()
    estimate: bool = False
    simulation: bool = False


_REGISTRY: dict[str, SolverBackend] = {}
_ALIASES: dict[str, str] = {}


def normalize_solver_name(name: str) -> str:
    """Resolve a user-facing solver name to its canonical registry key.

    Case-insensitive; hyphens and underscores are interchangeable; legacy
    engine labels map to their canonical backend.
    """
    if not isinstance(name, str):
        raise FlowError(f"solver name must be a string, got {type(name).__name__}")
    key = name.strip().lower().replace("-", "_")
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        known = ", ".join(available_solvers())
        raise FlowError(f"unknown solver {name!r}; known solvers: {known}")
    return key


def register_solver(
    name: str,
    fn: Callable[..., ThroughputResult],
    description: str = "",
    exact: bool = True,
    aliases: "tuple | list" = (),
    estimate: bool = False,
    simulation: bool = False,
) -> SolverBackend:
    """Register a throughput backend under a canonical key.

    Existing keys (and aliases) cannot be overwritten — raise instead of
    silently shadowing a built-in.
    """
    key = name.strip().lower().replace("-", "_")
    if key in _REGISTRY or key in _ALIASES:
        raise FlowError(f"solver {name!r} is already registered")
    backend = SolverBackend(
        name=key,
        fn=fn,
        description=description,
        exact=exact,
        aliases=tuple(aliases),
        estimate=estimate,
        simulation=simulation,
    )
    _REGISTRY[key] = backend
    for alias in backend.aliases:
        alias_key = alias.strip().lower().replace("-", "_")
        if alias_key == key:
            # Hyphen/underscore variants already resolve via normalization;
            # the alias is kept only for display in available_solvers().
            continue
        if alias_key in _REGISTRY or alias_key in _ALIASES:
            raise FlowError(f"solver alias {alias!r} is already registered")
        _ALIASES[alias_key] = key
    return backend


def available_solvers(include_aliases: bool = False) -> list[str]:
    """Sorted canonical solver keys (optionally plus accepted aliases)."""
    names = set(_REGISTRY)
    if include_aliases:
        for key, backend in _REGISTRY.items():
            names.update(backend.aliases)
    return sorted(names)


def get_solver(name: str) -> SolverBackend:
    """Look up a backend by canonical name or alias."""
    return _REGISTRY[normalize_solver_name(name)]


def solve_throughput(
    topo: Topology,
    traffic: TrafficMatrix,
    solver: str = "edge_lp",
    **options,
) -> ThroughputResult:
    """Solve max concurrent flow with a named backend.

    ``options`` are forwarded to the engine (e.g. ``k=8`` for
    ``path_lp``, ``epsilon=0.1`` for ``approx``).
    """
    return get_solver(solver).fn(topo, traffic, **options)


register_solver(
    "edge_lp",
    max_concurrent_flow,
    description="exact arc-based LP (scipy HiGHS), commodities by source",
    exact=True,
    aliases=("edge-lp",),
)
register_solver(
    "path_lp",
    max_concurrent_flow_paths,
    description="LP over k-shortest path sets (fast lower bound)",
    exact=False,
    aliases=("path-lp",),
)
register_solver(
    "approx",
    garg_koenemann_throughput,
    description="Garg-Koenemann (1-eps) combinatorial approximation",
    exact=False,
    aliases=("garg-koenemann", "gk"),
)
register_solver(
    "ecmp",
    ecmp_throughput,
    description="fluid ECMP over equal-cost shortest paths",
    exact=False,
)


@dataclass(frozen=True)
class SolverConfig:
    """A backend choice plus its options, as a hashable value object.

    ``options`` is stored as a sorted tuple of ``(key, value)`` pairs so
    equal configurations compare (and hash) equal regardless of the keyword
    order they were built with. List values (e.g. an ``error_band`` read
    back from a JSON grid file) are normalized to tuples so the config
    stays hashable and JSON round trips compare equal.
    """

    name: str
    options: tuple = field(default=())

    def __post_init__(self) -> None:
        canonical = normalize_solver_name(self.name)
        object.__setattr__(self, "name", canonical)
        if isinstance(self.options, Mapping):
            items = self.options.items()
        else:
            items = tuple(self.options)
        object.__setattr__(
            self,
            "options",
            tuple(
                sorted(
                    (str(k), tuple(v) if isinstance(v, list) else v)
                    for k, v in items
                )
            ),
        )

    @classmethod
    def make(cls, name: str, **options) -> "SolverConfig":
        """Build a config from keyword options."""
        return cls(name=name, options=tuple(options.items()))

    def options_dict(self) -> dict:
        return dict(self.options)

    def solve(self, topo: Topology, traffic: TrafficMatrix) -> ThroughputResult:
        """Run the configured backend."""
        return solve_throughput(topo, traffic, self.name, **self.options_dict())

    def label(self) -> str:
        """Human-readable label, e.g. ``path_lp(k=8)``."""
        if not self.options:
            return self.name
        inner = ", ".join(f"{k}={v!r}" for k, v in self.options)
        return f"{self.name}({inner})"

    def to_dict(self) -> dict:
        return {"name": self.name, "options": self.options_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SolverConfig":
        return cls.make(payload["name"], **dict(payload.get("options") or {}))


# Estimator backends live in repro.estimate (imported last: the estimators
# depend on flow.result/flow.reachability but never on this module, while
# repro.estimate.calibrate reads this module's registry lazily — keeping
# this import below every definition breaks the remaining cycle risk).
from repro.estimate.bound import estimate_bound  # noqa: E402
from repro.estimate.cut import estimate_cut  # noqa: E402
from repro.estimate.sampled_lp import estimate_sampled_lp  # noqa: E402
from repro.estimate.spectral import estimate_spectral  # noqa: E402

register_solver(
    "estimate_bound",
    estimate_bound,
    description="capacity-charging ASPL bound estimate (sparse BFS, N=10k)",
    exact=False,
    estimate=True,
)
register_solver(
    "estimate_cut",
    estimate_cut,
    description="min over sparse sampled cuts (Fiedler sweep + random + ToR)",
    exact=False,
    estimate=True,
)
register_solver(
    "estimate_spectral",
    estimate_spectral,
    description="algebraic-connectivity expansion estimate (one eigensolve)",
    exact=False,
    estimate=True,
)
register_solver(
    "estimate_sampled_lp",
    estimate_sampled_lp,
    description="exact LP on a scaled demand sample (mid-scale)",
    exact=False,
    estimate=True,
)

# Routing-fidelity backends live in repro.fidelity and follow the same
# bottom-import rule as the estimators: they depend on flow.result and
# flow.reachability but import this module only lazily (fingerprinting),
# so importing them after every definition keeps the cycle broken.
from repro.fidelity.adapter import sim_packet  # noqa: E402
from repro.fidelity.solvers import sim_ecmp, sim_mptcp  # noqa: E402

register_solver(
    "sim_ecmp",
    sim_ecmp,
    description="fluid simulation of hash-split ECMP over k equal-cost paths",
    exact=False,
    aliases=("sim-ecmp",),
    simulation=True,
)
register_solver(
    "sim_mptcp",
    sim_mptcp,
    description="fluid simulation of MPTCP with k uncoupled subflows",
    exact=False,
    aliases=("sim-mptcp",),
    simulation=True,
)
register_solver(
    "sim_packet",
    sim_packet,
    description="packet-level simulation (TCP dynamics; calibrated estimate)",
    exact=False,
    aliases=("sim-packet",),
    estimate=True,
    simulation=True,
)
