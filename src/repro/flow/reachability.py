"""Unreachable-demand policy shared by every flow backend.

On an intact fabric every demand pair has a path and the policy is moot.
On a degraded fabric (see :mod:`repro.resilience`) a demand can become
unroutable two ways: its endpoint switch failed (it is no longer in the
topology), or the fabric partitioned and the endpoints sit in different
components. Every solver accepts an ``unreachable`` keyword choosing what
to do about it:

- ``"error"`` (default): raise :class:`~repro.exceptions.FlowError` — the
  historical behavior, appropriate when a partition indicates a bug in
  the experiment rather than a scenario under study;
- ``"drop"``: remove the unroutable pairs, solve concurrent flow over the
  *served* demand set, and report the dropped pairs (and their demand
  units) on the :class:`~repro.flow.result.ThroughputResult`.

Note that under ``"drop"`` the reported throughput concerns only the
served pairs — dropping a demand can *raise* the concurrent rate of the
survivors. Compare ``served_fraction`` alongside ``throughput`` when
reading degraded-fabric results.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import FlowError
from repro.flow.result import ThroughputResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix

#: Accepted values for the solvers' ``unreachable`` keyword.
UNREACHABLE_POLICIES = ("error", "drop")


def _component_labels(topo: Topology) -> dict:
    """Switch -> connected-component id."""
    return {
        node: component
        for component, members in enumerate(nx.connected_components(topo.graph))
        for node in members
    }


def split_unreachable_demands(
    topo: Topology, traffic: TrafficMatrix
) -> "tuple[TrafficMatrix, tuple]":
    """Partition ``traffic`` into (served matrix, dropped pair tuple).

    A pair is dropped when either endpoint is missing from ``topo`` or the
    endpoints lie in different connected components. Dropped pairs are
    returned in canonical (repr-sorted) order. Flow-count bookkeeping
    (``num_flows``/``num_local_flows``) describes the *offered* workload
    and is kept unchanged on the served matrix.
    """
    labels = _component_labels(topo)
    served: dict = {}
    dropped: list = []
    for (u, v), units in traffic.demands.items():
        cu = labels.get(u)
        cv = labels.get(v)
        if cu is None or cv is None or cu != cv:
            dropped.append((u, v))
        else:
            served[(u, v)] = units
    if not dropped:
        return traffic, ()
    dropped.sort(key=lambda pair: (repr(pair[0]), repr(pair[1])))
    served_tm = TrafficMatrix(
        name=f"{traffic.name}|served",
        demands=served,
        num_flows=traffic.num_flows,
        num_local_flows=traffic.num_local_flows,
        server_pairs=traffic.server_pairs,
    )
    return served_tm, tuple(dropped)


def resolve_unreachable(
    topo: Topology, traffic: TrafficMatrix, unreachable: str
) -> "tuple[TrafficMatrix, tuple, float]":
    """Apply the unreachable policy before a solve.

    Returns ``(traffic to solve, dropped pairs, dropped demand units)``.
    Under ``"error"`` the first unroutable pair raises; under ``"drop"``
    the served matrix may be empty — callers then short-circuit to
    :func:`unserved_result` instead of invoking the engine.
    """
    if unreachable not in UNREACHABLE_POLICIES:
        known = ", ".join(UNREACHABLE_POLICIES)
        raise FlowError(
            f"unknown unreachable policy {unreachable!r}; known: {known}"
        )
    served, dropped = split_unreachable_demands(topo, traffic)
    if dropped and unreachable == "error":
        u, v = dropped[0]
        for endpoint in (u, v):
            if not topo.has_switch(endpoint):
                raise FlowError(
                    f"demand endpoint {endpoint!r} is not a switch in "
                    f"{topo.name!r}; pass unreachable='drop' to solve over "
                    "the served demand set"
                )
        raise FlowError(
            f"demand {u!r}->{v!r} has no path in {topo.name!r} "
            f"({len(dropped)} unroutable pair(s)); pass unreachable='drop' "
            "to solve over the served demand set"
        )
    dropped_demand = float(
        sum(traffic.demands[pair] for pair in dropped)
    )
    return served, dropped, dropped_demand


def unserved_result(
    topo: Topology,
    solver: str,
    dropped: tuple,
    dropped_demand: float,
    exact: bool = True,
) -> ThroughputResult:
    """Zero-throughput result for a fabric that serves no demand at all.

    Used by every backend when ``unreachable="drop"`` leaves the served
    set empty (e.g. the traffic sources all sat on failed switches):
    the solve is vacuous, throughput over the served set is reported as
    0.0, and the full demand shows up as dropped.
    """
    caps = {(u, v): float(cap) for u, v, cap in topo.arcs()}
    return ThroughputResult(
        throughput=0.0,
        arc_flows={},
        arc_capacities=caps,
        total_demand=0.0,
        solver=solver,
        exact=exact,
        dropped_pairs=tuple(dropped),
        dropped_demand=dropped_demand,
    )
