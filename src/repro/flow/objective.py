"""Throughput evaluators packaged for the topology search engine.

The search subsystem treats an objective as "a number to maximize for a
topology". These adapters wrap the flow engines behind that one-argument
shape, fixing the solver, its knobs, and the traffic workload up front so
search code never needs solver-specific plumbing (and so the resulting
callables pickle cleanly into worker processes).
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import FlowError
from repro.flow.approx import garg_koenemann_throughput
from repro.flow.ecmp import ecmp_throughput
from repro.flow.edge_lp import max_concurrent_flow
from repro.flow.path_lp import max_concurrent_flow_paths
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix

_SOLVERS: dict[str, Callable] = {
    "edge-lp": max_concurrent_flow,
    "path-lp": max_concurrent_flow_paths,
    "garg-koenemann": garg_koenemann_throughput,
    "ecmp": ecmp_throughput,
}


def available_throughput_solvers() -> list[str]:
    """Solver names accepted by :func:`throughput_evaluator`."""
    return sorted(_SOLVERS)


def throughput_evaluator(
    solver: str = "edge-lp", **solver_kwargs
) -> Callable[[Topology, TrafficMatrix], float]:
    """Return ``(topology, traffic) -> throughput`` for a named flow engine.

    ``solver_kwargs`` are forwarded to the engine on every call (e.g.
    ``k=8`` for ``"path-lp"``, ``epsilon=0.1`` for ``"garg-koenemann"``).
    """
    try:
        engine = _SOLVERS[solver]
    except KeyError:
        known = ", ".join(available_throughput_solvers())
        raise FlowError(f"unknown solver {solver!r}; known solvers: {known}")
    return _ThroughputEvaluator(solver, engine, solver_kwargs)


class _ThroughputEvaluator:
    """Picklable closure over one flow engine and its keyword arguments."""

    def __init__(self, name: str, engine: Callable, kwargs: dict) -> None:
        self.name = name
        self._engine = engine
        self._kwargs = dict(kwargs)

    def __call__(self, topo: Topology, traffic: TrafficMatrix) -> float:
        return float(self._engine(topo, traffic, **self._kwargs).throughput)

    def __repr__(self) -> str:
        return f"throughput_evaluator({self.name!r}, **{self._kwargs!r})"
