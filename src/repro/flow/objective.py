"""Throughput evaluators packaged for the topology search engine.

The search subsystem treats an objective as "a number to maximize for a
topology". These adapters wrap the solver registry
(:mod:`repro.flow.solvers`) behind that one-argument shape, fixing the
backend, its knobs, and the traffic workload up front so search code never
needs solver-specific plumbing (and so the resulting callables pickle
cleanly into worker processes).
"""

from __future__ import annotations

from typing import Callable

from repro.flow.solvers import (
    available_solvers,
    normalize_solver_name,
    solve_throughput,
)
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix


def available_throughput_solvers() -> list[str]:
    """Solver names accepted by :func:`throughput_evaluator`.

    Includes both the canonical registry keys (``edge_lp``, ...) and the
    legacy hyphenated labels (``edge-lp``, ``garg-koenemann``, ...).
    """
    return available_solvers(include_aliases=True)


def throughput_evaluator(
    solver: str = "edge_lp", **solver_kwargs
) -> Callable[[Topology, TrafficMatrix], float]:
    """Return ``(topology, traffic) -> throughput`` for a named flow engine.

    ``solver_kwargs`` are forwarded to the engine on every call (e.g.
    ``k=8`` for ``"path_lp"``, ``epsilon=0.1`` for ``"approx"``).
    """
    return _ThroughputEvaluator(normalize_solver_name(solver), solver_kwargs)


class _ThroughputEvaluator:
    """Picklable closure over one registry backend and its keyword arguments."""

    def __init__(self, name: str, kwargs: dict) -> None:
        self.name = name
        self._kwargs = dict(kwargs)

    def __call__(self, topo: Topology, traffic: TrafficMatrix) -> float:
        result = solve_throughput(topo, traffic, self.name, **self._kwargs)
        return float(result.throughput)

    def __repr__(self) -> str:
        return f"throughput_evaluator({self.name!r}, **{self._kwargs!r})"
