"""Decompose an arc-flow solution into explicit path flows.

LP solvers return per-arc totals; many analyses (per-flow stretch
histograms, route dumps for the packet simulator, audit trails) need
path-level flows instead. The classical flow-decomposition theorem says any
feasible flow splits into at most ``|E|`` path/cycle flows; this module
implements the greedy peel-off for the single-source commodities produced
by :func:`repro.flow.edge_lp.max_concurrent_flow`.

Because the public solvers only expose commodity-summed arc flows, the
decomposition here re-solves per-source subproblems when exact per-commodity
paths are required; for the common case — understanding where capacity goes
— the aggregate decomposition (source-agnostic) is what's offered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FlowError
from repro.flow.result import ThroughputResult

#: Flows below this are treated as numerical noise and dropped.
EPSILON = 1e-9


@dataclass(frozen=True)
class PathFlow:
    """One routed path and the amount of flow it carries."""

    nodes: tuple
    amount: float

    @property
    def hops(self) -> int:
        return len(self.nodes) - 1


def decompose_commodity_flows(
    result: ThroughputResult,
    max_paths_per_commodity: int = 50_000,
) -> dict:
    """Exact per-commodity path decomposition of an LP result.

    Requires the result to carry per-commodity flows (solve with
    ``max_concurrent_flow(..., keep_commodity_flows=True)``). Each
    commodity is single-source, so its net supplies/demands identify real
    endpoints and the peel recovers genuine source-to-destination paths.

    Returns
    -------
    dict
        Mapping source switch -> list of :class:`PathFlow`. Cyclic
        residuals (possible in degenerate LP vertices) are discarded; they
        carry no delivered traffic.
    """
    if result.commodity_flows is None:
        raise FlowError(
            "result has no per-commodity flows; re-solve with "
            "keep_commodity_flows=True"
        )
    decomposed: dict = {}
    for source, flows in result.commodity_flows.items():
        paths, _ = _decompose_flows(
            dict(flows), sources={source}, max_paths=max_paths_per_commodity
        )
        decomposed[source] = paths
    return decomposed


def decompose_arc_flows(
    result: ThroughputResult,
    sources: "set | None" = None,
    max_paths: int = 100_000,
) -> tuple[list[PathFlow], dict]:
    """Greedy path peel-off of a result's aggregate arc flows.

    Repeatedly walks from a node with positive net outflow along positive
    arcs to a node with positive net inflow, peeling the bottleneck amount;
    leftover circulation (cycles) is peeled separately and reported as
    residual.

    .. warning::
       Aggregate multi-commodity flows superpose many source-sink pairs;
       where supplies and demands cancel at a node, the aggregate flow is
       locally a circulation and no s-t path is recoverable from it. Use
       :func:`decompose_commodity_flows` for exact per-source paths; this
       function is for single-commodity flows (or deliberately coarse
       "where does capacity go" summaries).

    Parameters
    ----------
    sources:
        Optional restriction of walk starting points (e.g. the traffic
        matrix's source switches). Default: any node with net outflow.

    Returns
    -------
    (paths, residual)
        ``paths`` is the list of peeled path flows; ``residual`` maps arcs
        to any remaining (cyclic or cancelled) flow.
    """
    flows = {
        arc: value
        for arc, value in result.arc_flows.items()
        if value > EPSILON
    }
    return _decompose_flows(flows, sources=sources, max_paths=max_paths)


def _decompose_flows(
    flows: dict,
    sources: "set | None",
    max_paths: int,
) -> tuple[list[PathFlow], dict]:
    net: dict = {}
    adjacency: dict = {}
    for (u, v), value in flows.items():
        net[u] = net.get(u, 0.0) + value
        net[v] = net.get(v, 0.0) - value
        adjacency.setdefault(u, []).append(v)

    def is_source(node) -> bool:
        if net.get(node, 0.0) <= EPSILON:
            return False
        return sources is None or node in sources

    paths: list[PathFlow] = []
    while len(paths) < max_paths:
        start = next((node for node in net if is_source(node)), None)
        if start is None:
            break
        # Walk along positive arcs until reaching a net sink (or a repeat,
        # which indicates a cycle we skip here and peel later).
        path = [start]
        visited = {start}
        node = start
        while net.get(node, 0.0) >= -EPSILON or node == start:
            next_node = None
            for candidate in adjacency.get(node, []):
                if flows.get((node, candidate), 0.0) > EPSILON:
                    next_node = candidate
                    break
            if next_node is None:
                break
            if next_node in visited:
                # Cycle: peel it immediately so the walk can't loop forever.
                cycle_start = path.index(next_node)
                cycle = path[cycle_start:] + [next_node]
                _peel(flows, cycle, adjacency)
                path = path[: cycle_start + 1]
                visited = set(path)
                node = path[-1]
                continue
            path.append(next_node)
            visited.add(next_node)
            node = next_node
            if net.get(node, 0.0) < -EPSILON:
                break
        if len(path) < 2 or net.get(path[-1], 0.0) >= -EPSILON:
            # Could not reach a sink from this source: numerical leftovers.
            net[start] = 0.0
            continue
        amount = min(
            flows[(a, b)] for a, b in zip(path[:-1], path[1:])
        )
        amount = min(amount, net[path[0]], -net[path[-1]])
        if amount <= EPSILON:
            net[start] = 0.0
            continue
        _peel(flows, path, adjacency, amount)
        net[path[0]] -= amount
        net[path[-1]] += amount
        paths.append(PathFlow(nodes=tuple(path), amount=amount))
    residual = {arc: value for arc, value in flows.items() if value > EPSILON}
    return paths, residual


def _peel(flows: dict, path: list, adjacency: dict, amount: "float | None" = None) -> None:
    """Subtract ``amount`` (default: the bottleneck) along a node path."""
    arcs = list(zip(path[:-1], path[1:]))
    if amount is None:
        amount = min(flows[arc] for arc in arcs)
    for arc in arcs:
        flows[arc] -= amount
        if flows[arc] <= EPSILON:
            flows.pop(arc, None)


def path_length_distribution(paths: list[PathFlow]) -> dict[int, float]:
    """Flow volume carried at each hop count."""
    if not paths:
        raise FlowError("no paths to summarize")
    histogram: dict[int, float] = {}
    for path in paths:
        histogram[path.hops] = histogram.get(path.hops, 0.0) + path.amount
    return dict(sorted(histogram.items()))


def mean_path_length(paths: list[PathFlow]) -> float:
    """Flow-weighted mean hop count of a decomposition."""
    if not paths:
        raise FlowError("no paths to summarize")
    volume = sum(p.amount for p in paths)
    if volume <= 0:
        raise FlowError("decomposition carries no flow")
    return sum(p.amount * p.hops for p in paths) / volume
