"""Exact max concurrent flow via an arc-based linear program.

This replaces the paper's CPLEX runs with scipy's HiGHS solver. The model is
the standard maximum concurrent multi-commodity flow LP:

    maximize    t
    subject to  flow conservation per commodity group and node,
                sum of flows on every arc <= its capacity,
                each pair (u, v) with demand d receives t * d.

Commodities are *aggregated by source switch*: for concurrent flow with a
shared scale factor ``t``, all demands out of one source can share a flow
variable per arc, which shrinks the LP by a factor of ~#switches relative
to per-pair commodities without changing the optimum. The ablation
benchmark ``bench_ablation_aggregation`` verifies the equivalence
empirically; tests verify it exactly on small instances.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import FlowError, SolverError
from repro.flow.reachability import resolve_unreachable, unserved_result
from repro.flow.result import ThroughputResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix


def max_concurrent_flow(
    topo: Topology,
    traffic: TrafficMatrix,
    aggregate_by_source: bool = True,
    keep_commodity_flows: bool = False,
    unreachable: str = "error",
) -> ThroughputResult:
    """Solve the exact max concurrent flow problem.

    Parameters
    ----------
    topo:
        The network. Every demand endpoint must be a switch in it.
    traffic:
        Switch-level demand matrix. Must contain at least one network
        demand.
    aggregate_by_source:
        Use one commodity per source switch (default, recommended). Setting
        ``False`` builds one commodity per demand pair — exponentially
        larger input, same optimum; retained for the aggregation ablation.
    keep_commodity_flows:
        Also record per-commodity arc flows on the result (keyed by source
        switch). Required by exact path decomposition
        (:mod:`repro.flow.path_decomposition`); costs O(commodities x arcs)
        memory.
    unreachable:
        Policy for demands with no path (degraded fabrics): ``"error"``
        raises, ``"drop"`` solves over the served demand set and records
        the dropped pairs on the result. See
        :mod:`repro.flow.reachability`.

    Returns
    -------
    ThroughputResult
        With per-arc flows summed over commodities; ``exact=True``.
    """
    traffic, dropped, dropped_demand = resolve_unreachable(
        topo, traffic, unreachable
    )
    if dropped and not traffic.demands:
        return unserved_result(
            topo, "edge-lp", dropped, dropped_demand, exact=True
        )
    traffic.validate_against(topo.switches)
    if not traffic.demands:
        raise FlowError("traffic matrix has no network demands")

    arcs = topo.arcs()
    if not arcs:
        raise FlowError("topology has no links")
    if aggregate_by_source:
        commodities = _aggregate_by_source(traffic)
    else:
        commodities = [
            (u, {v: units}) for (u, v), units in sorted(
                traffic.demands.items(), key=lambda kv: (repr(kv[0][0]), repr(kv[0][1]))
            )
        ]
    result = _solve(
        topo,
        arcs,
        commodities,
        traffic,
        solver_label="edge-lp",
        keep_commodity_flows=keep_commodity_flows,
    )
    result.dropped_pairs = tuple(dropped)
    result.dropped_demand = dropped_demand
    return result


def _aggregate_by_source(traffic: TrafficMatrix) -> list[tuple]:
    """Group demands into one commodity per source switch."""
    by_source: dict = {}
    for (u, v), units in traffic.demands.items():
        by_source.setdefault(u, {})[v] = units
    return sorted(by_source.items(), key=lambda kv: repr(kv[0]))


def _solve(
    topo: Topology,
    arcs: list,
    commodities: list,
    traffic: TrafficMatrix,
    solver_label: str,
    keep_commodity_flows: bool = False,
) -> ThroughputResult:
    nodes = topo.switches
    node_index = {node: i for i, node in enumerate(nodes)}
    num_nodes = len(nodes)
    num_arcs = len(arcs)
    num_commodities = len(commodities)
    num_vars = num_commodities * num_arcs + 1  # + throughput variable t
    t_col = num_vars - 1

    arc_tail = np.fromiter(
        (node_index[u] for u, _, _ in arcs), dtype=np.int64, count=num_arcs
    )
    arc_head = np.fromiter(
        (node_index[v] for _, v, _ in arcs), dtype=np.int64, count=num_arcs
    )
    capacities = np.fromiter(
        (cap for _, _, cap in arcs), dtype=np.float64, count=num_arcs
    )

    # Equality rows: conservation for every commodity at every node except
    # the commodity's source (the source row is implied by the others).
    eq_rows: list[np.ndarray] = []
    eq_cols: list[np.ndarray] = []
    eq_vals: list[np.ndarray] = []
    row_base = 0
    num_eq_rows = num_commodities * (num_nodes - 1)
    for k, (source, dests) in enumerate(commodities):
        src_idx = node_index[source]
        # Map node -> conservation row id for this commodity (source skipped).
        node_rows = np.empty(num_nodes, dtype=np.int64)
        row = row_base
        for i in range(num_nodes):
            if i == src_idx:
                node_rows[i] = -1
            else:
                node_rows[i] = row
                row += 1
        col_base = k * num_arcs
        arc_cols = np.arange(col_base, col_base + num_arcs, dtype=np.int64)

        head_rows = node_rows[arc_head]
        mask = head_rows >= 0
        eq_rows.append(head_rows[mask])
        eq_cols.append(arc_cols[mask])
        eq_vals.append(np.ones(int(mask.sum())))

        tail_rows = node_rows[arc_tail]
        mask = tail_rows >= 0
        eq_rows.append(tail_rows[mask])
        eq_cols.append(arc_cols[mask])
        eq_vals.append(-np.ones(int(mask.sum())))

        # Demand terms: inflow - outflow - t * demand(v) = 0 at each dest.
        dest_rows = np.fromiter(
            (node_rows[node_index[v]] for v in dests), dtype=np.int64, count=len(dests)
        )
        if np.any(dest_rows < 0):
            raise FlowError(f"commodity {source!r} demands traffic to itself")
        eq_rows.append(dest_rows)
        eq_cols.append(np.full(len(dests), t_col, dtype=np.int64))
        eq_vals.append(
            -np.fromiter(dests.values(), dtype=np.float64, count=len(dests))
        )
        row_base += num_nodes - 1

    a_eq = sparse.coo_matrix(
        (
            np.concatenate(eq_vals),
            (np.concatenate(eq_rows), np.concatenate(eq_cols)),
        ),
        shape=(num_eq_rows, num_vars),
    ).tocsr()
    b_eq = np.zeros(num_eq_rows)

    # Capacity rows: sum over commodities of flow on arc a <= capacity(a).
    ub_rows = np.tile(np.arange(num_arcs, dtype=np.int64), num_commodities)
    ub_cols = np.arange(num_commodities * num_arcs, dtype=np.int64)
    a_ub = sparse.coo_matrix(
        (np.ones(num_commodities * num_arcs), (ub_rows, ub_cols)),
        shape=(num_arcs, num_vars),
    ).tocsr()
    b_ub = capacities

    objective = np.zeros(num_vars)
    objective[t_col] = -1.0  # linprog minimizes

    outcome = linprog(
        objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs",
    )
    if not outcome.success:
        raise SolverError(
            f"HiGHS failed on {topo.name!r} / {traffic.name!r}: {outcome.message}"
        )

    solution = np.asarray(outcome.x)
    throughput = float(solution[t_col])
    per_commodity = solution[:t_col].reshape(num_commodities, num_arcs)
    per_arc = per_commodity.sum(axis=0)
    arc_flows = {
        (arcs[a][0], arcs[a][1]): float(per_arc[a]) for a in range(num_arcs)
    }
    arc_caps = {(u, v): float(cap) for u, v, cap in arcs}
    commodity_flows = None
    if keep_commodity_flows:
        commodity_flows = {}
        for k, (source, _) in enumerate(commodities):
            flows_k = {
                (arcs[a][0], arcs[a][1]): float(per_commodity[k, a])
                for a in range(num_arcs)
                if per_commodity[k, a] > 1e-12
            }
            # Per-pair commodities can repeat a source; merge their flows.
            if source in commodity_flows:
                merged = commodity_flows[source]
                for arc, value in flows_k.items():
                    merged[arc] = merged.get(arc, 0.0) + value
            else:
                commodity_flows[source] = flows_k
    return ThroughputResult(
        throughput=throughput,
        arc_flows=arc_flows,
        arc_capacities=arc_caps,
        total_demand=traffic.total_demand,
        solver=solver_label,
        exact=True,
        commodity_flows=commodity_flows,
    )
