"""Exact max concurrent flow via an arc-based linear program.

This replaces the paper's CPLEX runs with scipy's HiGHS solver. The model is
the standard maximum concurrent multi-commodity flow LP:

    maximize    t
    subject to  flow conservation per commodity group and node,
                sum of flows on every arc <= its capacity,
                each pair (u, v) with demand d receives t * d.

Commodities are *aggregated by source switch*: for concurrent flow with a
shared scale factor ``t``, all demands out of one source can share a flow
variable per arc, which shrinks the LP by a factor of ~#switches relative
to per-pair commodities without changing the optimum. The ablation
benchmark ``bench_ablation_aggregation`` verifies the equivalence
empirically; tests verify it exactly on small instances.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import FlowError, SolverError
from repro.flow.reachability import resolve_unreachable, unserved_result
from repro.flow.result import ThroughputResult
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix


def max_concurrent_flow(
    topo: Topology,
    traffic: TrafficMatrix,
    aggregate_by_source: bool = True,
    keep_commodity_flows: bool = False,
    unreachable: str = "error",
    method: str = "highs",
) -> ThroughputResult:
    """Solve the exact max concurrent flow problem.

    Parameters
    ----------
    topo:
        The network. Every demand endpoint must be a switch in it.
    traffic:
        Switch-level demand matrix. Must contain at least one network
        demand.
    aggregate_by_source:
        Use one commodity per source switch (default, recommended). Setting
        ``False`` builds one commodity per demand pair — exponentially
        larger input, same optimum; retained for the aggregation ablation.
    keep_commodity_flows:
        Also record per-commodity arc flows on the result (keyed by source
        switch). Required by exact path decomposition
        (:mod:`repro.flow.path_decomposition`); costs O(commodities x arcs)
        memory.
    unreachable:
        Policy for demands with no path (degraded fabrics): ``"error"``
        raises, ``"drop"`` solves over the served demand set and records
        the dropped pairs on the result. See
        :mod:`repro.flow.reachability`.
    method:
        HiGHS algorithm passed to :func:`scipy.optimize.linprog`. The
        default ``"highs"`` (simplex) gives vertex solutions; on large
        instances ``"highs-ipm"`` (interior point with crossover) solves
        the same LP several times faster with optima agreeing to machine
        precision — the hot-path choice of :mod:`repro.flow.incremental`.

    Returns
    -------
    ThroughputResult
        With per-arc flows summed over commodities; ``exact=True``.
    """
    traffic, dropped, dropped_demand = resolve_unreachable(
        topo, traffic, unreachable
    )
    if dropped and not traffic.demands:
        return unserved_result(
            topo, "edge-lp", dropped, dropped_demand, exact=True
        )
    traffic.validate_against(topo.switches)
    if not traffic.demands:
        raise FlowError("traffic matrix has no network demands")

    arcs = topo.arcs()
    if not arcs:
        raise FlowError("topology has no links")
    if aggregate_by_source:
        commodities = _aggregate_by_source(traffic)
    else:
        commodities = [
            (u, {v: units}) for (u, v), units in sorted(
                traffic.demands.items(), key=lambda kv: (repr(kv[0][0]), repr(kv[0][1]))
            )
        ]
    result = _solve(
        topo,
        arcs,
        commodities,
        traffic,
        solver_label="edge-lp",
        keep_commodity_flows=keep_commodity_flows,
        method=method,
    )
    result.dropped_pairs = tuple(dropped)
    result.dropped_demand = dropped_demand
    return result


def _aggregate_by_source(traffic: TrafficMatrix) -> list[tuple]:
    """Group demands into one commodity per source switch."""
    by_source: dict = {}
    for (u, v), units in traffic.demands.items():
        by_source.setdefault(u, {})[v] = units
    return sorted(by_source.items(), key=lambda kv: repr(kv[0]))


def _solve(
    topo: Topology,
    arcs: list,
    commodities: list,
    traffic: TrafficMatrix,
    solver_label: str,
    keep_commodity_flows: bool = False,
    method: str = "highs",
) -> ThroughputResult:
    nodes = topo.switches
    node_index = {node: i for i, node in enumerate(nodes)}
    num_nodes = len(nodes)
    num_arcs = len(arcs)
    num_commodities = len(commodities)
    num_vars = num_commodities * num_arcs + 1  # + throughput variable t
    t_col = num_vars - 1

    arc_tail = np.fromiter(
        (node_index[u] for u, _, _ in arcs), dtype=np.int64, count=num_arcs
    )
    arc_head = np.fromiter(
        (node_index[v] for _, v, _ in arcs), dtype=np.int64, count=num_arcs
    )
    capacities = np.fromiter(
        (cap for _, _, cap in arcs), dtype=np.float64, count=num_arcs
    )

    # Equality rows: conservation for every commodity at every node except
    # the commodity's source (the source row is implied by the others).
    # Assembled as one vectorized COO batch over all commodities at once:
    # node_rows[k, i] maps node i to its conservation row for commodity k
    # (-1 at the skipped source row).
    num_eq_rows = num_commodities * (num_nodes - 1)
    src_idx = np.fromiter(
        (node_index[source] for source, _ in commodities),
        dtype=np.int64,
        count=num_commodities,
    )
    node_ids = np.arange(num_nodes, dtype=np.int64)
    row_base = (np.arange(num_commodities, dtype=np.int64) * (num_nodes - 1))[
        :, None
    ]
    node_rows = row_base + node_ids[None, :] - (node_ids[None, :] > src_idx[:, None])
    node_rows[np.arange(num_commodities), src_idx] = -1
    arc_cols = (
        np.arange(num_commodities, dtype=np.int64)[:, None] * num_arcs
        + np.arange(num_arcs, dtype=np.int64)[None, :]
    )

    head_rows = node_rows[:, arc_head]
    head_mask = head_rows >= 0
    tail_rows = node_rows[:, arc_tail]
    tail_mask = tail_rows >= 0

    # Demand terms: inflow - outflow - t * demand(v) = 0 at each dest.
    dest_commodity = np.fromiter(
        (k for k, (_, dests) in enumerate(commodities) for _ in dests),
        dtype=np.int64,
    )
    dest_nodes = np.fromiter(
        (node_index[v] for _, dests in commodities for v in dests),
        dtype=np.int64,
        count=len(dest_commodity),
    )
    dest_units = np.fromiter(
        (units for _, dests in commodities for units in dests.values()),
        dtype=np.float64,
        count=len(dest_commodity),
    )
    dest_rows = node_rows[dest_commodity, dest_nodes]
    if np.any(dest_rows < 0):
        bad = commodities[int(dest_commodity[int(np.argmin(dest_rows))])][0]
        raise FlowError(f"commodity {bad!r} demands traffic to itself")

    a_eq = sparse.coo_matrix(
        (
            np.concatenate(
                (
                    np.ones(int(head_mask.sum())),
                    -np.ones(int(tail_mask.sum())),
                    -dest_units,
                )
            ),
            (
                np.concatenate((head_rows[head_mask], tail_rows[tail_mask], dest_rows)),
                np.concatenate(
                    (
                        arc_cols[head_mask],
                        arc_cols[tail_mask],
                        np.full(len(dest_rows), t_col, dtype=np.int64),
                    )
                ),
            ),
        ),
        shape=(num_eq_rows, num_vars),
    ).tocsr()
    b_eq = np.zeros(num_eq_rows)

    # Capacity rows: sum over commodities of flow on arc a <= capacity(a).
    ub_rows = np.tile(np.arange(num_arcs, dtype=np.int64), num_commodities)
    ub_cols = np.arange(num_commodities * num_arcs, dtype=np.int64)
    a_ub = sparse.coo_matrix(
        (np.ones(num_commodities * num_arcs), (ub_rows, ub_cols)),
        shape=(num_arcs, num_vars),
    ).tocsr()
    b_ub = capacities

    objective = np.zeros(num_vars)
    objective[t_col] = -1.0  # linprog minimizes

    outcome = linprog(
        objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method=method,
    )
    if not outcome.success:
        raise SolverError(
            f"HiGHS failed on {topo.name!r} / {traffic.name!r}: {outcome.message}"
        )

    solution = np.asarray(outcome.x)
    throughput = float(solution[t_col])
    # Per-arc totals come from one vectorized reduction; the O(K x m)
    # per-commodity dict materialization below runs only when the caller
    # asked for it (exact path decomposition does, nothing else should).
    per_arc = solution[:t_col].reshape(num_commodities, num_arcs).sum(axis=0)
    arc_pairs = [(u, v) for u, v, _ in arcs]
    arc_flows = dict(zip(arc_pairs, map(float, per_arc)))
    arc_caps = {(u, v): float(cap) for u, v, cap in arcs}
    commodity_flows = None
    if keep_commodity_flows:
        per_commodity = solution[:t_col].reshape(num_commodities, num_arcs)
        commodity_flows = {}
        for k, (source, _) in enumerate(commodities):
            row = per_commodity[k]
            nonzero = np.nonzero(row > 1e-12)[0]
            flows_k = {arc_pairs[a]: float(row[a]) for a in nonzero}
            # Per-pair commodities can repeat a source; merge their flows.
            if source in commodity_flows:
                merged = commodity_flows[source]
                for arc, value in flows_k.items():
                    merged[arc] = merged.get(arc, 0.0) + value
            else:
                commodity_flows[source] = flows_k
    return ThroughputResult(
        throughput=throughput,
        arc_flows=arc_flows,
        arc_capacities=arc_caps,
        total_demand=traffic.total_demand,
        solver=solver_label,
        exact=True,
        commodity_flows=commodity_flows,
    )
