"""Result container shared by all flow engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.exceptions import FlowError


@dataclass
class ThroughputResult:
    """Outcome of a max concurrent flow computation.

    Attributes
    ----------
    throughput:
        The concurrent rate ``t``: every demand pair ``(u, v)`` with demand
        ``d`` receives ``t * d`` units. For unit server flows this is the
        paper's per-flow throughput.
    arc_flows:
        Mapping directed arc ``(u, v)`` -> total flow routed on it (summed
        over commodities).
    arc_capacities:
        Mapping directed arc ``(u, v)`` -> capacity.
    total_demand:
        Sum of demand units across pairs.
    solver:
        Engine label ("edge-lp", "path-lp", "garg-koenemann").
    exact:
        Whether ``throughput`` is the true optimum (False for restricted
        path sets and approximations, which give lower bounds).
    """

    throughput: float
    arc_flows: dict = field(default_factory=dict)
    arc_capacities: dict = field(default_factory=dict)
    total_demand: float = 0.0
    solver: str = "unknown"
    exact: bool = True
    #: Optional per-commodity arc flows: {source -> {arc -> flow}}. Only
    #: populated when the solver is asked to keep them (needed for exact
    #: path decomposition); ``None`` otherwise.
    commodity_flows: "dict | None" = None
    #: Demand pairs removed before the solve under ``unreachable="drop"``
    #: (endpoint failed or fabric partitioned); empty on intact fabrics.
    #: ``throughput`` and ``total_demand`` concern the served pairs only.
    dropped_pairs: tuple = ()
    #: Demand units carried by :attr:`dropped_pairs`.
    dropped_demand: float = 0.0
    #: Demand pairs whose enumerated path set hit the per-pair cap
    #: (``ecmp`` per-path mode); their loads are biased toward the
    #: enumerated subset. 0 everywhere else.
    truncated_pairs: int = 0
    #: True when ``throughput`` is a scalable *estimate* (see
    #: :mod:`repro.estimate`) rather than the value of an optimizing
    #: solve. Estimates usually carry no per-arc flow data.
    is_estimate: bool = False
    #: Calibrated multiplicative error band ``(lo, hi)`` for an estimate:
    #: the exact LP throughput is expected to satisfy
    #: ``throughput / hi <= exact <= throughput / lo`` (band fit by
    #: :mod:`repro.estimate.calibrate` on estimator-vs-exact pairs at
    #: small N). ``None`` when unknown or not an estimate.
    error_band: "tuple | None" = None

    @property
    def total_capacity(self) -> float:
        """Network capacity summed over directed arcs (the paper's ``C``)."""
        return float(sum(self.arc_capacities.values()))

    @property
    def total_flow_volume(self) -> float:
        """Flow-hops: total flow summed over directed arcs."""
        return float(sum(self.arc_flows.values()))

    @property
    def utilization(self) -> float:
        """Capacity-weighted average link utilization ``U``."""
        cap = self.total_capacity
        if cap <= 0:
            raise FlowError("result has no capacity; cannot compute utilization")
        return self.total_flow_volume / cap

    @property
    def delivered_rate(self) -> float:
        """Aggregate delivered traffic, ``t * total_demand``."""
        return self.throughput * self.total_demand

    @property
    def num_dropped_pairs(self) -> int:
        """Demand pairs dropped as unroutable before the solve."""
        return len(self.dropped_pairs)

    @property
    def offered_demand(self) -> float:
        """Demand units offered before any drop: served plus dropped."""
        return self.total_demand + self.dropped_demand

    @property
    def served_fraction(self) -> float:
        """Fraction of offered demand units the solve actually served.

        1.0 on intact fabrics; undefined (raises) when nothing was
        offered at all.
        """
        offered = self.offered_demand
        if offered <= 0:
            raise FlowError("no demand offered; served fraction undefined")
        return self.total_demand / offered

    @property
    def mean_routed_path_length(self) -> float:
        """Average hops per delivered unit, weighted by flow volume.

        Equal to flow-hops divided by delivered rate; undefined (raises) when
        nothing was delivered.
        """
        delivered = self.delivered_rate
        if delivered <= 0:
            raise FlowError("no traffic delivered; routed path length undefined")
        return self.total_flow_volume / delivered

    def arc_utilization(self, u, v) -> float:
        """Utilization of the directed arc ``(u, v)``."""
        key = (u, v)
        if key not in self.arc_capacities:
            raise FlowError(f"unknown arc {key!r}")
        cap = self.arc_capacities[key]
        return self.arc_flows.get(key, 0.0) / cap

    def link_utilization(self, u, v) -> float:
        """Utilization of the undirected link: max over the two directions."""
        return max(self.arc_utilization(u, v), self.arc_utilization(v, u))

    def utilizations(self) -> dict:
        """Mapping of every directed arc to its utilization."""
        return {
            arc: self.arc_flows.get(arc, 0.0) / cap
            for arc, cap in self.arc_capacities.items()
        }

    def max_utilization(self) -> float:
        """Highest per-arc utilization (1.0 at a saturated bottleneck)."""
        return max(self.utilizations().values(), default=0.0)

    def filtered_utilization(self, predicate: Callable[[object, object], bool]) -> float:
        """Capacity-weighted utilization over arcs where ``predicate(u, v)``.

        Used to localize bottlenecks, e.g. "average utilization of
        cross-cluster links".
        """
        flow = 0.0
        cap = 0.0
        for (u, v), capacity in self.arc_capacities.items():
            if predicate(u, v):
                cap += capacity
                flow += self.arc_flows.get((u, v), 0.0)
        if cap <= 0:
            raise FlowError("no arcs match the predicate")
        return flow / cap

    def validate_feasibility(self, tolerance: float = 1e-6) -> None:
        """Assert no arc carries more than its capacity (plus tolerance)."""
        for arc, flow in self.arc_flows.items():
            cap = self.arc_capacities.get(arc)
            if cap is None:
                raise FlowError(f"flow on unknown arc {arc!r}")
            if flow > cap * (1 + tolerance) + tolerance:
                raise FlowError(
                    f"arc {arc!r} overloaded: flow {flow:.6f} > capacity {cap:.6f}"
                )

    def to_dict(self) -> dict:
        """Convert to a JSON-safe dictionary (exact round trip).

        Arc endpoints are encoded with
        :func:`repro.topology.serialization.encode_node`; floats survive
        JSON round trips bit-exactly (``json`` emits ``repr``-shortest
        forms), so ``from_dict(json.loads(json.dumps(r.to_dict())))``
        reproduces the result. This is the persistence format the pipeline
        result cache stores.
        """
        from repro.topology.serialization import encode_node

        arcs = [
            {
                "u": encode_node(u),
                "v": encode_node(v),
                "capacity": capacity,
                "flow": self.arc_flows.get((u, v), 0.0),
            }
            for (u, v), capacity in self.arc_capacities.items()
        ]
        payload = {
            "throughput": self.throughput,
            "total_demand": self.total_demand,
            "solver": self.solver,
            "exact": self.exact,
            "arcs": arcs,
        }
        # Degraded-fabric and truncation fields are emitted only when set,
        # so intact-fabric payloads (and the cache entries PR 2 wrote)
        # remain byte-identical.
        if self.dropped_pairs:
            payload["dropped_pairs"] = [
                [encode_node(u), encode_node(v)] for u, v in self.dropped_pairs
            ]
            payload["dropped_demand"] = self.dropped_demand
        if self.truncated_pairs:
            payload["truncated_pairs"] = self.truncated_pairs
        # Estimator fields are emitted only when set, so payloads (and
        # cache entries) written by exact solves stay byte-identical to
        # the PR2/PR3 schema — pinned by the golden-file tests.
        if self.is_estimate:
            payload["is_estimate"] = True
        if self.error_band is not None:
            payload["error_band"] = [float(b) for b in self.error_band]
        if self.commodity_flows is not None:
            payload["commodity_flows"] = [
                {
                    "source": encode_node(source),
                    "flows": [
                        {"u": encode_node(u), "v": encode_node(v), "flow": flow}
                        for (u, v), flow in flows.items()
                    ],
                }
                for source, flows in self.commodity_flows.items()
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ThroughputResult":
        """Rebuild a result from :meth:`to_dict` output."""
        from repro.topology.serialization import decode_node

        arc_flows: dict = {}
        arc_capacities: dict = {}
        for entry in payload.get("arcs", ()):
            arc = (decode_node(entry["u"]), decode_node(entry["v"]))
            arc_capacities[arc] = float(entry["capacity"])
            flow = float(entry.get("flow", 0.0))
            if flow != 0.0:
                arc_flows[arc] = flow
        commodity_flows = None
        if "commodity_flows" in payload:
            commodity_flows = {
                decode_node(entry["source"]): {
                    (decode_node(f["u"]), decode_node(f["v"])): float(f["flow"])
                    for f in entry["flows"]
                }
                for entry in payload["commodity_flows"]
            }
        dropped_pairs = tuple(
            (decode_node(u), decode_node(v))
            for u, v in payload.get("dropped_pairs", ())
        )
        return cls(
            throughput=float(payload["throughput"]),
            arc_flows=arc_flows,
            arc_capacities=arc_capacities,
            total_demand=float(payload.get("total_demand", 0.0)),
            solver=str(payload.get("solver", "unknown")),
            exact=bool(payload.get("exact", True)),
            commodity_flows=commodity_flows,
            dropped_pairs=dropped_pairs,
            dropped_demand=float(payload.get("dropped_demand", 0.0)),
            truncated_pairs=int(payload.get("truncated_pairs", 0)),
            is_estimate=bool(payload.get("is_estimate", False)),
            error_band=(
                tuple(float(b) for b in payload["error_band"])
                if payload.get("error_band") is not None
                else None
            ),
        )

    def summary(self) -> "Mapping[str, float]":
        """Headline numbers as a plain dict (for printing/reporting)."""
        return {
            "throughput": self.throughput,
            "total_capacity": self.total_capacity,
            "utilization": self.utilization if self.total_capacity > 0 else 0.0,
            "delivered_rate": self.delivered_rate,
        }
