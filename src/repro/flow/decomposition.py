"""Throughput decomposition (§6.1): T·f = C·U / (<D> · AS).

The paper explains throughput movements by splitting per-flow throughput
into total capacity ``C``, average utilization ``U``, demand-weighted
average shortest path length ``<D>``, and stretch ``AS`` (the flow-weighted
ratio of routed path length to shortest path length). With total demand
``f`` (in demand units), the identity

    t = C * U / (<D> * AS * f)

holds exactly for any feasible flow, because both sides equal delivered
volume over flow-hops. :func:`decompose_throughput` computes the factors
from a solved :class:`~repro.flow.result.ThroughputResult` and records the
numerical residual of the identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import FlowError
from repro.flow.result import ThroughputResult
from repro.metrics.paths import demand_weighted_aspl
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix


@dataclass(frozen=True)
class ThroughputDecomposition:
    """The four factors of §6.1 plus bookkeeping.

    ``throughput`` is per demand unit; multiply by ``total_demand`` for the
    aggregate rate. ``identity_residual`` is the relative error of the
    decomposition identity — it should be at solver tolerance (~1e-6).
    """

    throughput: float
    capacity: float
    utilization: float
    aspl: float
    stretch: float
    total_demand: float
    identity_residual: float

    @property
    def inverse_aspl(self) -> float:
        """1 / <D> — the quantity plotted in Figure 9."""
        return 1.0 / self.aspl

    @property
    def inverse_stretch(self) -> float:
        """1 / AS — the quantity plotted in Figure 9."""
        return 1.0 / self.stretch


def decompose_throughput(
    topo: Topology,
    traffic: TrafficMatrix,
    result: ThroughputResult,
) -> ThroughputDecomposition:
    """Split a solved throughput into the §6.1 factors.

    Requires a result with positive delivered traffic (zero-throughput
    results have undefined stretch).
    """
    if result.throughput <= 0:
        raise FlowError(
            "cannot decompose a zero-throughput result (stretch undefined)"
        )
    capacity = result.total_capacity
    utilization = result.utilization
    aspl = demand_weighted_aspl(topo, traffic)
    routed = result.mean_routed_path_length
    stretch = routed / aspl
    total_demand = result.total_demand
    predicted = capacity * utilization / (aspl * stretch * total_demand)
    residual = abs(predicted - result.throughput) / max(result.throughput, 1e-12)
    return ThroughputDecomposition(
        throughput=result.throughput,
        capacity=capacity,
        utilization=utilization,
        aspl=aspl,
        stretch=stretch,
        total_demand=total_demand,
        identity_residual=residual,
    )


def group_utilization(
    topo: Topology,
    result: ThroughputResult,
    classifier: "Callable[[object, object], str] | None" = None,
) -> dict[str, float]:
    """Capacity-weighted utilization per link group.

    ``classifier(u, v)`` names the group of each directed arc; the default
    groups arcs by the cluster labels of their endpoints (sorted, so
    ``large-small`` and ``small-large`` merge), reproducing the paper's
    "links within the large cluster are <20% utilized while cross-cluster
    links are >90%" analysis.
    """
    if classifier is None:
        classifier = cluster_link_classifier(topo)
    flow_by_group: dict[str, float] = {}
    cap_by_group: dict[str, float] = {}
    for (u, v), cap in result.arc_capacities.items():
        group = classifier(u, v)
        cap_by_group[group] = cap_by_group.get(group, 0.0) + cap
        flow_by_group[group] = (
            flow_by_group.get(group, 0.0) + result.arc_flows.get((u, v), 0.0)
        )
    return {
        group: flow_by_group.get(group, 0.0) / cap
        for group, cap in cap_by_group.items()
    }


def cluster_link_classifier(topo: Topology) -> "Callable[[object, object], str]":
    """Classifier labelling arcs by endpoint cluster labels.

    Nodes without a cluster label are grouped under ``"unlabelled"``.
    """

    def classify(u, v) -> str:
        cu = topo.cluster_of(u) or "unlabelled"
        cv = topo.cluster_of(v) or "unlabelled"
        first, second = sorted((cu, cv))
        return f"{first}-{second}"

    return classify
