"""Reusable max-concurrent-flow LP models for swap-adjacent instances.

:mod:`repro.flow.edge_lp` rebuilds its sparse constraint system on every
call — the right trade for one-off solves, and exactly the wrong one for
the annealing and growth inner loops, which solve thousands of instances
that differ from their predecessor by a single double edge swap.

:class:`EdgeLPModel` assembles the arc-based LP **once** per (topology
structure, traffic structure) and then mutates it in place per swap:

- Conservation uses the *full-row* formulation — one equality row per
  (commodity, node), including the source row (redundant but harmless:
  presolve drops it). With the source row present every arc column has
  exactly two nonzeros (+1 at its head row, -1 at its tail row), so the
  CSC arrays have a fixed layout: column ``c = k * num_arcs + j`` owns
  data/index slots ``[2c, 2c + 2)`` forever. A double edge swap rewires
  the head or tail of 4 arc slots, which is a vectorized write of
  ``4 * num_commodities`` row indices — no reallocation, no re-sort.
- The throughput column (demand terms), the capacity block, bounds and
  objective never change under degree-preserving swaps: capacities travel
  with the arc slot exactly as :class:`~repro.topology.mutation.
  DoubleEdgeSwap` specifies (``(a, d)`` inherits the capacity of
  ``(a, b)``).

Solves default to ``method="highs-ipm"`` (interior point + crossover),
which on the anneal-scale instances measured in ``BENCH_solvers.json``
is ~10x faster than the default simplex with optima agreeing to machine
precision; the differential test matrix pins mutated-model optima to cold
:func:`~repro.flow.edge_lp.max_concurrent_flow` solves at 1e-9.

A small fingerprint-keyed memo (:func:`model_for`) mirrors the route-set
memo of :mod:`repro.fidelity.routes` so pipeline stages sharing a
(topology, traffic) pair pay one assembly; :func:`model_stats` exposes
the counters.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import FlowError, SolverError
from repro.flow.edge_lp import _aggregate_by_source
from repro.flow.result import ThroughputResult
from repro.topology.base import Topology
from repro.topology.mutation import DoubleEdgeSwap
from repro.traffic.base import TrafficMatrix

#: Hot-path LP algorithm. Interior point with crossover returns a basic
#: optimal solution like simplex does, several times faster on the
#: multi-commodity instances this module exists for.
DEFAULT_METHOD = "highs-ipm"

#: In-process memo size for :func:`model_for` (a model at N=64/r=8 is a
#: few MB of index arrays).
_MEMO_MAX = 4

_MEMO: "OrderedDict[tuple, EdgeLPModel]" = OrderedDict()
_STATS = {
    "built": 0,
    "memo_hits": 0,
    "solves": 0,
    "swaps": 0,
    "demand_deltas": 0,
}


def model_stats() -> dict:
    """Counters since the last reset: built / memo_hits / solves / swaps /
    demand_deltas."""
    return dict(_STATS)


def reset_model_stats() -> None:
    """Zero the counters and drop the in-process model memo."""
    for key in _STATS:
        _STATS[key] = 0
    _MEMO.clear()


class EdgeLPModel:
    """One assembled max-concurrent-flow LP, mutable under edge swaps.

    Parameters
    ----------
    topo:
        Connected network whose structure seeds the model. The model
        keeps its own arc bookkeeping; later swaps are applied through
        :meth:`apply_swap`, not by mutating ``topo``.
    traffic:
        Demand matrix. Commodities are aggregated by source switch (the
        proven-equivalent compression of :mod:`repro.flow.edge_lp`).
    method:
        :func:`scipy.optimize.linprog` method for :meth:`solve`.
    """

    def __init__(
        self,
        topo: Topology,
        traffic: TrafficMatrix,
        method: str = DEFAULT_METHOD,
        sources: "str | None" = None,
    ) -> None:
        traffic.validate_against(topo.switches)
        if not traffic.demands:
            raise FlowError("traffic matrix has no network demands")
        arcs = topo.arcs()
        if not arcs:
            raise FlowError("topology has no links")
        if sources not in (None, "all"):
            raise FlowError(f"sources must be None or 'all', got {sources!r}")
        self.method = method
        self.name = f"{topo.name}/{traffic.name}"
        self.num_swaps = 0
        self.num_solves = 0
        self.num_demand_deltas = 0

        nodes = topo.switches
        self._node_index = {node: i for i, node in enumerate(nodes)}
        self._nodes = list(nodes)
        num_nodes = len(nodes)
        commodities = _aggregate_by_source(traffic)
        if sources == "all":
            # One commodity per switch, demand or not: zero-demand
            # commodities cost columns but keep the fixed layout valid for
            # *any* later demand delta (a new source just fills its slot).
            by_source = dict(commodities)
            commodities = [
                (node, by_source.get(node, {}))
                for node in sorted(nodes, key=repr)
            ]
        self._sources_mode = sources
        num_arcs = len(arcs)
        num_commodities = len(commodities)
        self._num_nodes = num_nodes
        self._num_arcs = num_arcs
        self._num_commodities = num_commodities
        num_vars = num_commodities * num_arcs + 1
        self._t_col = num_vars - 1

        # Arc slots: slot j holds directed arc (tail[j], head[j]) with a
        # capacity that never moves — swaps rewrite endpoints in place.
        self._arc_tail = np.fromiter(
            (self._node_index[u] for u, _, _ in arcs),
            dtype=np.int64,
            count=num_arcs,
        )
        self._arc_head = np.fromiter(
            (self._node_index[v] for _, v, _ in arcs),
            dtype=np.int64,
            count=num_arcs,
        )
        self._capacities = np.fromiter(
            (cap for _, _, cap in arcs), dtype=np.float64, count=num_arcs
        )
        self._arc_slot = {
            (u, v): j for j, (u, v, _) in enumerate(arcs)
        }

        # Full-row conservation in fixed-layout CSC arrays. Arc column
        # c = k * num_arcs + j occupies slots [2c, 2c+2): head row (+1)
        # then tail row (-1). The trailing throughput column carries the
        # demand terms (-units at dest rows) and +total_demand at each
        # source row (flow out of the source equals t * its demand).
        commodity_base = (
            np.arange(num_commodities, dtype=np.int64) * num_nodes
        )
        head_rows = commodity_base[:, None] + self._arc_head[None, :]
        tail_rows = commodity_base[:, None] + self._arc_tail[None, :]
        arc_indices = np.empty((num_commodities, num_arcs, 2), dtype=np.int64)
        arc_indices[:, :, 0] = head_rows
        arc_indices[:, :, 1] = tail_rows
        arc_data = np.empty(num_commodities * num_arcs * 2, dtype=np.float64)
        arc_data[0::2] = 1.0
        arc_data[1::2] = -1.0

        for source, dests in commodities:
            if source in dests:
                raise FlowError("a commodity demands traffic to itself")
        self._commodity_sources = [source for source, _ in commodities]
        self._commodity_index = {
            source: k for k, (source, _) in enumerate(commodities)
        }
        self._commodity_dests = [dict(dests) for _, dests in commodities]

        self._arc_nnz = 2 * num_commodities * num_arcs
        self._eq_indices = arc_indices.reshape(-1)
        self._eq_data = arc_data
        self._eq_indptr = np.empty(num_vars + 1, dtype=np.int64)
        self._eq_indptr[: num_vars] = np.arange(
            0, 2 * num_commodities * num_arcs + 1, 2, dtype=np.int64
        )
        self._eq_indptr[num_vars] = self._eq_indptr[num_vars - 1]
        self._num_eq_rows = num_commodities * num_nodes
        self._b_eq = np.zeros(self._num_eq_rows)
        self._rebuild_t_column()

        # Capacity block: sum over commodities of flow on arc slot j <=
        # capacity(j). Column-to-row pattern is layout-only; b_ub moves
        # with the slots, i.e. never.
        ub_rows = np.tile(
            np.arange(num_arcs, dtype=np.int64), num_commodities
        )
        ub_cols = np.arange(num_commodities * num_arcs, dtype=np.int64)
        self._a_ub = sparse.coo_matrix(
            (
                np.ones(num_commodities * num_arcs),
                (ub_rows, ub_cols),
            ),
            shape=(num_arcs, num_vars),
        ).tocsr()

        self._objective = np.zeros(num_vars)
        self._objective[self._t_col] = -1.0
        self.total_demand = float(traffic.total_demand)
        _STATS["built"] += 1

    # ------------------------------------------------------------------
    # Introspection used by the property tests
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        """(equality rows, variables) of the conservation block."""
        return (self._num_eq_rows, self._t_col + 1)

    @property
    def nnz(self) -> int:
        """Nonzero count of the conservation block (invariant under swaps)."""
        return len(self._eq_data)

    def arcs(self) -> list:
        """Current directed arcs ``(u, v, capacity)`` in slot order."""
        return [
            (self._nodes[int(t)], self._nodes[int(h)], float(c))
            for t, h, c in zip(self._arc_tail, self._arc_head, self._capacities)
        ]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply_swap(self, swap: DoubleEdgeSwap) -> None:
        """Rewire the model for ``swap`` in place (O(num_commodities)).

        Both directed arcs of each swapped link move: ``(a, b)`` becomes
        ``(a, d)`` (head rewrite), ``(b, a)`` becomes ``(d, a)`` (tail
        rewrite), and symmetrically for ``(c, d)``. Raises
        :class:`FlowError` when the swap does not fit the current arc set
        (missing removed link or already-present added link), leaving the
        model untouched.
        """
        a, b, c, d = swap.a, swap.b, swap.c, swap.d
        for u, v in swap.removed:
            if (u, v) not in self._arc_slot:
                raise FlowError(f"swap removes missing arc ({u!r}, {v!r})")
        for u, v in swap.added:
            if (u, v) in self._arc_slot:
                raise FlowError(f"swap adds existing arc ({u!r}, {v!r})")
        # (endpoint-kind, old pair, new pair, replacement node)
        moves = (
            ("head", (a, b), (a, d), d),
            ("tail", (b, a), (d, a), d),
            ("head", (c, d), (c, b), b),
            ("tail", (d, c), (b, c), b),
        )
        num_arcs = self._num_arcs
        strides = (
            np.arange(self._num_commodities, dtype=np.int64)
            * (2 * num_arcs)
        )
        commodity_rows = (
            np.arange(self._num_commodities, dtype=np.int64) * self._num_nodes
        )
        for kind, old, new, node in moves:
            j = self._arc_slot.pop(old)
            self._arc_slot[new] = j
            node_idx = self._node_index[node]
            if kind == "head":
                self._arc_head[j] = node_idx
                self._eq_indices[strides + 2 * j] = commodity_rows + node_idx
            else:
                self._arc_tail[j] = node_idx
                self._eq_indices[strides + 2 * j + 1] = (
                    commodity_rows + node_idx
                )
        self.num_swaps += 1
        _STATS["swaps"] += 1

    def _rebuild_t_column(self) -> None:
        """Regenerate the throughput column's CSC tail from demand state.

        The t-column is the *last* CSC column, so its entries are the tail
        of ``_eq_data`` / ``_eq_indices`` — regenerating it touches no arc
        slot and costs O(demand pairs + commodities), tiny next to a solve.
        """
        num_nodes = self._num_nodes
        dest_commodity = np.fromiter(
            (
                k
                for k, dests in enumerate(self._commodity_dests)
                for _ in dests
            ),
            dtype=np.int64,
        )
        dest_nodes = np.fromiter(
            (
                self._node_index[v]
                for dests in self._commodity_dests
                for v in dests
            ),
            dtype=np.int64,
            count=len(dest_commodity),
        )
        dest_units = np.fromiter(
            (
                units
                for dests in self._commodity_dests
                for units in dests.values()
            ),
            dtype=np.float64,
            count=len(dest_commodity),
        )
        src_rows = np.fromiter(
            (
                k * num_nodes + self._node_index[source]
                for k, source in enumerate(self._commodity_sources)
            ),
            dtype=np.int64,
            count=self._num_commodities,
        )
        src_totals = np.zeros(self._num_commodities)
        np.add.at(src_totals, dest_commodity, dest_units)
        t_rows = np.concatenate(
            (dest_commodity * num_nodes + dest_nodes, src_rows)
        )
        t_vals = np.concatenate((-dest_units, src_totals))
        t_order = np.argsort(t_rows, kind="stable")
        arc_nnz = self._arc_nnz
        self._eq_indices = np.concatenate(
            (self._eq_indices[:arc_nnz], t_rows[t_order])
        )
        self._eq_data = np.concatenate(
            (self._eq_data[:arc_nnz], t_vals[t_order])
        )
        self._eq_indptr[self._t_col + 1] = arc_nnz + len(t_rows)

    def apply_demand_delta(self, delta) -> None:
        """Fold a :class:`~repro.traffic.timeline.DemandDelta` in place.

        Only the throughput column (the CSC tail) and ``total_demand``
        change — arc columns, the capacity block, bounds, and objective
        are untouched, mirroring :meth:`apply_swap`'s slot discipline.
        Reverting is ``apply_demand_delta(delta.inverse())``.

        A delta whose source has no commodity slot raises
        :class:`FlowError` unless the model was built with
        ``sources="all"`` (one commodity per switch, so every source has
        a slot); callers fall back to a cold rebuild in that case. The
        model is left untouched on any validation failure.
        """
        from repro.traffic.timeline import ZERO_DEMAND_TOLERANCE

        pending: dict = {}
        total_change = 0.0
        for (u, v), units in delta.changes:
            k = self._commodity_index.get(u)
            if k is None:
                if u not in self._node_index:
                    raise FlowError(
                        f"delta source {u!r} is not a switch in the model"
                    )
                raise FlowError(
                    f"delta adds new source {u!r}; only models built with "
                    "sources='all' can warm-start new sources — rebuild cold"
                )
            if v not in self._node_index:
                raise FlowError(
                    f"delta destination {v!r} is not a switch in the model"
                )
            key = (k, v)
            current = pending.get(key)
            if current is None:
                current = self._commodity_dests[k].get(v, 0.0)
            new_units = current + units
            if new_units < -ZERO_DEMAND_TOLERANCE:
                raise FlowError(
                    f"delta {delta.label!r} drives demand for ({u!r}, {v!r}) "
                    f"negative ({new_units})"
                )
            pending[key] = new_units
            total_change += units
        if self.total_demand + total_change <= ZERO_DEMAND_TOLERANCE:
            raise FlowError(
                f"delta {delta.label!r} leaves no network demand to solve"
            )
        for (k, v), new_units in pending.items():
            if abs(new_units) <= ZERO_DEMAND_TOLERANCE:
                self._commodity_dests[k].pop(v, None)
            else:
                self._commodity_dests[k][v] = new_units
        self.total_demand = float(
            sum(sum(dests.values()) for dests in self._commodity_dests)
        )
        self._rebuild_t_column()
        self.num_demand_deltas += 1
        _STATS["demand_deltas"] += 1

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self) -> float:
        """Optimal concurrent throughput of the current instance."""
        return float(self._solution()[self._t_col])

    def solve_result(self) -> ThroughputResult:
        """Full :class:`ThroughputResult` for the current instance."""
        solution = self._solution()
        throughput = float(solution[self._t_col])
        per_arc = (
            solution[: self._t_col]
            .reshape(self._num_commodities, self._num_arcs)
            .sum(axis=0)
        )
        arc_pairs = [
            (self._nodes[int(t)], self._nodes[int(h)])
            for t, h in zip(self._arc_tail, self._arc_head)
        ]
        return ThroughputResult(
            throughput=throughput,
            arc_flows=dict(zip(arc_pairs, map(float, per_arc))),
            arc_capacities=dict(zip(arc_pairs, map(float, self._capacities))),
            total_demand=self.total_demand,
            solver="edge-lp-incremental",
            exact=True,
        )

    def _solution(self) -> np.ndarray:
        a_eq = sparse.csc_matrix(
            (self._eq_data, self._eq_indices, self._eq_indptr),
            shape=(self._num_eq_rows, self._t_col + 1),
        )
        outcome = linprog(
            self._objective,
            A_ub=self._a_ub,
            b_ub=self._capacities,
            A_eq=a_eq,
            b_eq=self._b_eq,
            bounds=(0, None),
            method=self.method,
        )
        if not outcome.success:
            raise SolverError(
                f"HiGHS ({self.method}) failed on {self.name!r}: "
                f"{outcome.message}"
            )
        self.num_solves += 1
        _STATS["solves"] += 1
        return np.asarray(outcome.x)

    def copy(self) -> "EdgeLPModel":
        """An independent model with the same current instance."""
        clone = object.__new__(EdgeLPModel)
        clone.__dict__.update(self.__dict__)
        for attr in (
            "_arc_tail",
            "_arc_head",
            "_eq_indices",
            "_eq_data",
            "_eq_indptr",
        ):
            setattr(clone, attr, getattr(self, attr).copy())
        clone._arc_slot = dict(self._arc_slot)
        clone._commodity_dests = [dict(d) for d in self._commodity_dests]
        return clone


def model_for(
    topo: Topology,
    traffic: TrafficMatrix,
    method: str = DEFAULT_METHOD,
    mutable: bool = False,
    sources: "str | None" = None,
) -> EdgeLPModel:
    """A (memoized) :class:`EdgeLPModel` for this exact instance.

    Keyed by content fingerprints, so repeated pipeline stages touching
    the same (topology, traffic) pair share one assembly. ``mutable=True``
    returns a private copy safe to :meth:`~EdgeLPModel.apply_swap` /
    :meth:`~EdgeLPModel.apply_demand_delta` — the memoized original must
    keep matching its fingerprint key.
    """
    from repro.pipeline.fingerprint import (
        topology_fingerprint,
        traffic_fingerprint,
    )

    key = (
        topology_fingerprint(topo),
        traffic_fingerprint(traffic),
        method,
        sources,
    )
    model = _MEMO.get(key)
    if model is None:
        model = EdgeLPModel(topo, traffic, method=method, sources=sources)
        _MEMO[key] = model
        while len(_MEMO) > _MEMO_MAX:
            _MEMO.popitem(last=False)
    else:
        _MEMO.move_to_end(key)
        _STATS["memo_hits"] += 1
    return model.copy() if mutable else model
