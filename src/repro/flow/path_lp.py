"""Max concurrent flow restricted to k-shortest path sets.

Solves the same concurrent-flow LP as :mod:`repro.flow.edge_lp` but with
flow variables per (demand pair, path) over the ``k`` shortest simple paths
of each pair. The optimum is a *lower bound* on the unrestricted optimum —
tight in practice for random graphs, where most pairs have many near-minimal
paths — and directly models what MPTCP-over-shortest-paths can use, so it is
the flow-level reference for Figure 13.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import FlowError, SolverError
from repro.flow.reachability import resolve_unreachable, unserved_result
from repro.flow.result import ThroughputResult
from repro.metrics.paths import k_shortest_paths
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.util.validation import check_positive_int


def max_concurrent_flow_paths(
    topo: Topology,
    traffic: TrafficMatrix,
    k: int = 8,
    paths_by_pair: "dict | None" = None,
    unreachable: str = "error",
) -> ThroughputResult:
    """Solve concurrent flow over the k shortest paths of every pair.

    Parameters
    ----------
    k:
        Paths per demand pair (the paper's MPTCP evaluation uses up to 8
        subflows).
    paths_by_pair:
        Optional precomputed mapping ``(u, v) -> list of node paths``;
        overrides ``k`` and skips path enumeration. Each path must run from
        ``u`` to ``v`` along existing links.
    unreachable:
        Policy for demands with no path (degraded fabrics): ``"error"``
        raises, ``"drop"`` solves over the served demand set and records
        the dropped pairs on the result. See
        :mod:`repro.flow.reachability`.

    Returns
    -------
    ThroughputResult
        ``exact=False`` — the value lower-bounds the unrestricted optimum.
    """
    check_positive_int(k, "k")
    traffic, dropped, dropped_demand = resolve_unreachable(
        topo, traffic, unreachable
    )
    if dropped and not traffic.demands:
        return unserved_result(
            topo, "path-lp", dropped, dropped_demand, exact=False
        )
    traffic.validate_against(topo.switches)
    if not traffic.demands:
        raise FlowError("traffic matrix has no network demands")

    pairs = sorted(traffic.demands, key=lambda pair: (repr(pair[0]), repr(pair[1])))
    if paths_by_pair is None:
        paths_by_pair = {
            (u, v): k_shortest_paths(topo, u, v, k) for u, v in pairs
        }
    _validate_paths(topo, pairs, paths_by_pair)

    arcs = topo.arcs()
    arc_index = {(u, v): i for i, (u, v, _) in enumerate(arcs)}
    capacities = np.fromiter((cap for _, _, cap in arcs), dtype=np.float64)
    num_arcs = len(arcs)

    # Layout: one variable per (pair, path), then t last.
    var_paths: list[tuple[int, list]] = []  # (pair_id, node path)
    for pair_id, pair in enumerate(pairs):
        for path in paths_by_pair[pair]:
            var_paths.append((pair_id, path))
    num_path_vars = len(var_paths)
    t_col = num_path_vars
    num_vars = num_path_vars + 1

    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_vals: list[float] = []
    ub_rows: list[int] = []
    ub_cols: list[int] = []
    for col, (pair_id, path) in enumerate(var_paths):
        eq_rows.append(pair_id)
        eq_cols.append(col)
        eq_vals.append(1.0)
        for a, b in zip(path[:-1], path[1:]):
            ub_rows.append(arc_index[(a, b)])
            ub_cols.append(col)
    for pair_id, pair in enumerate(pairs):
        eq_rows.append(pair_id)
        eq_cols.append(t_col)
        eq_vals.append(-float(traffic.demands[pair]))

    a_eq = sparse.coo_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(len(pairs), num_vars)
    ).tocsr()
    a_ub = sparse.coo_matrix(
        (np.ones(len(ub_rows)), (ub_rows, ub_cols)), shape=(num_arcs, num_vars)
    ).tocsr()

    objective = np.zeros(num_vars)
    objective[t_col] = -1.0
    outcome = linprog(
        objective,
        A_ub=a_ub,
        b_ub=capacities,
        A_eq=a_eq,
        b_eq=np.zeros(len(pairs)),
        bounds=(0, None),
        method="highs",
    )
    if not outcome.success:
        raise SolverError(
            f"HiGHS failed on {topo.name!r} / {traffic.name!r}: {outcome.message}"
        )
    solution = np.asarray(outcome.x)
    throughput = float(solution[t_col])

    arc_flows = {(u, v): 0.0 for u, v, _ in arcs}
    for col, (_, path) in enumerate(var_paths):
        value = float(solution[col])
        if value <= 0:
            continue
        for a, b in zip(path[:-1], path[1:]):
            arc_flows[(a, b)] += value
    return ThroughputResult(
        throughput=throughput,
        arc_flows=arc_flows,
        arc_capacities={(u, v): float(cap) for u, v, cap in arcs},
        total_demand=traffic.total_demand,
        solver="path-lp",
        exact=False,
        dropped_pairs=tuple(dropped),
        dropped_demand=dropped_demand,
    )


def _validate_paths(topo: Topology, pairs: list, paths_by_pair: dict) -> None:
    for pair in pairs:
        paths = paths_by_pair.get(pair)
        if not paths:
            raise FlowError(f"no candidate paths for demand pair {pair!r}")
        u, v = pair
        for path in paths:
            if path[0] != u or path[-1] != v:
                raise FlowError(
                    f"path {path!r} does not run {u!r} -> {v!r}"
                )
            for a, b in zip(path[:-1], path[1:]):
                if not topo.has_link(a, b):
                    raise FlowError(
                        f"path {path!r} uses a missing link ({a!r}, {b!r})"
                    )
