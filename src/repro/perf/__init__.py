"""Performance instrumentation for the experiment pipelines.

:mod:`repro.perf.profile` provides the span-timer / cProfile harness
behind the ``--profile`` flag of ``repro-experiments sweep`` and
``repro-experiments grow``, and the JSON span-artifact schema the
benchmark regression gate consumes (see ``docs/performance.md``).
"""

from repro.perf.profile import (
    PROFILE_SCHEMA_VERSION,
    Profiler,
    Span,
    active_profiler,
    perf_span,
    profiling,
)

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "Profiler",
    "Span",
    "active_profiler",
    "perf_span",
    "profiling",
]
