"""Timer spans and cProfile capture behind one JSON artifact.

A :class:`Profiler` collects named wall-clock **spans** (hierarchical via
a dotted path the nesting maintains automatically) and, optionally, a
cProfile run of whatever executes inside :meth:`Profiler.profiled`. Both
serialize into one JSON artifact::

    {
      "schema_version": 1,
      "label": "sweep",
      "total_s": 12.34,
      "spans": [
        {"name": "grid", "elapsed_s": 0.01, "meta": {"cells": 64}},
        {"name": "run", "elapsed_s": 12.1, "meta": {}},
        {"name": "run.cell", "elapsed_s": 0.19, "meta": {...}},
        ...
      ],
      "hotspots": [
        {"function": "...linprog", "cumtime_s": 9.8, "calls": 64},
        ...
      ]
    }

The span list preserves completion order; repeated names are distinct
entries (per-cell spans), and the reader aggregates as it pleases —
``BENCH_*.json`` records and the CI perf gate only ever read
``elapsed_s`` sums per name.

Library code adds spans without threading a profiler through every
signature: :func:`perf_span` consults a :class:`~contextvars.ContextVar`
(the :func:`repro.pipeline.cache.cache_context` idiom) and is a cheap
no-op when no :func:`profiling` scope is active — safe in hot loops.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

#: Bump when the artifact layout changes; readers must check it.
PROFILE_SCHEMA_VERSION = 1

#: Hotspot rows kept from a cProfile capture (by cumulative time).
HOTSPOT_LIMIT = 25


@dataclass
class Span:
    """One timed region: dotted ``name``, wall seconds, free-form meta."""

    name: str
    elapsed_s: float
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "elapsed_s": self.elapsed_s,
            "meta": self.meta,
        }


class Profiler:
    """Collects spans (and optionally a cProfile) for one run.

    ``cprofile=True`` arms :meth:`profiled`; it stays inert otherwise so
    span timing never pays interpreter-tracing overhead by accident.
    """

    def __init__(self, label: str = "run", cprofile: bool = False) -> None:
        self.label = label
        self.spans: "list[Span]" = []
        self._stack: "list[str]" = []
        self._start = time.perf_counter()
        self._cprofile_enabled = bool(cprofile)
        self._profile: "cProfile.Profile | None" = None

    @contextmanager
    def span(self, name: str, **meta):
        """Time a region; nesting prefixes the parent's dotted path."""
        path = ".".join(self._stack + [name])
        self._stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            self._stack.pop()
            self.spans.append(
                Span(path, time.perf_counter() - start, dict(meta))
            )

    def record(self, name: str, elapsed_s: float, **meta) -> None:
        """Append an externally timed span (current nesting applies)."""
        path = ".".join(self._stack + [name])
        self.spans.append(Span(path, float(elapsed_s), dict(meta)))

    @contextmanager
    def profiled(self):
        """Run the enclosed block under cProfile (no-op unless armed).

        One capture per profiler: the artifact reports a single hotspot
        table, so a second ``profiled`` block would silently merge into
        it — re-entering raises instead.
        """
        if not self._cprofile_enabled:
            yield
            return
        if self._profile is not None:
            raise RuntimeError("profiler already captured a cProfile run")
        self._profile = cProfile.Profile()
        self._profile.enable()
        try:
            yield
        finally:
            self._profile.disable()

    def total_by_name(self) -> "dict[str, float]":
        """Summed ``elapsed_s`` per span name (the gate's view)."""
        totals: dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.elapsed_s
        return totals

    def hotspots(self, limit: int = HOTSPOT_LIMIT) -> "list[dict]":
        """Top functions by cumulative time from the cProfile capture."""
        if self._profile is None:
            return []
        stats = pstats.Stats(self._profile, stream=io.StringIO())
        rows = []
        for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
            filename, lineno, name = func
            rows.append(
                {
                    "function": f"{filename}:{lineno}({name})",
                    "calls": int(nc),
                    "tottime_s": float(tt),
                    "cumtime_s": float(ct),
                }
            )
        rows.sort(key=lambda row: row["cumtime_s"], reverse=True)
        return rows[:limit]

    def to_dict(self) -> dict:
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "label": self.label,
            "total_s": time.perf_counter() - self._start,
            "spans": [span.to_dict() for span in self.spans],
            "totals": self.total_by_name(),
            "hotspots": self.hotspots(),
        }

    def write_json(self, path: str) -> None:
        """Serialize the artifact (spans + totals + hotspots) to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)


_ACTIVE_PROFILER: "ContextVar[Profiler | None]" = ContextVar(
    "repro_active_profiler", default=None
)


@contextmanager
def profiling(profiler: "Profiler | None" = None, label: str = "run",
              cprofile: bool = False):
    """Scope a profiler so :func:`perf_span` calls below it record spans.

    Yields the active profiler (a fresh one when none is passed).
    """
    active = profiler if profiler is not None else Profiler(
        label=label, cprofile=cprofile
    )
    token = _ACTIVE_PROFILER.set(active)
    try:
        yield active
    finally:
        _ACTIVE_PROFILER.reset(token)


def active_profiler() -> "Profiler | None":
    """The profiler of the enclosing :func:`profiling` scope, if any."""
    return _ACTIVE_PROFILER.get()


@contextmanager
def perf_span(name: str, **meta):
    """Time a region on the active profiler; near-free when none is.

    The disabled path is one ContextVar read — cheap enough for
    per-solve granularity, though not for per-arc inner loops.
    """
    profiler = _ACTIVE_PROFILER.get()
    if profiler is None:
        yield
        return
    with profiler.span(name, **meta):
        yield
