"""Degree-preserving topology mutation primitives.

The search engine explores the space of r-regular graphs by *double edge
swaps*: remove two disjoint links ``(a, b)`` and ``(c, d)``, add ``(a, d)``
and ``(c, b)``. Every node keeps its degree, so the move stays inside the
paper's RRG(N, k, r) family; a long random sequence of such swaps mixes
toward the uniform distribution over r-regular graphs, which is why the
same primitive also serves as an unbiased "re-randomizer".

:func:`rewire_link` is the non-degree-preserving cousin (move one endpoint
of a link) used by the small-world generator's Watts–Strogatz rewiring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TopologyError
from repro.topology.base import NodeId, Topology
from repro.util.rng import as_rng
from repro.util.validation import check_non_negative_int, check_positive_int


@dataclass(frozen=True)
class DoubleEdgeSwap:
    """Remove links ``(a, b)`` and ``(c, d)``; add ``(a, d)`` and ``(c, b)``.

    All four switches are distinct, so applying the swap preserves every
    node's degree. Capacities travel with the node that keeps them:
    ``(a, d)`` inherits the capacity of ``(a, b)`` and ``(c, b)`` inherits
    the capacity of ``(c, d)`` (for uniform-capacity networks the choice is
    immaterial).
    """

    a: NodeId
    b: NodeId
    c: NodeId
    d: NodeId

    @property
    def removed(self) -> tuple[tuple[NodeId, NodeId], tuple[NodeId, NodeId]]:
        """The two links the swap deletes."""
        return ((self.a, self.b), (self.c, self.d))

    @property
    def added(self) -> tuple[tuple[NodeId, NodeId], tuple[NodeId, NodeId]]:
        """The two links the swap creates."""
        return ((self.a, self.d), (self.c, self.b))

    def inverse(self) -> "DoubleEdgeSwap":
        """The swap that undoes this one."""
        return DoubleEdgeSwap(self.a, self.d, self.c, self.b)

    def touched(self) -> tuple[NodeId, NodeId, NodeId, NodeId]:
        """The four endpoints involved."""
        return (self.a, self.b, self.c, self.d)


def sample_double_edge_swap(
    topo: Topology, rng=None, max_tries: int = 64
) -> "DoubleEdgeSwap | None":
    """Sample a valid double edge swap uniformly-ish from ``topo``.

    Picks two distinct links at random and a random pairing of their
    endpoints, rejecting candidates that would create self-loops or
    parallel links. Returns ``None`` when ``max_tries`` rejections occur
    (e.g. in very dense or very small graphs with few valid swaps).
    """
    check_positive_int(max_tries, "max_tries")
    rng = as_rng(rng)
    links = topo.links
    if len(links) < 2:
        return None
    for _ in range(max_tries):
        i, j = rng.integers(len(links), size=2)
        if i == j:
            continue
        first, second = links[int(i)], links[int(j)]
        a, b = first.u, first.v
        c, d = second.u, second.v
        if rng.random() < 0.5:
            c, d = d, c
        if len({a, b, c, d}) < 4:
            continue
        if topo.has_link(a, d) or topo.has_link(c, b):
            continue
        return DoubleEdgeSwap(a, b, c, d)
    return None


def apply_double_edge_swap(topo: Topology, swap: DoubleEdgeSwap) -> None:
    """Apply ``swap`` to ``topo`` in place.

    Raises :class:`TopologyError` if the swap is invalid for the current
    graph (a removed link is missing, an added link already exists, or the
    endpoints are not distinct), leaving the topology untouched.
    """
    a, b, c, d = swap.a, swap.b, swap.c, swap.d
    if len({a, b, c, d}) < 4:
        raise TopologyError(f"swap endpoints must be distinct: {swap}")
    for u, v in swap.removed:
        if not topo.has_link(u, v):
            raise TopologyError(f"swap removes missing link ({u!r}, {v!r})")
    for u, v in swap.added:
        if topo.has_link(u, v):
            raise TopologyError(f"swap adds existing link ({u!r}, {v!r})")
    cap_ab = topo.capacity(a, b)
    cap_cd = topo.capacity(c, d)
    topo.remove_link(a, b)
    topo.remove_link(c, d)
    topo.add_link(a, d, capacity=cap_ab)
    topo.add_link(c, b, capacity=cap_cd)


def double_edge_swap(
    topo: Topology,
    rng=None,
    preserve_connectivity: bool = True,
    max_tries: int = 64,
) -> "DoubleEdgeSwap | None":
    """Perform one random double edge swap in place.

    With ``preserve_connectivity`` (the default) a swap that disconnects
    the network is rolled back and another candidate is drawn. Returns the
    swap performed, or ``None`` if no valid swap was found in ``max_tries``
    attempts.
    """
    rng = as_rng(rng)
    for _ in range(max(1, max_tries)):
        swap = sample_double_edge_swap(topo, rng=rng, max_tries=max_tries)
        if swap is None:
            return None
        apply_double_edge_swap(topo, swap)
        if not preserve_connectivity or topo.is_connected():
            return swap
        apply_double_edge_swap(topo, swap.inverse())
    return None


def random_rewire(
    topo: Topology,
    num_swaps: int,
    seed=None,
    preserve_connectivity: bool = True,
    max_tries: int = 64,
) -> list[DoubleEdgeSwap]:
    """Apply up to ``num_swaps`` random double edge swaps in place.

    Returns the swaps actually performed (fewer than requested when the
    graph offers no further valid moves). The degree sequence — and with
    ``preserve_connectivity`` the connectivity — is invariant, so this
    re-randomizes a topology within its RRG family.
    """
    check_non_negative_int(num_swaps, "num_swaps")
    rng = as_rng(seed)
    performed: list[DoubleEdgeSwap] = []
    for _ in range(num_swaps):
        swap = double_edge_swap(
            topo,
            rng=rng,
            preserve_connectivity=preserve_connectivity,
            max_tries=max_tries,
        )
        if swap is None:
            break
        performed.append(swap)
    return performed


def rewire_link(
    topo: Topology, u: NodeId, v: NodeId, new_target: NodeId
) -> None:
    """Move the link ``(u, v)`` to ``(u, new_target)``, keeping its capacity.

    The Watts–Strogatz rewiring move: ``u`` keeps its degree while ``v``
    loses one and ``new_target`` gains one. Raises :class:`TopologyError`
    when the link is missing, the move would create a self-loop, or the
    target link already exists.
    """
    if new_target == u:
        raise TopologyError(f"rewiring ({u!r}, {v!r}) onto itself is a self-loop")
    if not topo.has_link(u, v):
        raise TopologyError(f"no link between {u!r} and {v!r}")
    if not topo.has_switch(new_target):
        raise TopologyError(f"switch {new_target!r} does not exist")
    if topo.has_link(u, new_target):
        raise TopologyError(f"link ({u!r}, {new_target!r}) already exists")
    cap = topo.capacity(u, v)
    topo.remove_link(u, v)
    topo.add_link(u, new_target, capacity=cap)
