"""Two-cluster random networks with controlled cross-cluster connectivity.

The paper's §5-§6 experiments sweep the number of links crossing between a
cluster of "large" switches and a cluster of "small" switches, holding per
switch port budgets fixed. The x-axis in Figures 6-8, 10 and 11 is the ratio
of realized cross links to the number expected under an unbiased uniform
random wiring; :func:`expected_cross_links` computes that expectation from
the configuration model, and :func:`two_cluster_random_topology` realizes a
random network with an exact cross-link count.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphConstructionError, TopologyError
from repro.topology.base import Topology
from repro.topology.builders import (
    random_bipartite_matching,
    random_graph_from_degrees,
)
from repro.util.rng import as_rng
from repro.util.validation import check_non_negative_int, check_positive_int

LARGE = "large"
SMALL = "small"


def expected_cross_links(stubs_a: int, stubs_b: int) -> float:
    """Expected cross-cluster links under unbiased random stub matching.

    With ``R_a`` network ports in one cluster and ``R_b`` in the other, the
    configuration model pairs ``(R_a + R_b) / 2`` edges uniformly, so the
    expected number with one endpoint in each cluster is
    ``R_a * R_b / (R_a + R_b)``.
    """
    stubs_a = check_non_negative_int(stubs_a, "stubs_a")
    stubs_b = check_non_negative_int(stubs_b, "stubs_b")
    total = stubs_a + stubs_b
    if total == 0:
        return 0.0
    return stubs_a * stubs_b / total


def _spread_cross_stubs(
    rng: np.random.Generator,
    budgets: dict,
    count: int,
    other_side_size: int,
) -> dict:
    """Randomly assign ``count`` cross stubs to nodes within port budgets.

    Each node can host at most ``min(budget, other_side_size)`` cross edges
    (the simple-graph constraint caps a node's cross degree at the size of
    the opposite cluster).
    """
    caps = {node: min(budget, other_side_size) for node, budget in budgets.items()}
    room = sum(caps.values())
    if count > room:
        raise TopologyError(
            f"requested {count} cross links but cluster can host only {room}"
        )
    assigned = {node: 0 for node in budgets}
    stub_pool: list = []
    for node, cap in caps.items():
        stub_pool.extend([node] * cap)
    pool = np.array(stub_pool, dtype=object)
    chosen = rng.choice(len(pool), size=count, replace=False)
    for idx in chosen:
        assigned[pool[int(idx)]] += 1
    return {node: cnt for node, cnt in assigned.items() if cnt > 0}


def two_cluster_random_topology(
    num_large: int,
    large_network_ports: int,
    num_small: int,
    small_network_ports: int,
    servers_per_large: int = 0,
    servers_per_small: int = 0,
    cross_fraction: "float | None" = 1.0,
    cross_links: "int | None" = None,
    capacity: float = 1.0,
    clamp_cross: bool = False,
    seed=None,
    name: "str | None" = None,
) -> Topology:
    """Build a two-cluster random network with an exact cross-link count.

    Parameters
    ----------
    num_large, num_small:
        Switch counts in the two clusters.
    large_network_ports, small_network_ports:
        Switch-to-switch ports per switch of each type (server ports are
        separate; pass the post-server budget).
    servers_per_large, servers_per_small:
        Servers attached to each switch of the type. These do not consume
        ``*_network_ports``.
    cross_fraction:
        Cross-link count as a multiple of the unbiased-random expectation
        (the paper's x-axis). ``1.0`` reproduces vanilla randomness in
        expectation; ignored when ``cross_links`` is given.
    cross_links:
        Absolute number of cross-cluster links, overriding
        ``cross_fraction``.
    clamp_cross:
        If ``True``, an infeasibly large cross-link request is clamped to
        the maximum a simple graph can host instead of raising; useful for
        parameter sweeps that probe the upper end of the feasible range.

    Returns
    -------
    Topology
        Switch ids are ``0 .. num_large-1`` (cluster ``"large"``) followed by
        ``num_large .. num_large+num_small-1`` (cluster ``"small"``). Odd
        within-cluster stub remainders are left unused, as in a physical
        wiring.
    """
    num_large = check_positive_int(num_large, "num_large")
    num_small = check_positive_int(num_small, "num_small")
    large_network_ports = check_non_negative_int(
        large_network_ports, "large_network_ports"
    )
    small_network_ports = check_non_negative_int(
        small_network_ports, "small_network_ports"
    )
    servers_per_large = check_non_negative_int(servers_per_large, "servers_per_large")
    servers_per_small = check_non_negative_int(servers_per_small, "servers_per_small")
    rng = as_rng(seed)

    stubs_large = num_large * large_network_ports
    stubs_small = num_small * small_network_ports
    expected = expected_cross_links(stubs_large, stubs_small)
    if cross_links is None:
        if cross_fraction is None:
            cross_fraction = 1.0
        if cross_fraction < 0:
            raise TopologyError(f"cross_fraction must be >= 0, got {cross_fraction}")
        cross_links = int(round(cross_fraction * expected))
    cross_links = check_non_negative_int(cross_links, "cross_links")
    max_cross = min(stubs_large, stubs_small, num_large * num_small)
    if cross_links > max_cross:
        if clamp_cross:
            cross_links = max_cross
        else:
            raise TopologyError(
                f"cross_links={cross_links} exceeds the feasible maximum {max_cross}"
            )

    large_nodes = list(range(num_large))
    small_nodes = list(range(num_large, num_large + num_small))
    label = name or (
        f"two-cluster(L={num_large}x{large_network_ports}, "
        f"S={num_small}x{small_network_ports}, X={cross_links})"
    )

    topo = Topology(label)
    for v in large_nodes:
        topo.add_switch(v, servers=servers_per_large, cluster=LARGE, switch_type=LARGE)
    for v in small_nodes:
        topo.add_switch(v, servers=servers_per_small, cluster=SMALL, switch_type=SMALL)

    budgets_large = {v: large_network_ports for v in large_nodes}
    budgets_small = {v: small_network_ports for v in small_nodes}
    # An unlucky stub spread can be unrealizable as a simple bipartite graph
    # (e.g. two cross links whose stubs all land on one switch pair), so the
    # spread and the matching retry together with fresh randomness.
    last_error: "Exception | None" = None
    for attempt in range(16):
        cross_a = _spread_cross_stubs(rng, budgets_large, cross_links, num_small)
        cross_b = _spread_cross_stubs(rng, budgets_small, cross_links, num_large)
        try:
            cross_edges = random_bipartite_matching(cross_a, cross_b, rng=rng)
        except GraphConstructionError as exc:
            last_error = exc
            continue
        break
    else:
        raise TopologyError(
            f"could not realize {cross_links} cross links after 16 attempts: "
            f"{last_error}"
        )
    for u, v in cross_edges:
        topo.add_link(u, v, capacity=capacity)

    for budgets, cross in ((budgets_large, cross_a), (budgets_small, cross_b)):
        remaining = {
            node: budget - cross.get(node, 0) for node, budget in budgets.items()
        }
        if any(value < 0 for value in remaining.values()):
            raise TopologyError("cross-stub assignment exceeded a port budget")
        intra_edges = random_graph_from_degrees(
            remaining, rng=rng, allow_remainder=True, clamp=True
        )
        for u, v in intra_edges:
            topo.add_link(u, v, capacity=capacity)

    return topo


def cluster_cut_capacity(topo: Topology) -> float:
    """Capacity (both directions) crossing the large/small cluster boundary.

    This is the paper's ``C̄`` for two-cluster topologies built by this
    module (or any topology whose nodes carry ``"large"``/``"small"``
    cluster labels).
    """
    large = topo.nodes_in_cluster(LARGE)
    small = topo.nodes_in_cluster(SMALL)
    if not large or not small:
        raise TopologyError(
            "topology does not carry two non-empty 'large'/'small' clusters"
        )
    return topo.cut_capacity(large, small)
