"""2D/3D torus topologies (supercomputer-style baselines)."""

from __future__ import annotations

from itertools import product

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.util.validation import check_non_negative_int, check_positive, check_positive_int


def torus_topology(
    dims: "tuple[int, ...]",
    servers_per_switch: int = 0,
    capacity: float = 1.0,
    name: "str | None" = None,
) -> Topology:
    """Build a wrap-around torus with the given dimension sizes.

    ``dims = (m, n)`` gives a 2D m-by-n torus; three entries give a 3D torus.
    Every dimension must be >= 3 so wrap links do not duplicate grid links.
    """
    if not dims:
        raise TopologyError("dims must contain at least one dimension")
    dims = tuple(check_positive_int(d, "dims entry") for d in dims)
    if any(d < 3 for d in dims):
        raise TopologyError(f"every torus dimension must be >= 3, got {dims}")
    servers_per_switch = check_non_negative_int(
        servers_per_switch, "servers_per_switch"
    )
    capacity = check_positive(capacity, "capacity")

    topo = Topology(name or f"torus{dims}")
    coords = list(product(*(range(d) for d in dims)))
    for coord in coords:
        topo.add_switch(coord, servers=servers_per_switch)
    for coord in coords:
        for axis, size in enumerate(dims):
            succ = list(coord)
            succ[axis] = (coord[axis] + 1) % size
            topo.add_link(coord, tuple(succ), capacity=capacity)
    return topo
