"""Heterogeneous random networks: diverse port counts and line-speeds.

Covers three constructions the paper evaluates:

- :func:`heterogeneous_random_topology` — arbitrary per-switch port budgets
  and server counts with an unbiased uniform-random interconnect (Figures 4
  and 5),
- :func:`power_law_port_counts` — switch port-count populations following a
  truncated discrete power law (Figure 5),
- :func:`mixed_linespeed_topology` — two clusters at a base line-speed with
  extra high-line-speed ports on the large switches, wired only to other
  high-speed ports (Figure 8).

Server-placement helpers implement the paper's proportional rule and the
β-power generalization (servers at switch i proportional to ``k_i ** beta``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.topology.builders import random_graph_from_degrees
from repro.topology.two_cluster import LARGE, two_cluster_random_topology
from repro.util.rng import as_rng
from repro.util.validation import (
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
)


def proportional_server_split(
    total_servers: int, weights: Mapping[object, float]
) -> dict:
    """Split ``total_servers`` across switches proportionally to ``weights``.

    Uses the largest-remainder (Hamilton) method so the result is integral
    and sums exactly to ``total_servers``. Zero or negative weights receive
    zero servers.
    """
    total_servers = check_non_negative_int(total_servers, "total_servers")
    positive = {node: float(w) for node, w in weights.items() if w > 0}
    if total_servers == 0:
        return {node: 0 for node in weights}
    if not positive:
        raise TopologyError("all weights are zero; cannot place servers")
    weight_sum = sum(positive.values())
    shares = {node: total_servers * w / weight_sum for node, w in positive.items()}
    placed = {node: int(np.floor(share)) for node, share in shares.items()}
    leftover = total_servers - sum(placed.values())
    remainders = sorted(
        positive,
        key=lambda node: (shares[node] - placed[node], repr(node)),
        reverse=True,
    )
    for node in remainders[:leftover]:
        placed[node] += 1
    result = {node: 0 for node in weights}
    result.update(placed)
    return result


def beta_server_distribution(
    port_counts: Mapping[object, int],
    total_servers: int,
    beta: float,
    reserve_ports: int = 1,
) -> dict:
    """Place servers proportionally to ``port_count ** beta`` (Figure 5).

    ``beta = 0`` gives every switch the same share regardless of its size;
    ``beta = 1`` is the paper's optimal proportional-to-degree rule. Each
    switch keeps at least ``reserve_ports`` ports for the network (a switch
    with zero network ports would be disconnected); overflow beyond a
    switch's capacity is redistributed to the remaining switches by repeated
    largest-remainder rounds.
    """
    beta = check_non_negative(beta, "beta")
    reserve_ports = check_non_negative_int(reserve_ports, "reserve_ports")
    capacities = {
        node: max(0, int(ports) - reserve_ports)
        for node, ports in port_counts.items()
    }
    if total_servers > sum(capacities.values()):
        raise TopologyError(
            f"cannot place {total_servers} servers; only "
            f"{sum(capacities.values())} server ports available"
        )
    weights = {node: float(ports) ** beta for node, ports in port_counts.items()}
    placed = {node: 0 for node in port_counts}
    remaining = total_servers
    active = dict(weights)
    while remaining > 0:
        split = proportional_server_split(remaining, active)
        progress = 0
        for node, extra in split.items():
            room = capacities[node] - placed[node]
            take = min(extra, room)
            placed[node] += take
            progress += take
        remaining -= progress
        active = {
            node: w
            for node, w in active.items()
            if capacities[node] - placed[node] > 0
        }
        if progress == 0:
            raise TopologyError("server placement failed to make progress")
    return placed


def heterogeneous_random_topology(
    port_counts: Mapping[object, int],
    servers: Mapping[object, int],
    capacity: float = 1.0,
    seed=None,
    name: "str | None" = None,
) -> Topology:
    """Random network over switches with arbitrary port budgets.

    Each switch ``v`` has ``port_counts[v]`` total ports; ``servers[v]`` of
    them attach servers and the remainder join an unbiased uniform-random
    simple interconnect (odd stub remainders stay unused). This is the
    "vanilla random" construction of §5.1.
    """
    rng = as_rng(seed)
    network_budget = {}
    for node, ports in port_counts.items():
        ports = check_non_negative_int(ports, f"port_counts[{node!r}]")
        attached = check_non_negative_int(
            int(servers.get(node, 0)), f"servers[{node!r}]"
        )
        if attached > ports:
            raise TopologyError(
                f"switch {node!r} has {attached} servers but only {ports} ports"
            )
        network_budget[node] = ports - attached

    topo = Topology(name or f"heterogeneous(n={len(network_budget)})")
    for node, ports in port_counts.items():
        topo.add_switch(node, servers=int(servers.get(node, 0)))
    edges = random_graph_from_degrees(
        network_budget, rng=rng, allow_remainder=True, clamp=True
    )
    for u, v in edges:
        topo.add_link(u, v, capacity=capacity)
    return topo


def power_law_port_counts(
    num_switches: int,
    exponent: float = 2.0,
    min_ports: int = 4,
    max_ports: int = 64,
    seed=None,
) -> list[int]:
    """Sample switch port counts from a truncated discrete power law.

    ``P(k) ∝ k ** -exponent`` for ``k`` in ``[min_ports, max_ports]``. Used
    to reproduce Figure 5's diverse switch populations.
    """
    num_switches = check_positive_int(num_switches, "num_switches")
    exponent = check_positive(exponent, "exponent")
    min_ports = check_positive_int(min_ports, "min_ports")
    max_ports = check_positive_int(max_ports, "max_ports")
    if max_ports < min_ports:
        raise ValueError(
            f"max_ports {max_ports} must be >= min_ports {min_ports}"
        )
    rng = as_rng(seed)
    support = np.arange(min_ports, max_ports + 1, dtype=np.float64)
    weights = support**-exponent
    weights /= weights.sum()
    draws = rng.choice(support, size=num_switches, p=weights)
    return [int(k) for k in draws]


def power_law_ports_with_mean(
    num_switches: int,
    target_mean: float,
    exponent: float = 2.0,
    min_ports: int = 4,
    seed=None,
    tolerance: float = 0.25,
) -> list[int]:
    """Power-law port counts adjusted so the sample mean is near a target.

    The paper's Figure 5 reports curves by *average* port count (6, 8, 10).
    This helper searches the truncation point ``max_ports`` so the sampled
    population's mean lands within ``tolerance`` of ``target_mean``, then
    returns that sample.
    """
    target_mean = check_positive(target_mean, "target_mean")
    if target_mean < min_ports:
        raise ValueError(
            f"target_mean {target_mean} must be >= min_ports {min_ports}"
        )
    rng = as_rng(seed)
    best: "list[int] | None" = None
    best_gap = float("inf")
    for max_ports in range(min_ports + 1, max(min_ports + 2, int(target_mean * 12))):
        support = np.arange(min_ports, max_ports + 1, dtype=np.float64)
        weights = support**-exponent
        weights /= weights.sum()
        expected = float((support * weights).sum())
        gap = abs(expected - target_mean)
        if gap < best_gap:
            best_gap = gap
            draws = rng.choice(support, size=num_switches, p=weights)
            best = [int(k) for k in draws]
        if expected > target_mean and gap > best_gap:
            break
    assert best is not None
    if best_gap > tolerance + abs(target_mean) * 0.25:
        raise TopologyError(
            f"could not match target mean {target_mean} "
            f"(closest distribution mean gap {best_gap:.2f})"
        )
    return best


def power_law_random_topology(
    num_switches: int,
    exponent: float = 2.0,
    min_ports: int = 4,
    max_ports: int = 64,
    total_servers: "int | None" = None,
    beta: float = 1.0,
    capacity: float = 1.0,
    ports_seed: "int | None" = None,
    seed=None,
    name: "str | None" = None,
) -> Topology:
    """Random network over a power-law switch population (Figure 5).

    Samples per-switch port counts from the truncated discrete power law
    of :func:`power_law_port_counts`, places ``total_servers`` servers
    proportionally to ``port_count ** beta`` (the paper's optimal rule at
    ``beta = 1``), and wires the remaining ports uniformly at random.

    ``ports_seed`` (when given) pins the sampled port-count *population*
    independently of the wiring ``seed``: sweeps and designers can then
    hold the equipment mix fixed — same bill of switches, hence the same
    cost — while re-rolling the interconnect per replicate. Without it
    the population is drawn from ``seed`` like everything else.

    ``total_servers`` defaults to one third of the total port count,
    leaving the majority of ports for the network fabric.
    """
    num_switches = check_positive_int(num_switches, "num_switches")
    rng = as_rng(seed)
    ports_rng = as_rng(ports_seed) if ports_seed is not None else rng
    counts = power_law_port_counts(
        num_switches,
        exponent=exponent,
        min_ports=min_ports,
        max_ports=max_ports,
        seed=ports_rng,
    )
    port_counts = {f"s{i}": ports for i, ports in enumerate(counts)}
    if total_servers is None:
        total_servers = total_ports(port_counts) // 3
    servers = beta_server_distribution(port_counts, total_servers, beta=beta)
    return heterogeneous_random_topology(
        port_counts,
        servers,
        capacity=capacity,
        seed=rng,
        name=name
        or (
            f"power-law(n={num_switches}, a={exponent}, "
            f"ports={min_ports}..{max_ports})"
        ),
    )


def matched_random_topology(
    k: int, capacity: float = 1.0, seed=None, name: "str | None" = None
) -> Topology:
    """Random fabric from exactly a k-ary fat-tree's equipment.

    ``5k^2/4`` switches of ``k`` ports each; ``k^3/4`` servers spread as
    evenly as possible; all remaining ports in a uniform-random
    interconnect. The equipment bill — and hence the equipment cost —
    is identical to :func:`~repro.topology.fattree.fat_tree_topology`
    at the same ``k``, which makes this the paper's equal-cost
    random-graph comparison point.
    """
    k = check_positive_int(k, "k")
    if k % 2:
        raise TopologyError(f"k must be even, got {k}")
    num_switches = 5 * k * k // 4
    num_servers = k * k * k // 4
    base, remainder = divmod(num_servers, num_switches)
    port_counts = {f"s{i}": k for i in range(num_switches)}
    servers = {
        f"s{i}": base + (1 if i < remainder else 0)
        for i in range(num_switches)
    }
    return heterogeneous_random_topology(
        port_counts,
        servers,
        capacity=capacity,
        seed=seed,
        name=name or f"matched-random(k={k})",
    )


def mixed_linespeed_topology(
    num_large: int,
    large_low_ports: int,
    num_small: int,
    small_low_ports: int,
    servers_per_large: int,
    servers_per_small: int,
    high_ports_per_large: int,
    high_speed: float,
    cross_fraction: float = 1.0,
    low_speed: float = 1.0,
    seed=None,
    name: "str | None" = None,
) -> Topology:
    """Two-cluster network plus a high-line-speed mesh among large switches.

    Reproduces §5.2's setting: small switches carry only low-speed ports;
    each large switch additionally has ``high_ports_per_large`` ports of
    capacity ``high_speed`` that connect *only* to other high-speed ports,
    i.e. they form a random ``high_ports_per_large``-regular graph over the
    large cluster (link capacities aggregate when a high-speed link lands on
    a pair already joined at low speed).

    ``*_low_ports`` are network ports (after servers); servers do not consume
    these budgets.
    """
    rng = as_rng(seed)
    high_ports_per_large = check_non_negative_int(
        high_ports_per_large, "high_ports_per_large"
    )
    if high_ports_per_large >= num_large and high_ports_per_large > 0:
        raise TopologyError(
            f"high_ports_per_large {high_ports_per_large} must be < num_large "
            f"{num_large}"
        )
    if high_ports_per_large > 0:
        high_speed = check_positive(high_speed, "high_speed")

    topo = two_cluster_random_topology(
        num_large=num_large,
        large_network_ports=large_low_ports,
        num_small=num_small,
        small_network_ports=small_low_ports,
        servers_per_large=servers_per_large,
        servers_per_small=servers_per_small,
        cross_fraction=cross_fraction,
        capacity=low_speed,
        seed=rng,
        name=name
        or (
            f"mixed-speed(L={num_large}, S={num_small}, "
            f"H={high_ports_per_large}x{high_speed})"
        ),
    )
    if high_ports_per_large > 0:
        large_nodes = topo.nodes_in_cluster(LARGE)
        degrees = {v: high_ports_per_large for v in large_nodes}
        edges = random_graph_from_degrees(degrees, rng=rng, allow_remainder=True)
        for u, v in edges:
            topo.add_link(u, v, capacity=high_speed)
    return topo


def total_ports(port_counts: "Mapping[object, int] | Sequence[int]") -> int:
    """Total port count across a switch population (mapping or sequence)."""
    if isinstance(port_counts, Mapping):
        return int(sum(int(v) for v in port_counts.values()))
    return int(sum(int(v) for v in port_counts))
