"""Complete graphs and complete bipartite graphs.

The complete graph is the densest homogeneous design point (useful for
verifying that throughput bounds are met with equality); the complete
bipartite graph models VL2's aggregation-core fabric in isolation.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.util.validation import check_non_negative_int, check_positive, check_positive_int


def complete_topology(
    num_switches: int,
    servers_per_switch: int = 0,
    capacity: float = 1.0,
    name: "str | None" = None,
) -> Topology:
    """Build the complete graph on ``num_switches`` switches."""
    num_switches = check_positive_int(num_switches, "num_switches")
    servers_per_switch = check_non_negative_int(
        servers_per_switch, "servers_per_switch"
    )
    capacity = check_positive(capacity, "capacity")
    topo = Topology(name or f"complete(N={num_switches})")
    for v in range(num_switches):
        topo.add_switch(v, servers=servers_per_switch)
    for u in range(num_switches):
        for v in range(u + 1, num_switches):
            topo.add_link(u, v, capacity=capacity)
    return topo


def complete_bipartite_topology(
    num_left: int,
    num_right: int,
    servers_per_left: int = 0,
    servers_per_right: int = 0,
    capacity: float = 1.0,
    name: "str | None" = None,
) -> Topology:
    """Build the complete bipartite graph K(num_left, num_right)."""
    num_left = check_positive_int(num_left, "num_left")
    num_right = check_positive_int(num_right, "num_right")
    capacity = check_positive(capacity, "capacity")
    topo = Topology(name or f"K({num_left},{num_right})")
    lefts = [f"l{i}" for i in range(num_left)]
    rights = [f"r{i}" for i in range(num_right)]
    for node in lefts:
        topo.add_switch(node, servers=servers_per_left, cluster="left")
    for node in rights:
        topo.add_switch(node, servers=servers_per_right, cluster="right")
    for u in lefts:
        for v in rights:
            topo.add_link(u, v, capacity=capacity)
    return topo
