"""Three-tier k-ary fat-tree (folded Clos) of Al-Fares et al., SIGCOMM 2008.

The fat-tree is the canonical structured baseline the paper (and Jellyfish)
compares against: ``k`` pods of ``k/2`` edge and ``k/2`` aggregation
switches each, plus ``(k/2)^2`` core switches, all with ``k`` ports, giving
``k^3 / 4`` servers at full bisection bandwidth.
"""

from __future__ import annotations

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.util.validation import check_positive, check_positive_int


def fat_tree_topology(
    k: int,
    capacity: float = 1.0,
    servers_per_edge: "int | None" = None,
    name: "str | None" = None,
) -> Topology:
    """Build a k-ary fat-tree.

    Parameters
    ----------
    k:
        Port count of every switch; must be even.
    servers_per_edge:
        Servers attached to each edge switch; defaults to ``k / 2`` (the
        full-bisection configuration).
    """
    check_positive_int(k, "k")
    if k % 2 != 0:
        raise TopologyError(f"fat-tree arity k must be even, got {k}")
    capacity = check_positive(capacity, "capacity")
    half = k // 2
    if servers_per_edge is None:
        servers_per_edge = half
    if servers_per_edge > half:
        raise TopologyError(
            f"servers_per_edge {servers_per_edge} exceeds edge down-ports {half}"
        )

    topo = Topology(name or f"fat-tree(k={k})")
    cores = [f"core{i}" for i in range(half * half)]
    for core in cores:
        topo.add_switch(core, servers=0, switch_type="core")
    for pod in range(k):
        edges = [f"p{pod}e{i}" for i in range(half)]
        aggs = [f"p{pod}a{i}" for i in range(half)]
        for edge in edges:
            topo.add_switch(edge, servers=servers_per_edge, switch_type="edge")
        for agg in aggs:
            topo.add_switch(agg, servers=0, switch_type="agg")
        for edge in edges:
            for agg in aggs:
                topo.add_link(edge, agg, capacity=capacity)
        # Aggregation switch i of each pod connects to core group i.
        for i, agg in enumerate(aggs):
            for j in range(half):
                topo.add_link(agg, cores[i * half + j], capacity=capacity)
    return topo
