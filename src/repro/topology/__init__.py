"""Topology substrate: capacitated switch graphs and generators.

The :class:`~repro.topology.base.Topology` model represents a switch-level
network: switches are nodes, links carry capacities (parallel links collapse
into summed capacity), and each switch records how many servers attach to it.

Generators cover every family the paper uses or compares against:

- random regular graphs (Jellyfish-style construction),
- two-cluster random graphs with exact cross-cluster link control,
- heterogeneous networks (two port-count classes, power-law port counts,
  mixed line-speeds),
- VL2 and the paper's rewired VL2,
- classical baselines (fat-tree, folded Clos, hypercube, torus, complete
  graph, small-world ring).
"""

from repro.topology.base import Link, Topology
from repro.topology.builders import (
    is_graphical,
    random_bipartite_matching,
    random_graph_from_degrees,
)
from repro.topology.random_regular import random_regular_topology
from repro.topology.two_cluster import (
    expected_cross_links,
    two_cluster_random_topology,
)
from repro.topology.heterogeneous import (
    heterogeneous_random_topology,
    mixed_linespeed_topology,
    power_law_port_counts,
    proportional_server_split,
)
from repro.topology.vl2 import rewired_vl2_topology, vl2_topology
from repro.topology.fattree import fat_tree_topology
from repro.topology.clos import folded_clos_topology, leaf_spine_topology
from repro.topology.hypercube import hypercube_topology
from repro.topology.torus import torus_topology
from repro.topology.complete import complete_bipartite_topology, complete_topology
from repro.topology.smallworld import small_world_topology
from repro.topology.bcube import bcube_topology
from repro.topology.flattened_butterfly import flattened_butterfly_topology
from repro.topology.dragonfly import dragonfly_topology
from repro.topology.mutation import (
    DoubleEdgeSwap,
    apply_double_edge_swap,
    double_edge_swap,
    random_rewire,
    rewire_link,
    sample_double_edge_swap,
)
from repro.topology.expansion import add_switch_by_link_swaps, expand_topology
from repro.topology.serialization import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
    topology_to_dot,
)
from repro.topology.registry import available_topologies, make_topology

__all__ = [
    "Link",
    "Topology",
    "is_graphical",
    "random_bipartite_matching",
    "random_graph_from_degrees",
    "random_regular_topology",
    "expected_cross_links",
    "two_cluster_random_topology",
    "heterogeneous_random_topology",
    "mixed_linespeed_topology",
    "power_law_port_counts",
    "proportional_server_split",
    "vl2_topology",
    "rewired_vl2_topology",
    "fat_tree_topology",
    "folded_clos_topology",
    "leaf_spine_topology",
    "hypercube_topology",
    "torus_topology",
    "complete_topology",
    "complete_bipartite_topology",
    "small_world_topology",
    "bcube_topology",
    "flattened_butterfly_topology",
    "dragonfly_topology",
    "DoubleEdgeSwap",
    "apply_double_edge_swap",
    "double_edge_swap",
    "random_rewire",
    "rewire_link",
    "sample_double_edge_swap",
    "add_switch_by_link_swaps",
    "expand_topology",
    "load_topology",
    "save_topology",
    "topology_from_dict",
    "topology_to_dict",
    "topology_to_dot",
    "available_topologies",
    "make_topology",
]
