"""Random regular graphs — the paper's RRG(N, k, r) construct.

An RRG(N, k, r) is a network of ``N`` switches, each with ``k`` ports of
which ``r`` connect to other switches and ``k - r`` attach servers, with the
switch-to-switch graph sampled from (approximately) the uniform distribution
over r-regular simple graphs. This is the Jellyfish topology and the
building block for every heterogeneous design in the paper.
"""

from __future__ import annotations

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.topology.builders import random_graph_from_degrees
from repro.util.rng import as_rng
from repro.util.validation import check_non_negative_int, check_positive_int


def random_regular_topology(
    num_switches: int,
    network_degree: int,
    servers_per_switch: int = 0,
    capacity: float = 1.0,
    seed=None,
    name: "str | None" = None,
    require_connected: bool = True,
    max_attempts: int = 16,
) -> Topology:
    """Build an RRG(N, k, r) topology.

    Parameters
    ----------
    num_switches:
        ``N``, the number of switches.
    network_degree:
        ``r``, switch-to-switch ports per switch. Must satisfy
        ``r < num_switches``; if ``N * r`` is odd one stub is left unused
        (matching physical deployments with a stray port).
    servers_per_switch:
        Servers attached to every switch (``k - r`` in the paper's notation).
    capacity:
        Capacity of each switch-to-switch link (per direction).
    require_connected:
        Resample until the graph is connected (random regular graphs with
        ``r >= 3`` are connected with high probability, so this rarely
        triggers more than once).

    Returns
    -------
    Topology
        Switches are integers ``0 .. N-1``.
    """
    num_switches = check_positive_int(num_switches, "num_switches")
    network_degree = check_non_negative_int(network_degree, "network_degree")
    servers_per_switch = check_non_negative_int(
        servers_per_switch, "servers_per_switch"
    )
    if network_degree >= num_switches:
        raise TopologyError(
            f"network_degree {network_degree} must be < num_switches {num_switches}"
        )
    rng = as_rng(seed)
    label = name or f"rrg(N={num_switches},r={network_degree})"

    last: "Topology | None" = None
    for _ in range(max(1, max_attempts)):
        degrees = {v: network_degree for v in range(num_switches)}
        edges = random_graph_from_degrees(degrees, rng=rng, allow_remainder=True)
        topo = Topology(label)
        for v in range(num_switches):
            topo.add_switch(v, servers=servers_per_switch)
        for u, v in edges:
            topo.add_link(u, v, capacity=capacity)
        last = topo
        if not require_connected or network_degree == 0 or topo.is_connected():
            return topo
    raise TopologyError(
        f"could not build a connected RRG(N={num_switches}, r={network_degree}) "
        f"in {max_attempts} attempts"
    )
