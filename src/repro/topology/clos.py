"""Folded-Clos / leaf-spine topologies.

Simple two-tier Clos fabrics used as structured comparison points and as
substrates in tests: every leaf connects to every spine. Oversubscription is
controlled by the ratio of attached servers to uplink capacity.
"""

from __future__ import annotations

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.util.validation import check_positive, check_positive_int


def leaf_spine_topology(
    num_leaves: int,
    num_spines: int,
    servers_per_leaf: int,
    link_capacity: float = 1.0,
    links_per_pair: int = 1,
    name: "str | None" = None,
) -> Topology:
    """Build a leaf-spine (two-tier folded Clos) network.

    Every leaf connects to every spine with ``links_per_pair`` parallel links
    of ``link_capacity`` each (collapsed into one link of the aggregate
    capacity).
    """
    num_leaves = check_positive_int(num_leaves, "num_leaves")
    num_spines = check_positive_int(num_spines, "num_spines")
    check_positive_int(links_per_pair, "links_per_pair")
    link_capacity = check_positive(link_capacity, "link_capacity")
    if servers_per_leaf < 0:
        raise TopologyError(
            f"servers_per_leaf must be >= 0, got {servers_per_leaf}"
        )

    topo = Topology(name or f"leaf-spine({num_leaves}x{num_spines})")
    leaves = [f"leaf{i}" for i in range(num_leaves)]
    spines = [f"spine{i}" for i in range(num_spines)]
    for leaf in leaves:
        topo.add_switch(leaf, servers=servers_per_leaf, switch_type="leaf")
    for spine in spines:
        topo.add_switch(spine, servers=0, switch_type="spine")
    for leaf in leaves:
        for spine in spines:
            topo.add_link(
                leaf, spine, capacity=link_capacity * links_per_pair
            )
    return topo


def folded_clos_topology(
    num_leaves: int,
    num_spines: int,
    servers_per_leaf: int,
    oversubscription: float = 1.0,
    name: "str | None" = None,
) -> Topology:
    """Leaf-spine sized by an oversubscription target.

    ``oversubscription`` is the ratio of leaf server capacity to leaf uplink
    capacity; 1.0 is a non-blocking fabric. Uplink capacity per leaf-spine
    pair is ``servers_per_leaf / (oversubscription * num_spines)``.
    """
    check_positive(oversubscription, "oversubscription")
    check_positive_int(servers_per_leaf, "servers_per_leaf")
    per_pair = servers_per_leaf / (oversubscription * num_spines)
    return leaf_spine_topology(
        num_leaves,
        num_spines,
        servers_per_leaf,
        link_capacity=per_pair,
        name=name
        or f"folded-clos({num_leaves}x{num_spines}, 1:{oversubscription:g})",
    )
