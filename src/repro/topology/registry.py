"""Name-based topology factory registry.

Lets examples, benchmarks and the CLI construct topologies from string
names, e.g. ``make_topology("rrg", num_switches=40, network_degree=10)``.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.topology.bcube import bcube_topology
from repro.topology.clos import folded_clos_topology, leaf_spine_topology
from repro.topology.complete import complete_bipartite_topology, complete_topology
from repro.topology.dragonfly import dragonfly_topology
from repro.topology.fattree import fat_tree_topology
from repro.topology.flattened_butterfly import flattened_butterfly_topology
from repro.topology.heterogeneous import (
    heterogeneous_random_topology,
    matched_random_topology,
    mixed_linespeed_topology,
    power_law_random_topology,
)
from repro.topology.hypercube import hypercube_topology
from repro.topology.random_regular import random_regular_topology
from repro.topology.smallworld import small_world_topology
from repro.topology.torus import torus_topology
from repro.topology.two_cluster import two_cluster_random_topology
from repro.topology.vl2 import rewired_vl2_topology, vl2_topology

def _optimized_topology(**kwargs) -> Topology:
    # Imported lazily: repro.search depends on the topology package, so a
    # top-level import here would be circular.
    from repro.search.engine import optimized_topology

    return optimized_topology(**kwargs)


def _grown_topology(**kwargs) -> Topology:
    # Imported lazily for the same reason: repro.growth builds on the
    # topology package (expansion, RRG, fat-tree).
    from repro.growth.factory import grown_topology

    return grown_topology(**kwargs)


_REGISTRY: dict[str, Callable[..., Topology]] = {
    "rrg": random_regular_topology,
    "optimized": _optimized_topology,
    "grown": _grown_topology,
    "random-regular": random_regular_topology,
    "jellyfish": random_regular_topology,
    "two-cluster": two_cluster_random_topology,
    "heterogeneous": heterogeneous_random_topology,
    "power-law": power_law_random_topology,
    "matched-random": matched_random_topology,
    "mixed-linespeed": mixed_linespeed_topology,
    "vl2": vl2_topology,
    "rewired-vl2": rewired_vl2_topology,
    "fat-tree": fat_tree_topology,
    "leaf-spine": leaf_spine_topology,
    "folded-clos": folded_clos_topology,
    "hypercube": hypercube_topology,
    "torus": torus_topology,
    "complete": complete_topology,
    "complete-bipartite": complete_bipartite_topology,
    "small-world": small_world_topology,
    "bcube": bcube_topology,
    "flattened-butterfly": flattened_butterfly_topology,
    "dragonfly": dragonfly_topology,
}


def available_topologies() -> list[str]:
    """Sorted names accepted by :func:`make_topology`."""
    return sorted(_REGISTRY)


def make_topology(kind: str, **kwargs) -> Topology:
    """Construct a topology by registry name.

    Raises :class:`~repro.exceptions.TopologyError` for unknown names; the
    per-family keyword arguments are documented on each factory function.
    """
    try:
        factory = _REGISTRY[kind]
    except KeyError:
        known = ", ".join(available_topologies())
        raise TopologyError(f"unknown topology {kind!r}; known kinds: {known}")
    return factory(**kwargs)


def factory_accepts_seed(kind: str) -> bool:
    """Whether ``kind``'s factory takes a ``seed`` keyword.

    Structured families (fat-tree, VL2, hypercube, ...) are deterministic
    and accept no seed; randomized families take one directly or via
    ``**kwargs``. Unknown kinds return ``True`` so the real error
    surfaces in :func:`make_topology` with its clear message.
    """
    factory = _REGISTRY.get(kind)
    if factory is None:
        return True
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return True
    if "seed" in signature.parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    )


def register_topology(kind: str, factory: Callable[..., Topology]) -> None:
    """Register a custom topology factory under ``kind``.

    Existing names cannot be overwritten (raise instead of silently
    shadowing a built-in).
    """
    if kind in _REGISTRY:
        raise TopologyError(f"topology kind {kind!r} is already registered")
    _REGISTRY[kind] = factory
