"""VL2 and the paper's rewired VL2 (§7).

VL2 [Greenberg et al., SIGCOMM 2009] is a three-layer Clos-style design:

- each top-of-rack (ToR) switch attaches 20 servers at 1 GbE and has two
  10 GbE uplinks to two different aggregation switches,
- aggregation switches have ``DA`` 10 GbE ports: half down to ToRs, half up
  to intermediate (core) switches,
- core switches have ``DI`` 10 GbE ports forming a complete bipartite graph
  with the aggregation layer.

This yields ``DI`` aggregation switches, ``DA / 2`` core switches, and
``DA * DI / 4`` ToRs supported at full throughput.

The paper's improvement keeps exactly the same switches but (a) spreads the
ToR uplinks across aggregation *and* core switches proportionally to their
port counts, and (b) wires all remaining 10 GbE ports uniformly at random.
:func:`rewired_vl2_topology` implements that construction with a variable
ToR count so callers can binary-search the largest count supported at full
throughput (see :mod:`repro.core.vl2_improvement`).
"""

from __future__ import annotations

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.topology.builders import (
    random_bipartite_matching,
    random_graph_from_degrees,
)
from repro.topology.heterogeneous import proportional_server_split
from repro.util.rng import as_rng
from repro.util.validation import check_positive, check_positive_int

TOR = "tor"
AGG = "agg"
CORE = "core"

#: Default server count per ToR and line-speeds, from the VL2 paper.
DEFAULT_SERVERS_PER_TOR = 20
DEFAULT_FABRIC_CAPACITY = 10.0
DEFAULT_TOR_UPLINKS = 2


def _validate_vl2_params(da: int, di: int) -> None:
    check_positive_int(da, "da")
    check_positive_int(di, "di")
    if da % 2 != 0:
        raise TopologyError(f"aggregation degree da must be even, got {da}")
    if di % 2 != 0:
        raise TopologyError(f"core degree di must be even, got {di}")
    if da * di % 4 != 0:
        raise TopologyError(f"da * di must be divisible by 4, got {da}*{di}")


def vl2_node_names(da: int, di: int, num_tors: "int | None" = None):
    """Switch id lists ``(tors, aggs, cores)`` for a VL2 of the given size."""
    if num_tors is None:
        num_tors = (da * di) // 4
    tors = [f"tor{i}" for i in range(num_tors)]
    aggs = [f"agg{i}" for i in range(di)]
    cores = [f"core{i}" for i in range(da // 2)]
    return tors, aggs, cores


def vl2_topology(
    da: int,
    di: int,
    servers_per_tor: int = DEFAULT_SERVERS_PER_TOR,
    fabric_capacity: float = DEFAULT_FABRIC_CAPACITY,
    num_tors: "int | None" = None,
    name: "str | None" = None,
) -> Topology:
    """Build the standard VL2 topology for aggregation/core degrees DA, DI.

    Link capacities are in units of the server line-speed (1 GbE = 1.0), so
    the default 10 GbE fabric links carry capacity 10. "Full throughput"
    then means every server flow sustains rate >= 1.0.

    ``num_tors`` defaults to the design maximum ``DA * DI / 4``; smaller
    counts keep the round-robin uplink spreading (used when searching how
    many ToRs a workload actually sustains).
    """
    _validate_vl2_params(da, di)
    servers_per_tor = check_positive_int(servers_per_tor, "servers_per_tor")
    fabric_capacity = check_positive(fabric_capacity, "fabric_capacity")

    max_tors = (da * di) // 4
    if num_tors is None:
        num_tors = max_tors
    num_tors = check_positive_int(num_tors, "num_tors")
    if num_tors > max_tors:
        raise TopologyError(
            f"VL2(DA={da}, DI={di}) hosts at most {max_tors} ToRs, "
            f"got {num_tors}"
        )
    tors, aggs, cores = vl2_node_names(da, di, num_tors=num_tors)
    topo = Topology(name or f"vl2(DA={da}, DI={di})")
    for tor in tors:
        topo.add_switch(tor, servers=servers_per_tor, switch_type=TOR, cluster=TOR)
    for agg in aggs:
        topo.add_switch(agg, servers=0, switch_type=AGG, cluster="fabric")
    for core in cores:
        topo.add_switch(core, servers=0, switch_type=CORE, cluster="fabric")

    # Each ToR's two uplinks go to consecutive aggregation switches; the
    # round-robin spreads exactly DA/2 ToR links onto every aggregation
    # switch.
    for i in range(num_tors):
        first = (2 * i) % di
        second = (2 * i + 1) % di
        topo.add_link(tors[i], aggs[first], capacity=fabric_capacity)
        topo.add_link(tors[i], aggs[second], capacity=fabric_capacity)

    # Complete bipartite aggregation <-> core fabric.
    for agg in aggs:
        for core in cores:
            topo.add_link(agg, core, capacity=fabric_capacity)
    return topo


def rewired_vl2_topology(
    da: int,
    di: int,
    num_tors: int,
    servers_per_tor: int = DEFAULT_SERVERS_PER_TOR,
    fabric_capacity: float = DEFAULT_FABRIC_CAPACITY,
    tor_uplinks: int = DEFAULT_TOR_UPLINKS,
    seed=None,
    name: "str | None" = None,
) -> Topology:
    """Rewire VL2's switch equipment per §7 with a variable ToR count.

    The fabric equipment is identical to ``vl2_topology(da, di)``: ``di``
    aggregation switches with ``da`` ports and ``da / 2`` core switches with
    ``di`` ports. ToR uplinks are spread across *all* fabric switches in
    proportion to their port counts (the §5.1 proportional rule, with ToRs
    playing the role of servers), and every remaining fabric port is wired
    uniformly at random.

    Raises :class:`TopologyError` when ``num_tors`` needs more fabric ports
    than exist.
    """
    _validate_vl2_params(da, di)
    num_tors = check_positive_int(num_tors, "num_tors")
    tor_uplinks = check_positive_int(tor_uplinks, "tor_uplinks")
    servers_per_tor = check_positive_int(servers_per_tor, "servers_per_tor")
    fabric_capacity = check_positive(fabric_capacity, "fabric_capacity")
    rng = as_rng(seed)

    tors, aggs, cores = vl2_node_names(da, di, num_tors=num_tors)
    ports = {agg: da for agg in aggs}
    ports.update({core: di for core in cores})
    total_fabric_ports = sum(ports.values())
    uplink_count = num_tors * tor_uplinks
    if uplink_count > total_fabric_ports:
        raise TopologyError(
            f"{num_tors} ToRs need {uplink_count} fabric ports but only "
            f"{total_fabric_ports} exist"
        )

    topo = Topology(name or f"rewired-vl2(DA={da}, DI={di}, T={num_tors})")
    for tor in tors:
        topo.add_switch(tor, servers=servers_per_tor, switch_type=TOR, cluster=TOR)
    for agg in aggs:
        topo.add_switch(agg, servers=0, switch_type=AGG, cluster="fabric")
    for core in cores:
        topo.add_switch(core, servers=0, switch_type=CORE, cluster="fabric")

    # ToR uplinks land on fabric switches proportionally to port counts.
    quotas = proportional_server_split(uplink_count, ports)
    over = [sw for sw, q in quotas.items() if q > ports[sw]]
    if over:
        raise TopologyError(
            f"uplink quota exceeds port budget at {over!r}; "
            "reduce num_tors or tor_uplinks"
        )
    tor_stubs = {tor: tor_uplinks for tor in tors}
    fabric_stubs = {sw: q for sw, q in quotas.items() if q > 0}
    uplink_edges = random_bipartite_matching(tor_stubs, fabric_stubs, rng=rng)
    for u, v in uplink_edges:
        topo.add_link(u, v, capacity=fabric_capacity)

    # Remaining fabric ports interconnect uniformly at random.
    remaining = {sw: ports[sw] - quotas.get(sw, 0) for sw in ports}
    fabric_edges = random_graph_from_degrees(remaining, rng=rng, allow_remainder=True)
    for u, v in fabric_edges:
        topo.add_link(u, v, capacity=fabric_capacity)
    return topo


def vl2_equipment_summary(topo: Topology) -> dict:
    """Count switches by type — sanity helper for equipment-equality checks."""
    summary = {TOR: 0, AGG: 0, CORE: 0, "other": 0}
    for node in topo.switches:
        kind = topo.switch_type_of(node)
        if kind in summary:
            summary[kind] += 1
        else:
            summary["other"] += 1
    return summary
