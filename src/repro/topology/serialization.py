"""Topology serialization: JSON round-trip and Graphviz DOT export.

A downstream user needs to persist generated topologies (they are random!)
and inspect them visually; this module provides a stable JSON schema and a
DOT writer that color-groups switches by cluster/type.
"""

from __future__ import annotations

import json
from typing import IO

from repro.exceptions import TopologyError
from repro.topology.base import Topology

#: Version tag embedded in every serialized topology.
SCHEMA_VERSION = 1


def encode_node(node):
    """Encode a switch id as a JSON-safe value.

    int and str ids are preserved natively; tuple ids become tagged lists
    so :func:`decode_node` can round-trip them. Other id types raise.
    Shared by topology serialization, flow-result serialization, and the
    pipeline's content fingerprints.
    """
    if isinstance(node, (int, str)):
        return node
    if isinstance(node, tuple):
        return {"tuple": [encode_node(part) for part in node]}
    raise TopologyError(
        f"cannot serialize switch id of type {type(node).__name__}: {node!r}"
    )


def decode_node(value):
    """Invert :func:`encode_node`."""
    if isinstance(value, dict) and "tuple" in value:
        return tuple(decode_node(part) for part in value["tuple"])
    return value


def topology_to_dict(topo: Topology) -> dict:
    """Convert a topology to a JSON-safe dictionary.

    Node ids are encoded via :func:`encode_node`: int and str ids are
    preserved natively; tuple ids become tagged lists. Other id types
    raise.
    """
    encode = encode_node
    switches = []
    for node in topo.switches:
        switches.append(
            {
                "id": encode(node),
                "servers": topo.servers_at(node),
                "cluster": topo.cluster_of(node),
                "switch_type": topo.switch_type_of(node),
            }
        )
    links = [
        {"u": encode(link.u), "v": encode(link.v), "capacity": link.capacity}
        for link in topo.links
    ]
    return {
        "schema_version": SCHEMA_VERSION,
        "name": topo.name,
        "switches": switches,
        "links": links,
    }


def topology_from_dict(payload: dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise TopologyError(
            f"unsupported schema version {version!r} (expected {SCHEMA_VERSION})"
        )

    decode = decode_node
    topo = Topology(payload.get("name", "topology"))
    for entry in payload["switches"]:
        topo.add_switch(
            decode(entry["id"]),
            servers=int(entry.get("servers", 0)),
            cluster=entry.get("cluster"),
            switch_type=entry.get("switch_type"),
        )
    for entry in payload["links"]:
        topo.add_link(
            decode(entry["u"]), decode(entry["v"]), capacity=float(entry["capacity"])
        )
    return topo


def save_topology(topo: Topology, path_or_file: "str | IO[str]") -> None:
    """Write a topology as JSON to a path or open text file."""
    payload = topology_to_dict(topo)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    else:
        json.dump(payload, path_or_file, indent=2, sort_keys=True)


def load_topology(path_or_file: "str | IO[str]") -> Topology:
    """Read a topology from a JSON path or open text file."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(path_or_file)
    return topology_from_dict(payload)


_PALETTE = (
    "lightblue",
    "lightsalmon",
    "palegreen",
    "plum",
    "khaki",
    "lightgray",
)


def topology_to_dot(topo: Topology, max_width_capacity: "float | None" = None) -> str:
    """Render the topology as Graphviz DOT.

    Switches are colored by cluster label (falling back to switch type);
    edge pen widths scale with capacity. The output is plain text suitable
    for ``dot -Tpng`` or any Graphviz viewer.
    """
    groups = topo.clusters()
    color_of: dict = {}
    for index, group in enumerate(groups):
        color_of[group] = _PALETTE[index % len(_PALETTE)]

    if max_width_capacity is None:
        max_width_capacity = max(
            (link.capacity for link in topo.links), default=1.0
        )

    def node_id(node) -> str:
        return json.dumps(repr(node))

    lines = [f"graph {json.dumps(topo.name)} {{", "  node [style=filled];"]
    for node in topo.switches:
        group = topo.cluster_of(node) or topo.switch_type_of(node)
        color = color_of.get(group, "white")
        label = f"{node!r}\\n{topo.servers_at(node)} srv"
        lines.append(
            f"  {node_id(node)} [label={json.dumps(label)}, fillcolor={color}];"
        )
    for link in topo.links:
        width = 1.0 + 3.0 * link.capacity / max_width_capacity
        lines.append(
            f"  {node_id(link.u)} -- {node_id(link.v)} "
            f"[penwidth={width:.2f}, label={json.dumps(f'{link.capacity:g}')}];"
        )
    lines.append("}")
    return "\n".join(lines)
