"""Dragonfly — Kim, Dally, Scott, Abts (ISCA '08).

The canonical hierarchical direct network: groups of ``a`` routers, each
router with ``p`` attached servers and ``h`` global ports; routers within a
group form a complete graph, and the ``a * h`` global links of each group
connect it to every other group (the balanced configuration uses
``g = a * h + 1`` groups, exactly one global link per group pair).

Included as a structured point of comparison for the homogeneous
optimality-gap experiments.
"""

from __future__ import annotations

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.util.validation import check_non_negative_int, check_positive, check_positive_int


def dragonfly_topology(
    routers_per_group: int,
    servers_per_router: int = 1,
    global_ports_per_router: int = 1,
    num_groups: "int | None" = None,
    capacity: float = 1.0,
    name: "str | None" = None,
) -> Topology:
    """Build a (balanced by default) dragonfly.

    Parameters
    ----------
    routers_per_group:
        ``a`` — routers per group (complete graph within a group).
    servers_per_router:
        ``p`` — attached servers per router.
    global_ports_per_router:
        ``h`` — global links per router.
    num_groups:
        ``g``; defaults to the balanced ``a * h + 1``. Must satisfy
        ``g - 1 <= a * h`` so every group pair can get at least one global
        link; links are assigned round-robin over each group's routers.
    """
    a = check_positive_int(routers_per_group, "routers_per_group")
    p = check_non_negative_int(servers_per_router, "servers_per_router")
    h = check_positive_int(global_ports_per_router, "global_ports_per_router")
    capacity = check_positive(capacity, "capacity")
    if num_groups is None:
        num_groups = a * h + 1
    g = check_positive_int(num_groups, "num_groups")
    if g < 2:
        raise TopologyError("dragonfly needs at least 2 groups")
    if g - 1 > a * h:
        raise TopologyError(
            f"{g} groups need {g - 1} global links per group but only "
            f"{a * h} global ports exist"
        )

    topo = Topology(
        name or f"dragonfly(a={a}, p={p}, h={h}, g={g})"
    )
    for group in range(g):
        for router in range(a):
            topo.add_switch(
                (group, router),
                servers=p,
                cluster=f"g{group}",
                switch_type="router",
            )
    # Intra-group complete graphs.
    for group in range(g):
        for i in range(a):
            for j in range(i + 1, a):
                topo.add_link((group, i), (group, j), capacity=capacity)
    # Global links: group pair (s, t) with s < t uses the next free global
    # port (round-robin over routers) in each group.
    next_port = [0] * g
    for s in range(g):
        for t in range(s + 1, g):
            router_s = next_port[s] % a
            router_t = next_port[t] % a
            next_port[s] += 1
            next_port[t] += 1
            topo.add_link((s, router_s), (t, router_t), capacity=capacity)
    return topo
