"""Hypercube topology.

The paper cites the hypercube as a "flat" design that random graphs beat by
roughly 30% at 512 nodes; it serves here as a structured baseline for the
optimality-gap experiments.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.util.validation import check_non_negative_int, check_positive, check_positive_int


def hypercube_topology(
    dimension: int,
    servers_per_switch: int = 0,
    capacity: float = 1.0,
    name: "str | None" = None,
) -> Topology:
    """Build a ``dimension``-cube: ``2**dimension`` switches of degree
    ``dimension``, with nodes adjacent iff their ids differ in one bit."""
    dimension = check_positive_int(dimension, "dimension")
    servers_per_switch = check_non_negative_int(
        servers_per_switch, "servers_per_switch"
    )
    capacity = check_positive(capacity, "capacity")
    n = 1 << dimension
    topo = Topology(name or f"hypercube(d={dimension})")
    for v in range(n):
        topo.add_switch(v, servers=servers_per_switch)
    for v in range(n):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if u > v:
                topo.add_link(v, u, capacity=capacity)
    return topo
