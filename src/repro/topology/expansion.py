"""Incremental network expansion by random link swaps.

Jellyfish's headline operational advantage (which the paper inherits by
building on random graphs) is cheap incremental growth: to add a switch
with ``r`` network ports, pick ``r/2`` random existing links, remove them,
and connect both freed endpoints to the new switch. The result is again a
(near-)uniform random graph — no rewiring of the rest of the fabric.

This module implements that operation plus whole-rack addition, and exposes
the count of links touched so operators can audit cabling churn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.util.rng import as_rng
from repro.util.validation import check_non_negative_int, check_positive_int


@dataclass(frozen=True)
class ExpansionReport:
    """What an expansion step changed."""

    added_switch: object
    links_removed: int
    links_added: int
    leftover_ports: int


def add_switch_by_link_swaps(
    topo: Topology,
    new_switch,
    network_ports: int,
    servers: int = 0,
    capacity: float = 1.0,
    seed=None,
    max_attempts: int = 200,
) -> ExpansionReport:
    """Attach ``new_switch`` by splitting random existing links (in place).

    Each accepted swap removes one random link ``(u, v)`` (with neither
    endpoint already adjacent to the new switch) and adds ``(new, u)`` and
    ``(new, v)``, consuming two of the new switch's ports. An odd port
    count leaves one port unused, as in a physical deployment.

    Raises :class:`TopologyError` when no valid swap can be found (e.g. the
    network is too small or the new switch is already adjacent to
    everything).
    """
    network_ports = check_non_negative_int(network_ports, "network_ports")
    check_non_negative_int(servers, "servers")
    if new_switch in topo:
        raise TopologyError(f"switch {new_switch!r} already exists")
    rng = as_rng(seed)

    topo.add_switch(new_switch, servers=servers)
    # Candidate links are maintained as a mutable list instead of being
    # re-enumerated from the topology on every draw: removed links are
    # swap-popped, and links created here always touch the new switch so
    # they can never become candidates. This keeps each accepted swap
    # O(1) amortized, which is what lets growth schedules reach thousands
    # of switches (re-listing was O(links) per draw).
    candidates = list(topo.links)
    removed = 0
    added = 0
    remaining = network_ports
    attempts = 0
    while remaining >= 2:
        if not candidates:
            break
        index = int(rng.integers(len(candidates)))
        link = candidates[index]
        attempts += 1
        if topo.has_link(new_switch, link.u) or topo.has_link(new_switch, link.v):
            if attempts > max_attempts:
                break
            continue
        candidates[index] = candidates[-1]
        candidates.pop()
        topo.remove_link(link.u, link.v)
        # Preserve the split link's capacity on both new links so the new
        # switch's ports match the fabric's line speed.
        topo.add_link(new_switch, link.u, capacity=link.capacity)
        topo.add_link(new_switch, link.v, capacity=link.capacity)
        removed += 1
        added += 2
        remaining -= 2
        attempts = 0
    if remaining >= 2:
        raise TopologyError(
            f"could not place {remaining} ports of {new_switch!r} by swaps"
        )
    # `capacity` is used only when the new switch must seed an empty fabric.
    if added == 0 and network_ports >= 2 and topo.num_switches == 2:
        other = next(v for v in topo.switches if v != new_switch)
        topo.add_link(new_switch, other, capacity=capacity)
        added = 1
        remaining = network_ports - 1
    return ExpansionReport(
        added_switch=new_switch,
        links_removed=removed,
        links_added=added,
        leftover_ports=remaining,
    )


def expand_topology(
    topo: Topology,
    new_switches: dict,
    servers: "dict | None" = None,
    seed=None,
) -> list[ExpansionReport]:
    """Add several switches by repeated link swaps (in place).

    ``new_switches`` maps new switch id -> network port count; ``servers``
    optionally maps ids -> attached server counts. Returns one report per
    added switch, in insertion order.
    """
    rng = as_rng(seed)
    servers = servers or {}
    reports = []
    for switch_id, ports in new_switches.items():
        reports.append(
            add_switch_by_link_swaps(
                topo,
                switch_id,
                network_ports=check_positive_int(ports, f"ports[{switch_id!r}]"),
                servers=int(servers.get(switch_id, 0)),
                seed=rng,
            )
        )
    return reports
