"""Randomized graph construction with degree budgets.

These builders implement the construction the paper (following Jellyfish)
relies on: wire random simple graphs subject to per-node port budgets, using
local rewiring moves to escape dead ends. Two primitives cover every
generator in this library:

- :func:`random_graph_from_degrees` — a random simple graph where node ``v``
  receives (up to) ``degrees[v]`` edges,
- :func:`random_bipartite_matching` — a random set of cross edges between two
  node groups consuming exactly the requested stubs on each side.

Both are uniform-ish samplers: they follow the incremental random matching
procedure of Jellyfish (random free pairs plus edge swaps), which is the
construction the paper's experiments use, rather than an exact uniform
sampler over all graphs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import GraphConstructionError
from repro.util.rng import as_rng

# After this many consecutive failed random pair draws, fall back to an
# exhaustive scan for a connectable pair before attempting rewiring moves.
_STALL_LIMIT = 64


class _AliveIndex:
    """Fenwick-indexed view of the free-node dict for O(log n) sampling.

    The fill loop draws ``nodes[rng.integers(len(nodes))]`` where ``nodes``
    is ``list(free)`` — the initial node order minus exhausted nodes.
    Materializing that list per placed edge is the O(N) factor that made
    N = 100,000 builds take minutes. This index answers ``select(i)`` ("the
    i-th node of ``list(free)``") in O(log n) instead, and because it
    preserves that exact ordering the RNG draws — and therefore the sampled
    graph — are byte-identical to the list-based fill (the builder goldens
    pin this).
    """

    __slots__ = ("_order", "_pos", "_tree", "_size", "count")

    def __init__(self, nodes) -> None:
        self._order = list(nodes)
        self._pos = {node: i for i, node in enumerate(self._order)}
        self._size = len(self._order)
        self.count = self._size
        tree = [0] * (self._size + 1)
        for i in range(1, self._size + 1):
            tree[i] += 1
            parent = i + (i & -i)
            if parent <= self._size:
                tree[parent] += tree[i]
        self._tree = tree

    def remove(self, node) -> None:
        i = self._pos[node] + 1
        tree = self._tree
        while i <= self._size:
            tree[i] -= 1
            i += i & -i
        self.count -= 1

    def select(self, k: int):
        """The node at position ``k`` of ``list(free)`` (0-based)."""
        remaining = k + 1
        idx = 0
        bit = 1 << (self._size.bit_length() - 1) if self._size else 0
        tree = self._tree
        while bit:
            probe = idx + bit
            if probe <= self._size and tree[probe] < remaining:
                idx = probe
                remaining -= tree[probe]
            bit >>= 1
        return self._order[idx]


class _FreeDict(dict):
    """Free-port budgets with a live Fenwick index over the key order.

    Keys are only ever *removed* after construction (a budget reaching 0
    deletes its entry), so the index never needs insertion support.
    """

    def __init__(self, items) -> None:
        super().__init__(items)
        self.alive = _AliveIndex(self)

    def __delitem__(self, node) -> None:
        super().__delitem__(node)
        self.alive.remove(node)


def is_graphical(degrees: Sequence[int]) -> bool:
    """Erdős–Gallai test: can ``degrees`` be realized by a simple graph?

    Returns ``False`` for negative entries or odd degree sums.
    """
    degs = sorted((int(d) for d in degrees), reverse=True)
    if any(d < 0 for d in degs):
        return False
    n = len(degs)
    if n == 0:
        return True
    if any(d > n - 1 for d in degs):
        return False
    if sum(degs) % 2 != 0:
        return False
    prefix = 0
    for k in range(1, n + 1):
        prefix += degs[k - 1]
        tail = sum(min(d, k) for d in degs[k:])
        if prefix > k * (k - 1) + tail:
            return False
    return True


class _EdgeSet:
    """Mutable simple-graph edge set with O(1) adjacency queries."""

    def __init__(self) -> None:
        self.edges: set[frozenset] = set()
        self.adjacency: dict[object, set] = {}

    def has(self, u, v) -> bool:
        return frozenset((u, v)) in self.edges

    def add(self, u, v) -> None:
        if u == v:
            raise GraphConstructionError(f"attempted self-loop at {u!r}")
        key = frozenset((u, v))
        if key in self.edges:
            raise GraphConstructionError(f"attempted parallel edge {u!r}-{v!r}")
        self.edges.add(key)
        self.adjacency.setdefault(u, set()).add(v)
        self.adjacency.setdefault(v, set()).add(u)

    def remove(self, u, v) -> None:
        key = frozenset((u, v))
        if key not in self.edges:
            raise GraphConstructionError(f"no edge {u!r}-{v!r} to remove")
        self.edges.remove(key)
        self.adjacency[u].discard(v)
        self.adjacency[v].discard(u)

    def neighbors(self, u) -> set:
        return self.adjacency.get(u, set())

    def as_pairs(self) -> list[tuple]:
        # Sorted output: set iteration order depends on PYTHONHASHSEED, and
        # a seeded construction must yield the same graph in every process
        # (content-addressed caches key on it).
        return sorted(
            (tuple(sorted(edge, key=repr)) for edge in self.edges), key=repr
        )


def _random_edge(edge_set: _EdgeSet, rng: np.random.Generator) -> tuple:
    pairs = edge_set.as_pairs()
    u, v = pairs[int(rng.integers(len(pairs)))]
    return u, v


def random_graph_from_degrees(
    degrees: Mapping[object, int],
    rng=None,
    allow_remainder: bool = True,
    retries: int = 8,
    clamp: bool = False,
) -> list[tuple]:
    """Sample a random simple graph honoring per-node degree budgets.

    Follows the Jellyfish procedure: repeatedly join two random non-adjacent
    nodes that still have free ports; when stuck, free up placement room by
    removing a random existing edge ``(u, v)`` whose endpoints are both
    non-adjacent to a node ``x`` with two or more free ports and adding
    ``(x, u)`` and ``(x, v)`` instead.

    Parameters
    ----------
    degrees:
        Mapping node -> number of edge endpoints ("stubs") to place at that
        node. Budgets need not form a graphical sequence.
    allow_remainder:
        If ``True`` (default), stubs that cannot be placed (odd total, or a
        structurally stuck configuration) are silently left unused — exactly
        what happens to stray ports in a physical deployment. If ``False``,
        any unplaced stub raises :class:`GraphConstructionError`.
    retries:
        Number of independent attempts before giving up when
        ``allow_remainder`` is ``False``.
    clamp:
        If ``True``, budgets larger than ``n - 1`` (impossible in a simple
        graph) are silently clamped to ``n - 1`` — the surplus ports stay
        unused, as in a physical deployment. If ``False`` (default) such a
        budget raises :class:`GraphConstructionError`.

    Returns
    -------
    list of edge tuples ``(u, v)``.
    """
    rng = as_rng(rng)
    cleaned = {node: int(budget) for node, budget in degrees.items()}
    for node, budget in cleaned.items():
        if budget < 0:
            raise ValueError(f"degree budget for {node!r} must be >= 0, got {budget}")
    max_degree = len(cleaned) - 1
    for node, budget in cleaned.items():
        if budget > max_degree:
            if clamp:
                cleaned[node] = max_degree
            else:
                raise GraphConstructionError(
                    f"degree budget {budget} at {node!r} exceeds n-1 = {max_degree}"
                )

    last_error: "GraphConstructionError | None" = None
    for _ in range(max(1, retries)):
        try:
            edge_set, free = _fill_random_graph(cleaned, rng)
        except GraphConstructionError as exc:
            last_error = exc
            continue
        remainder = sum(free.values())
        if remainder and not allow_remainder:
            last_error = GraphConstructionError(
                f"{remainder} stubs could not be placed"
            )
            continue
        return edge_set.as_pairs()
    raise last_error if last_error is not None else GraphConstructionError(
        "graph construction failed"
    )


def _fill_random_graph(
    degrees: Mapping[object, int], rng: np.random.Generator
) -> tuple[_EdgeSet, dict]:
    """One attempt of the incremental random fill; returns edges + leftovers."""
    edge_set = _EdgeSet()
    free = _FreeDict(
        (node, budget) for node, budget in degrees.items() if budget > 0
    )
    alive = free.alive
    stalls = 0
    while True:
        # ``alive`` mirrors list(free) — entries are deleted the moment a
        # budget hits 0, so every key is a free node. The slow paths below
        # (scan, rewire) materialize the actual list; the hot draw never
        # does.
        if alive.count < 2:
            # All remaining stubs sit on one node (or none); only a rewiring
            # move can still make progress.
            nodes = list(free)
            if not nodes or not _rewire_for_progress(edge_set, free, rng, nodes):
                break
            continue
        pick = rng.integers(alive.count, size=2)
        u, v = alive.select(int(pick[0])), alive.select(int(pick[1]))
        if u != v and not edge_set.has(u, v):
            _consume(edge_set, free, u, v)
            stalls = 0
            continue
        stalls += 1
        if stalls < _STALL_LIMIT:
            continue
        stalls = 0
        nodes = list(free)
        if _connect_any_free_pair(edge_set, free, rng, nodes):
            continue
        if not _rewire_for_progress(edge_set, free, rng, nodes):
            break
    return edge_set, dict(free)


def _consume(edge_set: _EdgeSet, free: dict, u, v) -> None:
    edge_set.add(u, v)
    for node in (u, v):
        free[node] -= 1
        if free[node] == 0:
            del free[node]


def _connect_any_free_pair(
    edge_set: _EdgeSet, free: dict, rng: np.random.Generator, nodes: list
) -> bool:
    """Exhaustively look for any connectable pair among free-port nodes."""
    order = list(nodes)
    rng.shuffle(order)
    for i, u in enumerate(order):
        if free.get(u, 0) <= 0:
            continue
        taken = edge_set.neighbors(u)
        for v in order[i + 1 :]:
            if free.get(v, 0) <= 0 or v in taken:
                continue
            _consume(edge_set, free, u, v)
            return True
    return False


def _rewire_for_progress(
    edge_set: _EdgeSet, free: dict, rng: np.random.Generator, nodes: list
) -> bool:
    """Apply one Jellyfish rewiring move so the greedy fill can continue.

    Case 1: some node ``x`` has >= 2 free ports. Find an edge ``(u, v)`` with
    both endpoints non-adjacent to ``x``; replace it with ``(x, u), (x, v)``.

    Case 2: exactly two distinct free-port nodes remain and they are already
    adjacent. Find an edge ``(a, b)`` disjoint from them with ``(u, a)`` and
    ``(v, b)`` absent; replace it with those two edges.
    """
    if not edge_set.edges:
        return False

    def spend(node, amount: int) -> None:
        free[node] -= amount
        if free[node] == 0:
            del free[node]

    multi = [node for node in nodes if free.get(node, 0) >= 2]
    rng.shuffle(multi)
    edge_pairs = edge_set.as_pairs()
    for x in multi:
        taboo = edge_set.neighbors(x)
        order = rng.permutation(len(edge_pairs))
        for idx in order:
            u, v = edge_pairs[int(idx)]
            if u == x or v == x or u in taboo or v in taboo:
                continue
            # (u, v) is replaced by (x, u), (x, v): only x spends stubs.
            edge_set.remove(u, v)
            edge_set.add(x, u)
            edge_set.add(x, v)
            spend(x, 2)
            return True
    singles = [node for node in nodes if free.get(node, 0) >= 1]
    if len(singles) >= 2:
        u, v = singles[0], singles[1]
        order = rng.permutation(len(edge_pairs))
        for idx in order:
            a, b = edge_pairs[int(idx)]
            if {a, b} & {u, v}:
                continue
            for x, y in ((a, b), (b, a)):
                if not edge_set.has(u, x) and not edge_set.has(v, y):
                    # (x, y) is replaced by (u, x), (v, y): u and v each
                    # spend one stub; x and y keep their degrees.
                    edge_set.remove(x, y)
                    edge_set.add(u, x)
                    edge_set.add(v, y)
                    spend(u, 1)
                    spend(v, 1)
                    return True
    return False


def random_bipartite_matching(
    stubs_a: Mapping[object, int],
    stubs_b: Mapping[object, int],
    rng=None,
    forbidden: "set[frozenset] | None" = None,
    allow_remainder: bool = False,
    retries: int = 8,
) -> list[tuple]:
    """Randomly wire stubs on side A to stubs on side B without parallels.

    Used to realize an exact number of cross-cluster links: callers choose
    how many stubs each node contributes, this function produces a random
    simple bipartite edge set consuming them.

    Parameters
    ----------
    stubs_a, stubs_b:
        Mapping node -> number of cross edges it must receive. The two sides
        must sum to the same total (that total is the number of edges).
    forbidden:
        Optional set of ``frozenset({a, b})`` pairs that must not be created
        (e.g. already-existing links).
    allow_remainder:
        As in :func:`random_graph_from_degrees`.
    """
    rng = as_rng(rng)
    total_a = sum(int(v) for v in stubs_a.values())
    total_b = sum(int(v) for v in stubs_b.values())
    if total_a != total_b:
        raise GraphConstructionError(
            f"stub totals differ: side A has {total_a}, side B has {total_b}"
        )
    overlap = set(stubs_a) & set(stubs_b)
    if overlap:
        raise GraphConstructionError(
            f"nodes appear on both sides: {sorted(map(repr, overlap))}"
        )
    forbidden = forbidden or set()

    last_error: "GraphConstructionError | None" = None
    for _ in range(max(1, retries)):
        result = _fill_bipartite(stubs_a, stubs_b, rng, forbidden)
        if result is not None:
            edge_set, free_a, free_b = result
            remainder = sum(free_a.values()) + sum(free_b.values())
            if remainder == 0 or allow_remainder:
                return edge_set.as_pairs()
            last_error = GraphConstructionError(
                f"{remainder} cross stubs could not be placed"
            )
    raise last_error if last_error is not None else GraphConstructionError(
        "bipartite matching failed"
    )


def _fill_bipartite(
    stubs_a: Mapping[object, int],
    stubs_b: Mapping[object, int],
    rng: np.random.Generator,
    forbidden: set,
):
    """One attempt at the bipartite random fill with a rewiring fallback."""
    edge_set = _EdgeSet()
    side_a_all = set(stubs_a)
    free_a = {node: int(v) for node, v in stubs_a.items() if v > 0}
    free_b = {node: int(v) for node, v in stubs_b.items() if v > 0}
    stalls = 0
    while free_a and free_b:
        a_nodes = list(free_a)
        b_nodes = list(free_b)
        u = a_nodes[int(rng.integers(len(a_nodes)))]
        v = b_nodes[int(rng.integers(len(b_nodes)))]
        blocked = edge_set.has(u, v) or frozenset((u, v)) in forbidden
        if not blocked:
            _consume_bipartite(edge_set, free_a, free_b, u, v)
            stalls = 0
            continue
        stalls += 1
        if stalls < _STALL_LIMIT:
            continue
        stalls = 0
        if _bipartite_scan(edge_set, free_a, free_b, rng, forbidden):
            continue
        if not _bipartite_rewire(edge_set, free_a, free_b, rng, forbidden, side_a_all):
            break
    return edge_set, free_a, free_b


def _consume_bipartite(edge_set: _EdgeSet, free_a: dict, free_b: dict, u, v) -> None:
    edge_set.add(u, v)
    free_a[u] -= 1
    if free_a[u] == 0:
        del free_a[u]
    free_b[v] -= 1
    if free_b[v] == 0:
        del free_b[v]


def _bipartite_scan(
    edge_set: _EdgeSet,
    free_a: dict,
    free_b: dict,
    rng: np.random.Generator,
    forbidden: set,
) -> bool:
    a_nodes = list(free_a)
    b_nodes = list(free_b)
    rng.shuffle(a_nodes)
    rng.shuffle(b_nodes)
    for u in a_nodes:
        taken = edge_set.neighbors(u)
        for v in b_nodes:
            if v in taken or frozenset((u, v)) in forbidden:
                continue
            _consume_bipartite(edge_set, free_a, free_b, u, v)
            return True
    return False


def _bipartite_rewire(
    edge_set: _EdgeSet,
    free_a: dict,
    free_b: dict,
    rng: np.random.Generator,
    forbidden: set,
    side_a_all: set,
) -> bool:
    """Free a placement by splitting an existing cross edge.

    With free stubs at ``u`` (side A) and ``v`` (side B) whose direct edge is
    blocked, find an existing cross edge ``(x, y)`` — ``x`` on side A — such
    that ``(u, y)`` and ``(x, v)`` are both available; replace it with those
    two edges, consuming one stub on each side.
    """
    if not free_a or not free_b or not edge_set.edges:
        return False
    u = next(iter(free_a))
    v = next(iter(free_b))
    edge_pairs = edge_set.as_pairs()
    order = rng.permutation(len(edge_pairs))
    for idx in order:
        first, second = edge_pairs[int(idx)]
        x, y = (first, second) if first in side_a_all else (second, first)
        if x == u or y == v:
            continue
        if (
            not edge_set.has(u, y)
            and not edge_set.has(x, v)
            and frozenset((u, y)) not in forbidden
            and frozenset((x, v)) not in forbidden
        ):
            edge_set.remove(x, y)
            edge_set.add(u, y)
            edge_set.add(x, v)
            free_a[u] -= 1
            if free_a[u] == 0:
                del free_a[u]
            free_b[v] -= 1
            if free_b[v] == 0:
                del free_b[v]
            return True
    return False
