"""The switch-level network model used throughout the library.

A :class:`Topology` is an undirected, capacitated multigraph collapsed to a
simple graph: parallel links between the same switch pair are represented as
one link whose capacity is the sum of the parallel capacities. Under the
fluid-flow model the two representations admit identical flows, and the
collapsed form keeps LP sizes small.

Servers never appear as graph nodes. Each switch records the number of
attached servers; traffic matrices expand that count into server-level
endpoints. This matches the paper's model, where server links are implicit
unit-capacity edges and throughput is measured per server flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

import networkx as nx

from repro.exceptions import TopologyError
from repro.util.validation import check_non_negative_int, check_positive

NodeId = Hashable


@dataclass(frozen=True)
class Link:
    """An undirected capacitated link between two switches.

    ``capacity`` is per direction: a link of capacity ``c`` can carry ``c``
    units of flow u->v and simultaneously ``c`` units v->u, matching the
    full-duplex links the paper assumes.
    """

    u: NodeId
    v: NodeId
    capacity: float

    def endpoints(self) -> tuple[NodeId, NodeId]:
        """Return the two endpoints as a tuple."""
        return (self.u, self.v)

    def reversed(self) -> "Link":
        """Return the same link with endpoints swapped."""
        return Link(self.v, self.u, self.capacity)


class Topology:
    """A switch-level data center network.

    Parameters
    ----------
    name:
        Human-readable identifier used in reports and reprs.

    Notes
    -----
    Mutation methods (``add_switch``, ``add_link``, ...) validate eagerly and
    raise :class:`~repro.exceptions.TopologyError` on structural violations
    (self-loops, unknown endpoints, non-positive capacities).
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = str(name)
        self._graph = nx.Graph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(
        self,
        node: NodeId,
        servers: int = 0,
        cluster: "str | None" = None,
        switch_type: "str | None" = None,
    ) -> None:
        """Add a switch with ``servers`` attached servers.

        ``cluster`` and ``switch_type`` are free-form labels used by the
        heterogeneous-design analyses (e.g. ``"large"``/``"small"`` clusters,
        ``"tor"``/``"agg"``/``"core"`` types).
        """
        if node in self._graph:
            raise TopologyError(f"switch {node!r} already exists")
        servers = check_non_negative_int(servers, "servers")
        self._graph.add_node(
            node, servers=servers, cluster=cluster, switch_type=switch_type
        )

    def add_link(self, u: NodeId, v: NodeId, capacity: float = 1.0) -> None:
        """Add a link of the given capacity between existing switches.

        Adding a link where one already exists *aggregates* capacities, which
        is how parallel links (port trunks) are represented.
        """
        if u == v:
            raise TopologyError(f"self-loop at switch {u!r} is not allowed")
        for node in (u, v):
            if node not in self._graph:
                raise TopologyError(f"switch {node!r} does not exist")
        capacity = check_positive(capacity, "capacity")
        if self._graph.has_edge(u, v):
            self._graph[u][v]["capacity"] += capacity
        else:
            self._graph.add_edge(u, v, capacity=capacity)

    def remove_link(self, u: NodeId, v: NodeId) -> None:
        """Remove the link between ``u`` and ``v`` entirely."""
        if not self._graph.has_edge(u, v):
            raise TopologyError(f"no link between {u!r} and {v!r}")
        self._graph.remove_edge(u, v)

    def set_servers(self, node: NodeId, servers: int) -> None:
        """Set the number of servers attached to ``node``."""
        if node not in self._graph:
            raise TopologyError(f"switch {node!r} does not exist")
        self._graph.nodes[node]["servers"] = check_non_negative_int(
            servers, "servers"
        )

    def set_cluster(self, node: NodeId, cluster: "str | None") -> None:
        """Assign ``node`` to a named cluster (used by two-cluster analyses)."""
        if node not in self._graph:
            raise TopologyError(f"switch {node!r} does not exist")
        self._graph.nodes[node]["cluster"] = cluster

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_switches(self) -> int:
        """Number of switches."""
        return self._graph.number_of_nodes()

    @property
    def num_links(self) -> int:
        """Number of (collapsed) undirected links."""
        return self._graph.number_of_edges()

    @property
    def num_servers(self) -> int:
        """Total number of servers attached across all switches."""
        return sum(self._graph.nodes[v]["servers"] for v in self._graph)

    @property
    def switches(self) -> list[NodeId]:
        """All switch ids, in insertion order."""
        return list(self._graph.nodes)

    @property
    def links(self) -> list[Link]:
        """All undirected links with their (aggregated) capacities."""
        return [
            Link(u, v, data["capacity"])
            for u, v, data in self._graph.edges(data=True)
        ]

    @property
    def total_capacity(self) -> float:
        """Total network capacity counting both directions (paper's ``C``)."""
        return 2.0 * sum(d["capacity"] for _, _, d in self._graph.edges(data=True))

    def has_switch(self, node: NodeId) -> bool:
        """Whether ``node`` is a switch in this topology."""
        return node in self._graph

    def has_link(self, u: NodeId, v: NodeId) -> bool:
        """Whether an (undirected) link between ``u`` and ``v`` exists."""
        return self._graph.has_edge(u, v)

    def capacity(self, u: NodeId, v: NodeId) -> float:
        """Capacity of the link between ``u`` and ``v`` (per direction)."""
        if not self._graph.has_edge(u, v):
            raise TopologyError(f"no link between {u!r} and {v!r}")
        return float(self._graph[u][v]["capacity"])

    def degree(self, node: NodeId) -> int:
        """Number of distinct neighbor switches of ``node``."""
        if node not in self._graph:
            raise TopologyError(f"switch {node!r} does not exist")
        return int(self._graph.degree[node])

    def neighbors(self, node: NodeId) -> list[NodeId]:
        """Neighbor switches of ``node``."""
        if node not in self._graph:
            raise TopologyError(f"switch {node!r} does not exist")
        return list(self._graph.neighbors(node))

    def servers_at(self, node: NodeId) -> int:
        """Number of servers attached to ``node``."""
        if node not in self._graph:
            raise TopologyError(f"switch {node!r} does not exist")
        return int(self._graph.nodes[node]["servers"])

    def server_map(self) -> dict[NodeId, int]:
        """Mapping of switch id -> attached server count."""
        return {v: int(self._graph.nodes[v]["servers"]) for v in self._graph}

    def cluster_of(self, node: NodeId) -> "str | None":
        """Cluster label of ``node`` (``None`` if unassigned)."""
        if node not in self._graph:
            raise TopologyError(f"switch {node!r} does not exist")
        return self._graph.nodes[node].get("cluster")

    def switch_type_of(self, node: NodeId) -> "str | None":
        """Switch-type label of ``node`` (``None`` if unassigned)."""
        if node not in self._graph:
            raise TopologyError(f"switch {node!r} does not exist")
        return self._graph.nodes[node].get("switch_type")

    def nodes_in_cluster(self, cluster: str) -> list[NodeId]:
        """All switches assigned to the given cluster label."""
        return [
            v
            for v in self._graph
            if self._graph.nodes[v].get("cluster") == cluster
        ]

    def nodes_of_type(self, switch_type: str) -> list[NodeId]:
        """All switches with the given switch-type label."""
        return [
            v
            for v in self._graph
            if self._graph.nodes[v].get("switch_type") == switch_type
        ]

    def clusters(self) -> list[str]:
        """Sorted list of distinct non-``None`` cluster labels."""
        labels = {
            self._graph.nodes[v].get("cluster")
            for v in self._graph
        }
        return sorted(label for label in labels if label is not None)

    def arcs(self) -> list[tuple[NodeId, NodeId, float]]:
        """Directed arcs ``(u, v, capacity)``: two per undirected link.

        The flow solvers operate on this directed view; the paper counts
        capacity per direction, so ``sum(cap for *_, cap in arcs())`` equals
        :attr:`total_capacity`.
        """
        out: list[tuple[NodeId, NodeId, float]] = []
        for u, v, data in self._graph.edges(data=True):
            cap = float(data["capacity"])
            out.append((u, v, cap))
            out.append((v, u, cap))
        return out

    def degree_histogram(self) -> dict[int, int]:
        """Mapping of degree -> number of switches with that degree."""
        hist: dict[int, int] = {}
        for _, deg in self._graph.degree:
            hist[deg] = hist.get(deg, 0) + 1
        return dict(sorted(hist.items()))

    def is_connected(self) -> bool:
        """Whether the switch graph is connected (vacuously true if empty)."""
        if self._graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(self._graph)

    def cut_capacity(self, side_a: Iterable[NodeId], side_b: Iterable[NodeId]) -> float:
        """Total capacity of links crossing between two disjoint node sets.

        Counts both directions, matching the paper's ``C̄`` convention.
        """
        set_a = set(side_a)
        set_b = set(side_b)
        overlap = set_a & set_b
        if overlap:
            raise TopologyError(f"node sets overlap: {sorted(map(repr, overlap))}")
        total = 0.0
        for u, v, data in self._graph.edges(data=True):
            if (u in set_a and v in set_b) or (u in set_b and v in set_a):
                total += 2.0 * float(data["capacity"])
        return total

    # ------------------------------------------------------------------
    # Conversion / copying
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Return an independent :class:`networkx.Graph` copy."""
        return self._graph.copy()

    @property
    def graph(self) -> nx.Graph:
        """The underlying graph (treat as read-only; use mutation methods)."""
        return self._graph

    def copy(self, name: "str | None" = None) -> "Topology":
        """Deep-copy this topology, optionally renaming it."""
        clone = Topology(name if name is not None else self.name)
        clone._graph = self._graph.copy()
        return clone

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[NodeId, NodeId]],
        servers: "Mapping[NodeId, int] | int" = 0,
        capacity: float = 1.0,
        name: str = "topology",
    ) -> "Topology":
        """Build a topology from an edge list with uniform link capacity.

        ``servers`` may be one integer (same count at every switch) or a
        mapping from switch id to count.
        """
        topo = cls(name)
        edges = list(edges)
        nodes: list[NodeId] = []
        seen: set[NodeId] = set()
        for u, v in edges:
            for node in (u, v):
                if node not in seen:
                    seen.add(node)
                    nodes.append(node)
        if isinstance(servers, Mapping):
            for extra in servers:
                if extra not in seen:
                    seen.add(extra)
                    nodes.append(extra)
        for node in nodes:
            if isinstance(servers, Mapping):
                count = int(servers.get(node, 0))
            else:
                count = int(servers)
            topo.add_switch(node, servers=count)
        for u, v in edges:
            topo.add_link(u, v, capacity=capacity)
        return topo

    # ------------------------------------------------------------------
    # Validation / dunder
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TopologyError` if broken.

        Checks: no self-loops, all capacities positive, all server counts
        non-negative integers.
        """
        for u, v, data in self._graph.edges(data=True):
            if u == v:
                raise TopologyError(f"self-loop at {u!r}")
            cap = data.get("capacity")
            if cap is None or not cap > 0:
                raise TopologyError(f"link ({u!r}, {v!r}) has capacity {cap!r}")
        for v in self._graph:
            servers = self._graph.nodes[v].get("servers")
            if not isinstance(servers, int) or servers < 0:
                raise TopologyError(f"switch {v!r} has server count {servers!r}")

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._graph)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, switches={self.num_switches}, "
            f"links={self.num_links}, servers={self.num_servers})"
        )
