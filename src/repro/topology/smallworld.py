"""Small-world ring topology (Watts-Strogatz style).

Models the "small-world datacenters" design point the paper cites [26]: a
ring lattice where each switch links to its ``k`` nearest neighbors, with a
fraction of links rewired to uniformly random endpoints.
"""

from __future__ import annotations

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.topology.mutation import rewire_link
from repro.util.rng import as_rng
from repro.util.validation import (
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


def small_world_topology(
    num_switches: int,
    nearest_neighbors: int,
    rewire_probability: float = 0.1,
    servers_per_switch: int = 0,
    capacity: float = 1.0,
    seed=None,
    name: "str | None" = None,
) -> Topology:
    """Build a Watts-Strogatz-style small-world network.

    Start from a ring lattice where every switch connects to the
    ``nearest_neighbors`` closest switches (must be even), then rewire each
    clockwise link independently with probability ``rewire_probability`` to
    a uniformly random non-adjacent endpoint.
    """
    num_switches = check_positive_int(num_switches, "num_switches")
    nearest_neighbors = check_positive_int(nearest_neighbors, "nearest_neighbors")
    rewire_probability = check_probability(rewire_probability, "rewire_probability")
    servers_per_switch = check_non_negative_int(
        servers_per_switch, "servers_per_switch"
    )
    capacity = check_positive(capacity, "capacity")
    if nearest_neighbors % 2 != 0:
        raise TopologyError(
            f"nearest_neighbors must be even, got {nearest_neighbors}"
        )
    if nearest_neighbors >= num_switches:
        raise TopologyError(
            f"nearest_neighbors {nearest_neighbors} must be < num_switches "
            f"{num_switches}"
        )
    rng = as_rng(seed)

    topo = Topology(name or f"small-world(N={num_switches}, k={nearest_neighbors})")
    for v in range(num_switches):
        topo.add_switch(v, servers=servers_per_switch)
    half = nearest_neighbors // 2
    for v in range(num_switches):
        for offset in range(1, half + 1):
            topo.add_link(v, (v + offset) % num_switches, capacity=capacity)
    for v in range(num_switches):
        for offset in range(1, half + 1):
            u = (v + offset) % num_switches
            if rng.random() >= rewire_probability:
                continue
            # Rewire the clockwise ring link to a random valid endpoint.
            for _ in range(num_switches):
                candidate = int(rng.integers(num_switches))
                if candidate != v and not topo.has_link(v, candidate):
                    rewire_link(topo, v, u, candidate)
                    break
    return topo
