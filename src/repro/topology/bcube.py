"""BCube — the server-centric modular topology of Guo et al. (SIGCOMM '09).

The paper cites BCube [18] among the designs it benchmarks against
conceptually. BCube(n, k) has ``n^(k+1)`` servers, each with ``k+1`` ports,
and ``(k+1) * n^k`` n-port switches arranged in ``k+1`` levels; servers
forward traffic (switches never connect to switches).

In this library's switch-level model, forwarding servers are represented as
degree-``k+1`` switches carrying one attached server each; level switches
carry zero servers. Capacity semantics are identical to the original.
"""

from __future__ import annotations

from itertools import product

from repro.topology.base import Topology
from repro.util.validation import check_non_negative_int, check_positive, check_positive_int


def bcube_topology(
    n: int,
    k: int = 1,
    capacity: float = 1.0,
    name: "str | None" = None,
) -> Topology:
    """Build BCube(n, k).

    Parameters
    ----------
    n:
        Switch port count (and servers per BCube_0 cell); n >= 2.
    k:
        Recursion level; BCube_k uses k+1 switch levels.

    Returns
    -------
    Topology
        Server-hosts are nodes ``("srv",) + address`` with one attached
        server; switches are ``("sw", level) + prefix`` nodes.
    """
    n = check_positive_int(n, "n")
    if n < 2:
        raise ValueError(f"BCube needs n >= 2, got {n}")
    k = check_non_negative_int(k, "k")
    capacity = check_positive(capacity, "capacity")

    topo = Topology(name or f"bcube(n={n}, k={k})")
    addresses = list(product(range(n), repeat=k + 1))
    for address in addresses:
        topo.add_switch(("srv", *address), servers=1, switch_type="server")

    # Level-l switches connect the n servers whose addresses agree except
    # in digit l.
    for level in range(k + 1):
        rests = list(product(range(n), repeat=k))
        for rest in rests:
            switch = ("sw", level, *rest)
            topo.add_switch(switch, servers=0, switch_type="switch")
            for digit in range(n):
                address = list(rest)
                address.insert(level, digit)
                topo.add_link(switch, ("srv", *address), capacity=capacity)
    return topo
