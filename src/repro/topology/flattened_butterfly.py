"""Flattened butterfly (k-ary n-flat) — Kim, Dally, Abts (ISCA '07).

A generalized-hypercube-style direct network: switches sit at the points of
an ``(n-1)``-dimensional grid with ``k`` positions per dimension, and every
switch links directly to each switch differing in exactly one coordinate.
The paper's discussion of "flat" topologies (and its warning that not all
flat designs perform equally) makes this a natural structured baseline.
"""

from __future__ import annotations

from itertools import product

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.util.validation import check_non_negative_int, check_positive, check_positive_int


def flattened_butterfly_topology(
    k: int,
    dimensions: int = 2,
    servers_per_switch: int = 0,
    capacity: float = 1.0,
    name: "str | None" = None,
) -> Topology:
    """Build a k-ary flattened butterfly over ``dimensions`` dimensions.

    ``k ** dimensions`` switches; each has ``dimensions * (k - 1)`` network
    ports (full connectivity along every grid line).
    """
    k = check_positive_int(k, "k")
    dimensions = check_positive_int(dimensions, "dimensions")
    if k < 2:
        raise TopologyError(f"flattened butterfly needs k >= 2, got {k}")
    servers_per_switch = check_non_negative_int(
        servers_per_switch, "servers_per_switch"
    )
    capacity = check_positive(capacity, "capacity")

    topo = Topology(name or f"flattened-butterfly(k={k}, n={dimensions})")
    coords = list(product(range(k), repeat=dimensions))
    for coord in coords:
        topo.add_switch(coord, servers=servers_per_switch)
    for coord in coords:
        for axis in range(dimensions):
            for value in range(coord[axis] + 1, k):
                other = list(coord)
                other[axis] = value
                topo.add_link(coord, tuple(other), capacity=capacity)
    return topo
