"""High-level entry points: optimize a topology, or build one pre-optimized.

``optimize_topology`` is the front door used by experiments and the CLI;
``optimized_topology`` packages "sample an RRG, then anneal it" behind the
standard topology-factory signature so the registry can expose optimized
networks under the ``"optimized"`` kind next to ``"rrg"`` and friends.
"""

from __future__ import annotations

from repro.search.annealing import AnnealResult, anneal
from repro.search.objectives import Objective
from repro.search.parallel import parallel_anneal
from repro.topology.base import Topology
from repro.topology.random_regular import random_regular_topology
from repro.util.rng import spawn_seeds


def optimize_topology(
    topo: Topology,
    objective: "str | Objective" = "aspl",
    *,
    steps: int = 2000,
    seed=None,
    num_runs: int = 1,
    max_workers: "int | None" = None,
    **kwargs,
) -> AnnealResult:
    """Anneal ``topo`` and return the best run's result.

    ``num_runs > 1`` fans independent restarts across worker processes
    (see :func:`~repro.search.parallel.parallel_anneal`); the returned
    result is the deterministic winner. All extra keywords flow to
    :func:`~repro.search.annealing.anneal`.
    """
    if num_runs == 1:
        return anneal(topo, objective, steps=steps, seed=seed, **kwargs)
    return parallel_anneal(
        topo,
        objective,
        num_runs=num_runs,
        steps=steps,
        seed=seed,
        max_workers=max_workers,
        **kwargs,
    ).best


def optimized_topology(
    num_switches: int,
    network_degree: int,
    servers_per_switch: int = 0,
    capacity: float = 1.0,
    seed=None,
    objective: "str | Objective" = "aspl",
    steps: int = 1000,
    num_runs: int = 1,
    max_workers: "int | None" = None,
    name: "str | None" = None,
    **kwargs,
) -> Topology:
    """An RRG(N, k, r) annealed toward ``objective`` — the ``"optimized"`` kind.

    Samples a random regular topology and runs the search on it; both the
    sampling and the search derive from ``seed``, so the whole
    construction is reproducible from one integer.
    """
    sample_seed, search_seed = spawn_seeds(seed, 2)
    base = random_regular_topology(
        num_switches,
        network_degree,
        servers_per_switch=servers_per_switch,
        capacity=capacity,
        seed=sample_seed,
    )
    result = optimize_topology(
        base,
        objective,
        steps=steps,
        seed=search_seed,
        num_runs=num_runs,
        max_workers=max_workers,
        **kwargs,
    )
    topo = result.topology
    topo.name = name or (
        f"optimized-rrg(N={num_switches},r={network_degree},"
        f"objective={result.objective})"
    )
    return topo
