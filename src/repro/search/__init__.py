"""Topology search: annealed rewiring with incremental metrics.

The paper's headline claim — random regular graphs sit within a few
percent of the throughput upper bound — is demonstrated here by *search*:
optimize topologies over degree-preserving double edge swaps and measure
how little headroom is left above a random sample. The subsystem has
four layers:

- :mod:`repro.search.objectives` — pluggable scores (ASPL, spectral gap,
  bisection estimate, direct LP/approximation throughput),
- :mod:`repro.search.annealing` — simulated annealing with cooling
  schedules and O(affected pairs) incremental ASPL evaluation,
- :mod:`repro.search.parallel` — deterministic multi-seed /
  multi-temperature restarts across worker processes,
- :mod:`repro.search.engine` — ``optimize_topology`` /
  ``optimized_topology`` entry points (the registry's ``"optimized"``
  topology kind).

See ``docs/search.md`` for a guided tour.
"""

from repro.search.annealing import AnnealResult, CoolingSchedule, anneal
from repro.search.engine import optimize_topology, optimized_topology
from repro.search.objectives import (
    ASPLObjective,
    BisectionObjective,
    Objective,
    ObjectiveState,
    SpectralGapObjective,
    ThroughputObjective,
    available_objectives,
    make_objective,
)
from repro.search.parallel import ParallelSearchResult, parallel_anneal

__all__ = [
    "AnnealResult",
    "CoolingSchedule",
    "anneal",
    "optimize_topology",
    "optimized_topology",
    "ASPLObjective",
    "BisectionObjective",
    "Objective",
    "ObjectiveState",
    "SpectralGapObjective",
    "ThroughputObjective",
    "available_objectives",
    "make_objective",
    "ParallelSearchResult",
    "parallel_anneal",
]
