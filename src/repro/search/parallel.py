"""Multi-seed / multi-temperature annealing across worker processes.

Annealing is embarrassingly parallel across restarts: independent walks
from the same start topology explore different basins, and the best of
``num_runs`` runs is markedly better than any single run. This module
fans runs out over a :class:`concurrent.futures.ProcessPoolExecutor`
while keeping the whole ensemble *deterministic*: worker RNG streams are
spawned from one root :class:`numpy.random.SeedSequence` (never from
worker entropy), and the winner is selected by (score, submission index)
so completion order cannot change the result.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.exceptions import ExperimentError
from repro.search.annealing import AnnealResult, CoolingSchedule, anneal
from repro.search.objectives import Objective
from repro.topology.base import Topology
from repro.util.rng import spawn_seeds
from repro.util.validation import check_positive_int


@dataclass
class ParallelSearchResult:
    """All runs of a parallel search, in submission (seed-stream) order."""

    runs: list[AnnealResult] = field(default_factory=list)

    @property
    def best(self) -> AnnealResult:
        """The winning run: highest best score, earliest run on ties."""
        if not self.runs:
            raise ExperimentError("parallel search produced no runs")
        return max(enumerate(self.runs), key=lambda kv: (kv[1].best_score, -kv[0]))[1]

    @property
    def topology(self) -> Topology:
        """The winning run's best topology."""
        return self.best.topology

    def best_scores(self) -> list[float]:
        """Best score of each run, in run order."""
        return [run.best_score for run in self.runs]


@dataclass
class _RunSpec:
    """Everything one worker needs (picklable)."""

    topo: Topology
    objective: "str | Objective"
    steps: int
    seed: object
    schedule: "CoolingSchedule | None"
    anneal_kwargs: dict


def _run_one(spec: _RunSpec) -> AnnealResult:
    return anneal(
        spec.topo,
        spec.objective,
        steps=spec.steps,
        seed=spec.seed,
        schedule=spec.schedule,
        **spec.anneal_kwargs,
    )


def parallel_anneal(
    topo: Topology,
    objective: "str | Objective" = "aspl",
    *,
    num_runs: int = 4,
    steps: int = 2000,
    seed=None,
    temperatures: "list[float] | None" = None,
    temperature_ratio: float = 1e-3,
    max_workers: "int | None" = None,
    **kwargs,
) -> ParallelSearchResult:
    """Run ``num_runs`` independent annealing walks and keep them all.

    Parameters
    ----------
    temperatures:
        Optional explicit initial temperature per run (a "parallel
        tempering lite": hot runs explore, cold runs polish). Length must
        equal ``num_runs``; omitted runs auto-calibrate.
    max_workers:
        Process count (default: ``min(num_runs, cpu_count)``). ``0`` runs
        everything serially in-process — same results, no pool; useful
        under profilers and in constrained CI sandboxes.
    kwargs:
        Forwarded to :func:`~repro.search.annealing.anneal` / the
        objective factory (e.g. ``cooling="linear"``, ``traffic=...``).

    For a fixed ``seed`` the result — every run, and therefore the winner
    — is identical whatever ``max_workers`` is.
    """
    check_positive_int(num_runs, "num_runs")
    if temperatures is not None and len(temperatures) != num_runs:
        raise ExperimentError(
            f"temperatures has {len(temperatures)} entries for {num_runs} runs"
        )
    specs = []
    for index, child in enumerate(spawn_seeds(seed, num_runs)):
        schedule = None
        anneal_kwargs = dict(kwargs)
        if temperatures is not None:
            t0 = float(temperatures[index])
            schedule = CoolingSchedule(
                initial_temperature=t0,
                final_temperature=t0 * temperature_ratio,
            )
        else:
            # Auto-calibrated runs must honor the ratio too, not just the
            # explicit-temperatures branch.
            anneal_kwargs.setdefault("temperature_ratio", temperature_ratio)
        specs.append(
            _RunSpec(
                topo=topo,
                objective=objective,
                steps=steps,
                seed=child,
                schedule=schedule,
                anneal_kwargs=anneal_kwargs,
            )
        )

    if max_workers == 0:
        runs = [_run_one(spec) for spec in specs]
    else:
        workers = max_workers or min(num_runs, os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            runs = list(pool.map(_run_one, specs))
    return ParallelSearchResult(runs=runs)
