"""Pluggable objectives for the topology search engine.

An :class:`Objective` scores a topology; the annealer maximizes the score.
Quantities the paper *minimizes* (ASPL) are negated so "higher is better"
holds uniformly.

Objectives come in two speed classes:

- **Proxies** — ASPL (the paper's Theorem 1 argument makes it an excellent
  throughput predictor for uniform traffic), spectral gap, and a bisection
  estimate. ASPL additionally supports *incremental* evaluation through
  :class:`repro.metrics.incremental.IncrementalASPL`, which is what makes
  long annealing runs cheap.
- **Direct throughput** — any backend of the solver registry
  (:mod:`repro.flow.solvers`) via
  :func:`repro.flow.objective.throughput_evaluator`; canonical keys
  (``edge_lp``) and legacy labels (``edge-lp``) both resolve. Exact but
  orders of magnitude slower per evaluation; best used to *score* final
  candidates or for short polishing runs.

All objectives are picklable so the parallel engine can ship them to
worker processes.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ExperimentError
from repro.flow.objective import throughput_evaluator
from repro.metrics.cuts import bisection_bandwidth
from repro.metrics.incremental import IncrementalASPL, SwapEvaluation
from repro.metrics.paths import average_shortest_path_length
from repro.metrics.spectral import algebraic_connectivity
from repro.topology.base import Topology
from repro.topology.mutation import DoubleEdgeSwap
from repro.traffic.base import TrafficMatrix


class Objective:
    """Scores topologies; the search engine maximizes ``evaluate``."""

    #: Registry name (set by subclasses).
    name: str = "objective"

    def evaluate(self, topo: Topology) -> float:
        """Score ``topo`` from scratch (higher is better)."""
        raise NotImplementedError

    def attach(self, topo: Topology) -> "ObjectiveState | None":
        """Build an incremental evaluation state for ``topo``.

        Returns ``None`` when the objective has no incremental form; the
        annealer then falls back to apply/evaluate/revert per candidate.
        """
        return None


class ObjectiveState:
    """Incremental evaluation protocol used by the annealing hot loop."""

    def score(self) -> float:
        """Score of the current graph."""
        raise NotImplementedError

    def evaluate(self, swap: DoubleEdgeSwap) -> "tuple[float, object] | None":
        """Score after ``swap``, or ``None`` if the swap is inadmissible.

        Returns ``(new_score, token)``; pass the token to :meth:`commit`
        to adopt the swap. Evaluating never mutates the state.
        """
        raise NotImplementedError

    def commit(self, token: object) -> None:
        """Adopt a swap previously returned by :meth:`evaluate`."""
        raise NotImplementedError


class ASPLObjective(Objective):
    """Minimize average shortest path length (score is ``-ASPL``).

    The workhorse proxy: by Theorem 1, uniform-traffic throughput is
    capped by ``C / (f * <D>)``, so lowering ASPL raises the achievable
    ceiling — and empirically moves LP throughput almost in lockstep.
    """

    name = "aspl"

    def evaluate(self, topo: Topology) -> float:
        return -average_shortest_path_length(topo)

    def attach(self, topo: Topology) -> "ObjectiveState":
        return _ASPLState(IncrementalASPL(topo))


class _ASPLState(ObjectiveState):
    def __init__(self, tracker: IncrementalASPL) -> None:
        self._tracker = tracker

    def score(self) -> float:
        return -self._tracker.aspl

    def evaluate(self, swap: DoubleEdgeSwap) -> "tuple[float, SwapEvaluation] | None":
        evaluation = self._tracker.evaluate(swap)
        if not evaluation.connected:
            return None
        return -evaluation.aspl, evaluation

    def commit(self, token: SwapEvaluation) -> None:
        self._tracker.commit(token)


class SpectralGapObjective(Objective):
    """Maximize algebraic connectivity (the Fiedler value).

    Larger spectral gap means better expansion, which Theorem 2 ties to
    near-optimal throughput. O(n^3) per evaluation — use on small graphs.
    """

    name = "spectral"

    def __init__(self, weighted: bool = True) -> None:
        self.weighted = bool(weighted)

    def evaluate(self, topo: Topology) -> float:
        return algebraic_connectivity(topo, weighted=self.weighted)


class BisectionObjective(Objective):
    """Maximize (estimated) bisection bandwidth.

    Exact below :data:`repro.metrics.cuts.EXACT_CUT_LIMIT` switches, a
    Fiedler-sweep/random-bipartition estimate above it. The estimate seed
    is fixed so scores are deterministic and comparable across steps.
    """

    name = "bisection"

    def __init__(self, attempts: int = 50, seed: int = 0) -> None:
        self.attempts = int(attempts)
        self.seed = int(seed)

    def evaluate(self, topo: Topology) -> float:
        return bisection_bandwidth(
            topo, attempts=self.attempts, seed=self.seed
        )


class ThroughputObjective(Objective):
    """Maximize throughput of a fixed workload under a chosen flow engine.

    ``traffic`` is either a concrete :class:`TrafficMatrix` (the swap moves
    never rename switches, so one matrix stays valid across the whole
    search) or a picklable callable ``topology -> TrafficMatrix`` for
    workloads that must be rebuilt per candidate.

    When the backend is the exact edge LP and the workload is concrete,
    :meth:`attach` provides an incremental state built on
    :class:`repro.flow.incremental.EdgeLPModel`: the sparse LP is
    assembled once for the whole search and mutated per candidate swap,
    and solves run on the interior-point hot path — the raw-speed
    substrate measured in ``BENCH_solvers.json``. ``incremental=False``
    opts out (every candidate then pays a cold assembly + simplex solve).
    """

    def __init__(
        self,
        traffic: "TrafficMatrix | Callable[[Topology], TrafficMatrix]",
        solver: str = "edge-lp",
        incremental: bool = True,
        **solver_kwargs,
    ) -> None:
        self._traffic = traffic
        self._evaluator = throughput_evaluator(solver, **solver_kwargs)
        self._solver_kwargs = dict(solver_kwargs)
        self._incremental = bool(incremental)
        self.name = f"throughput-{solver}"

    def evaluate(self, topo: Topology) -> float:
        traffic = (
            self._traffic(topo) if callable(self._traffic) else self._traffic
        )
        return self._evaluator(topo, traffic)

    def attach(self, topo: Topology) -> "ObjectiveState | None":
        if not self._incremental or callable(self._traffic):
            return None
        if self._evaluator.name != "edge_lp":
            return None
        # Options other than the LP algorithm change what the cold solver
        # would compute (per-pair commodities, drop policies, ...); the
        # incremental model only replicates the default formulation.
        extras = {
            key for key in self._solver_kwargs if key != "method"
        }
        if extras:
            return None
        from repro.flow.incremental import DEFAULT_METHOD

        return _IncrementalLPState(
            topo,
            self._traffic,
            method=self._solver_kwargs.get("method", DEFAULT_METHOD),
        )


class LPThroughputObjective(ThroughputObjective):
    """The annealing-tuned exact-LP objective (always ``edge_lp``).

    A named convenience for the common "polish topologies against the
    exact LP" configuration: identical scores to
    ``ThroughputObjective(traffic)``, with the incremental model-reuse
    state guaranteed applicable.
    """

    def __init__(
        self,
        traffic: "TrafficMatrix | Callable[[Topology], TrafficMatrix]",
        method: "str | None" = None,
        incremental: bool = True,
    ) -> None:
        kwargs = {} if method is None else {"method": method}
        super().__init__(
            traffic, solver="edge_lp", incremental=incremental, **kwargs
        )


class _IncrementalLPState(ObjectiveState):
    """Swap-adjacent LP evaluation on one reused :class:`EdgeLPModel`.

    Keeps a private topology copy purely for connectivity checks, so a
    disconnecting swap is rejected exactly like the stateless path
    rejects it (the LP alone would only catch disconnections that
    separate demand endpoints).
    """

    def __init__(self, topo: Topology, traffic, method: str) -> None:
        from repro.flow.incremental import EdgeLPModel
        from repro.topology.mutation import apply_double_edge_swap

        self._apply = apply_double_edge_swap
        self._model = EdgeLPModel(topo, traffic, method=method)
        self._work = topo.copy()
        self._score: "float | None" = None

    def score(self) -> float:
        if self._score is None:
            self._score = self._model.solve()
        return self._score

    def evaluate(self, swap: DoubleEdgeSwap) -> "tuple[float, object] | None":
        self._apply(self._work, swap)
        connected = self._work.is_connected()
        self._apply(self._work, swap.inverse())
        if not connected:
            return None
        self._model.apply_swap(swap)
        try:
            value = self._model.solve()
        finally:
            self._model.apply_swap(swap.inverse())
        return value, (swap, value)

    def commit(self, token: object) -> None:
        swap, value = token
        self._model.apply_swap(swap)
        self._apply(self._work, swap)
        self._score = value


_PROXY_OBJECTIVES: dict[str, Callable[..., Objective]] = {
    "aspl": ASPLObjective,
    "spectral": SpectralGapObjective,
    "bisection": BisectionObjective,
}


def available_objectives() -> list[str]:
    """Names accepted by :func:`make_objective` (plus ``throughput-<solver>``)."""
    return sorted(_PROXY_OBJECTIVES) + ["throughput-<solver>"]


def make_objective(spec: "str | Objective", **kwargs) -> Objective:
    """Build an objective from a registry name (or pass one through).

    ``"throughput-edge-lp"``, ``"throughput-path-lp"`` etc. require a
    ``traffic`` keyword; remaining keywords go to the objective
    constructor.
    """
    if isinstance(spec, Objective):
        return spec
    if spec in _PROXY_OBJECTIVES:
        return _PROXY_OBJECTIVES[spec](**kwargs)
    if spec.startswith("throughput-"):
        solver = spec[len("throughput-") :]
        if "traffic" not in kwargs:
            raise ExperimentError(
                f"objective {spec!r} needs a traffic= workload"
            )
        traffic = kwargs.pop("traffic")
        return ThroughputObjective(traffic, solver=solver, **kwargs)
    known = ", ".join(available_objectives())
    raise ExperimentError(
        f"unknown objective {spec!r}; known objectives: {known}"
    )
