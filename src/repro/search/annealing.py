"""Simulated annealing over degree-preserving double edge swaps.

The optimizer walks the space of same-degree-sequence topologies: each
step proposes one double edge swap, scores it, and accepts with the
Metropolis rule — always when the score improves, with probability
``exp(delta / T)`` when it worsens. The temperature ``T`` follows a
cooling schedule from an (auto-calibrated by default) initial value down
to near zero, so the walk explores early and greedily polishes late.

Objectives that provide an incremental state (ASPL via
:class:`~repro.metrics.incremental.IncrementalASPL`) are evaluated in
O(affected pairs) per candidate; all others fall back to
apply/score/revert on a working copy of the topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import ExperimentError
from repro.search.objectives import Objective, make_objective
from repro.topology.base import Topology
from repro.topology.mutation import (
    apply_double_edge_swap,
    sample_double_edge_swap,
)
from repro.util.rng import as_rng
from repro.util.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class CoolingSchedule:
    """Temperature as a function of progress through the run.

    ``geometric`` interpolates exponentially between the initial and final
    temperature (the standard annealing choice); ``linear`` interpolates
    arithmetically, spending more steps hot.
    """

    initial_temperature: float
    final_temperature: float
    kind: str = "geometric"

    def __post_init__(self) -> None:
        check_positive(self.initial_temperature, "initial_temperature")
        check_positive(self.final_temperature, "final_temperature")
        if self.final_temperature > self.initial_temperature:
            raise ExperimentError(
                "final_temperature must not exceed initial_temperature"
            )
        if self.kind not in ("geometric", "linear"):
            raise ExperimentError(
                f"unknown cooling kind {self.kind!r}; use geometric or linear"
            )

    def temperature(self, step: int, total_steps: int) -> float:
        """Temperature at ``step`` of ``total_steps`` (0-based)."""
        if total_steps <= 1:
            return self.initial_temperature
        progress = step / (total_steps - 1)
        t0, t1 = self.initial_temperature, self.final_temperature
        if self.kind == "linear":
            return t0 + (t1 - t0) * progress
        return t0 * (t1 / t0) ** progress


@dataclass
class AnnealResult:
    """Outcome of one annealing run.

    ``topology`` is the best topology seen (not necessarily the final
    state of the walk). ``trace`` records ``(step, temperature,
    current_score, best_score)`` once per ``trace_every`` steps.
    """

    topology: Topology
    objective: str
    initial_score: float
    best_score: float
    final_score: float
    steps: int
    accepted: int
    rejected: int
    invalid: int
    trace: list[tuple[int, float, float, float]] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Score gain of the best topology over the starting one."""
        return self.best_score - self.initial_score


def _calibrate_temperature(
    objective_state, objective, work, rng, samples: int = 16
) -> float:
    """Initial temperature from the magnitude of sampled score deltas.

    Samples a handful of valid swaps from the start state and sets ``T0``
    to twice the mean absolute score change, so early acceptance of
    typical uphill/downhill moves is likely but not certain.
    """
    deltas: list[float] = []
    if objective_state is not None:
        base = objective_state.score()
        for _ in range(samples):
            swap = sample_double_edge_swap(work, rng=rng)
            if swap is None:
                continue
            result = objective_state.evaluate(swap)
            if result is None:
                continue
            deltas.append(abs(result[0] - base))
    else:
        base = objective.evaluate(work)
        for _ in range(samples):
            swap = sample_double_edge_swap(work, rng=rng)
            if swap is None:
                continue
            apply_double_edge_swap(work, swap)
            if work.is_connected():
                deltas.append(abs(objective.evaluate(work) - base))
            apply_double_edge_swap(work, swap.inverse())
    scale = sum(deltas) / len(deltas) if deltas else 0.0
    return 2.0 * scale if scale > 0 else 1e-3


def _rebuild(template: Topology, links: list, name: str) -> Topology:
    """A copy of ``template`` (switch attributes intact) with ``links``."""
    topo = template.copy(name=name)
    for link in topo.links:
        topo.remove_link(link.u, link.v)
    for u, v, cap in links:
        topo.add_link(u, v, capacity=cap)
    return topo


def anneal(
    topo: Topology,
    objective: "str | Objective" = "aspl",
    *,
    steps: int = 2000,
    seed=None,
    schedule: "CoolingSchedule | None" = None,
    cooling: str = "geometric",
    temperature_ratio: float = 1e-3,
    max_tries: int = 32,
    trace_every: int = 0,
    **objective_kwargs,
) -> AnnealResult:
    """Anneal ``topo`` toward a maximum of ``objective``.

    Parameters
    ----------
    objective:
        An :class:`Objective` or a :func:`make_objective` name; keyword
        arguments not listed here are forwarded to the objective factory.
    steps:
        Swap proposals to evaluate.
    schedule:
        Explicit cooling schedule. When omitted, the initial temperature
        is calibrated from sampled score deltas and cooled by
        ``temperature_ratio`` with the given ``cooling`` kind.
    trace_every:
        Record a trace point every this many steps (0 disables tracing).

    The input topology is never mutated; the best topology seen is
    returned in the result, named ``"<input-name>+<objective>"``.
    """
    check_positive_int(steps, "steps")
    objective = make_objective(objective, **objective_kwargs)
    rng = as_rng(seed)
    work = topo.copy()
    state = objective.attach(work)

    if schedule is None:
        t0 = _calibrate_temperature(state, objective, work, rng)
        schedule = CoolingSchedule(
            initial_temperature=t0,
            final_temperature=t0 * temperature_ratio,
            kind=cooling,
        )

    current = state.score() if state is not None else objective.evaluate(work)
    initial = current
    best = current
    best_links = [(link.u, link.v, link.capacity) for link in work.links]
    accepted = rejected = invalid = 0
    trace: list[tuple[int, float, float, float]] = []

    for step in range(steps):
        temperature = schedule.temperature(step, steps)
        swap = sample_double_edge_swap(work, rng=rng, max_tries=max_tries)
        if swap is None:
            invalid += 1
            continue

        if state is not None:
            result = state.evaluate(swap)
            if result is None:  # swap would disconnect the network
                invalid += 1
                continue
            candidate, token = result
        else:
            apply_double_edge_swap(work, swap)
            if not work.is_connected():
                apply_double_edge_swap(work, swap.inverse())
                invalid += 1
                continue
            candidate = objective.evaluate(work)

        delta = candidate - current
        accept = delta >= 0 or rng.random() < math.exp(delta / temperature)
        if accept:
            accepted += 1
            current = candidate
            if state is not None:
                state.commit(token)
                apply_double_edge_swap(work, swap)
            if current > best:
                best = current
                best_links = [(link.u, link.v, link.capacity) for link in work.links]
        else:
            rejected += 1
            if state is None:
                apply_double_edge_swap(work, swap.inverse())
        if trace_every and (step % trace_every == 0 or step == steps - 1):
            trace.append((step, temperature, current, best))

    best_topo = _rebuild(topo, best_links, f"{topo.name}+{objective.name}")
    return AnnealResult(
        topology=best_topo,
        objective=objective.name,
        initial_score=initial,
        best_score=best,
        final_score=current,
        steps=steps,
        accepted=accepted,
        rejected=rejected,
        invalid=invalid,
        trace=trace,
    )
