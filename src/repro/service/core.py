"""The embeddable service core: scheduler ownership plus a grid memo.

:class:`EvalService` is everything the daemon does minus the sockets, so
tests (and embedders) drive the full submit/stream/cancel surface
in-process. It owns one executor and one
:class:`~repro.pipeline.scheduler.GridScheduler` shared by every
submitted grid — that sharing is the point: an interactive query lands
in the same queue as a running bulk sweep and outranks it.

The **grid memo** answers repeat grids without scheduling anything. Two
layers, keyed by a stable digest of ``(grid.to_dict(), batch)``:

- an in-process LRU of solved cell lists — a warm resubmit returns in
  microseconds, no queue, no workers (process pools spawn lazily, so a
  memo-served daemon never forks at all);
- a ``ResultCache`` payload entry recording the cells *and their result
  keys* — on a daemon restart the memo re-validates each key against
  the content-addressed store (cheap file checks) before trusting it,
  so a pruned cache can never resurrect stale answers.

Memo-served cells are marked ``cache_hit=True`` whatever their first
run recorded: to the caller they are cache answers.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import replace

from repro.exceptions import ExperimentError
from repro.pipeline.cache import ResultCache
from repro.pipeline.executors import executor_for_workers
from repro.pipeline.jobs import GridJob, _cell_from_payload, _cell_payload
from repro.pipeline.scenario import ScenarioGrid
from repro.pipeline.scheduler import BULK, GridScheduler, JobHandle, parse_priority
from repro.util.hashing import stable_digest

#: Kind tag of persisted grid-memo entries in the result cache.
GRID_MEMO_KIND = "grid_memo"

#: Default size of the in-process grid memo (distinct grids, not cells).
GRID_MEMO_SIZE = 64


def grid_digest(grid: ScenarioGrid, batch: bool = True) -> str:
    """Stable content address of one grid execution request."""
    return stable_digest(
        {"kind": GRID_MEMO_KIND, "grid": grid.to_dict(), "batch": bool(batch)}
    )


class EvalService:
    """One scheduler, one executor, many grids — the daemon's engine.

    ``workers`` picks the executor exactly like
    :func:`~repro.pipeline.engine.run_grid` (serial in-process for 1, a
    lazy process pool beyond); pass ``executor`` to override. All public
    methods are safe to call from any thread — the daemon calls them
    from asyncio handlers while the scheduler's dispatcher thread runs
    callbacks.
    """

    def __init__(
        self,
        workers: int = 2,
        cache_dir: "str | None" = None,
        executor=None,
        retry=None,
        max_in_flight: "int | None" = None,
        memo_size: int = GRID_MEMO_SIZE,
    ) -> None:
        if workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.cache = ResultCache(self.cache_dir) if self.cache_dir else None
        self._owns_executor = executor is None
        self.executor = (
            executor if executor is not None else executor_for_workers(workers)
        )
        self.scheduler = GridScheduler(
            self.executor, retry=retry, max_in_flight=max_in_flight
        )
        self.started_at = time.time()
        self.memo_size = memo_size
        self._memo: "OrderedDict[str, list]" = OrderedDict()
        self._lock = threading.Lock()
        self._jobs: "dict[str, JobHandle]" = {}
        self.memo_answers = 0
        self.submitted = 0

    # -- grid memo -----------------------------------------------------

    def lookup_cached(self, grid: ScenarioGrid, batch: bool = True):
        """Solved cells for this exact grid, or ``None``.

        Checks the in-process memo, then the persisted cache entry
        (validating every recorded result key still exists on disk).
        Returned cells are copies with ``cache_hit=True``.
        """
        digest = grid_digest(grid, batch)
        with self._lock:
            cells = self._memo.get(digest)
            if cells is not None:
                self._memo.move_to_end(digest)
        if cells is None:
            cells = self._lookup_persisted(grid, digest)
            if cells is None:
                return None
        self.memo_answers += 1
        return [replace(cell, cache_hit=True) for cell in cells]

    def _lookup_persisted(self, grid: ScenarioGrid, digest: str):
        if self.cache is None:
            return None
        payload = self.cache.get_payload(digest, GRID_MEMO_KIND)
        if payload is None:
            return None
        keys = payload.get("keys")
        rows = payload.get("cells")
        scenarios = grid.cells()
        if (
            not isinstance(keys, list)
            or not isinstance(rows, list)
            or len(rows) != len(scenarios)
        ):
            return None
        # Trust the memo only while every underlying solve is still in
        # the content-addressed store — a pruned cache means re-solving.
        if any(key not in self.cache for key in keys):
            return None
        try:
            cells = [
                _cell_from_payload(scenario, row)
                for scenario, row in zip(scenarios, rows)
            ]
        except TypeError:
            return None
        with self._lock:
            self._memo[digest] = cells
            self._memo.move_to_end(digest)
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)
        return cells

    def store_cached(
        self, grid: ScenarioGrid, batch: bool, cells: list
    ) -> None:
        """Record a completed grid's cells in both memo layers."""
        digest = grid_digest(grid, batch)
        with self._lock:
            self._memo[digest] = list(cells)
            self._memo.move_to_end(digest)
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)
        if self.cache is not None:
            self.cache.put_payload(
                digest,
                GRID_MEMO_KIND,
                {
                    "keys": [cell.key for cell in cells],
                    "cells": [_cell_payload(cell) for cell in cells],
                },
            )

    # -- job submission ------------------------------------------------

    def submit(
        self,
        grid: ScenarioGrid,
        priority: "int | str" = BULK,
        batch: bool = True,
        on_cell=None,
        on_done=None,
    ) -> "tuple[str, JobHandle | None, list | None]":
        """Run ``grid``, or answer it from the memo.

        Returns ``(job_id, handle, cached_cells)`` — exactly one of
        ``handle`` / ``cached_cells`` is set. When a handle is returned,
        ``on_cell(index, cell)`` streams results from the dispatcher
        thread and ``on_done(handle)`` fires at settlement; a memo
        answer invokes neither (the caller already holds every cell).
        """
        priority = parse_priority(priority)
        cached = self.lookup_cached(grid, batch)
        if cached is not None:
            job_id = f"memo-{grid_digest(grid, batch)[:12]}"
            return job_id, None, cached
        job = GridJob(grid, batch=batch, cache_dir=self.cache_dir)
        self.submitted += 1

        def _memoize(handle: JobHandle) -> None:
            # Runs on the dispatcher thread *before* the handle's done
            # event is set, so judge success from the job itself.
            if not handle.job.cancelled and not handle.job.failed_items():
                try:
                    self.store_cached(grid, batch, handle.job.result_cells())
                except ExperimentError:
                    pass  # incomplete (shouldn't happen at settlement)
            if on_done is not None:
                on_done(handle)

        handle = self.scheduler.submit(
            job, priority=priority, on_cell=on_cell, on_done=_memoize
        )
        with self._lock:
            self._jobs[job.run_id] = handle
        return job.run_id, handle, None

    def get_job(self, job_id: str) -> "JobHandle | None":
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> bool:
        handle = self.get_job(job_id)
        if handle is None or handle.done:
            return False
        handle.cancel()
        return True

    def stats(self) -> dict:
        with self._lock:
            jobs = {
                job_id: handle.status
                for job_id, handle in self._jobs.items()
            }
            memo_entries = len(self._memo)
        return {
            "uptime_s": time.time() - self.started_at,
            "workers": self.workers,
            "cache_dir": self.cache_dir,
            "worker_pids": list(self.executor.worker_pids()),
            "submitted": self.submitted,
            "memo_answers": self.memo_answers,
            "memo_entries": memo_entries,
            "jobs": jobs,
            "scheduler": self.scheduler.stats(),
        }

    def close(self) -> None:
        self.scheduler.close()
        if self._owns_executor:
            self.executor.shutdown(wait=False)

    def __enter__(self) -> "EvalService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
