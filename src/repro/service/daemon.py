"""The ``repro-experiments serve`` daemon: sockets over the service core.

Two listeners share one :class:`~repro.service.core.EvalService`:

- **Unix socket, JSON lines** — the primary surface. Each request is
  one JSON object on one line; ``submit`` answers with a stream of
  events (``accepted``, one ``cell`` per solved cell *as it solves*,
  then ``done`` with solve counts), everything else with a single
  object. One connection handles one request at a time; clients open a
  connection per concurrent query.
- **Minimal HTTP** (optional ``--http-port``) — ``GET /ping``,
  ``GET /stats``, and a blocking ``POST /submit`` for curl-style use.
  This is a probe surface, not a web framework: requests are parsed by
  hand and responses are single JSON bodies.

Scheduler callbacks run on the dispatcher thread; they cross into
asyncio via ``loop.call_soon_threadsafe`` onto a per-request queue, so
the event loop never blocks on the scheduler and vice versa.

Request ops::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "submit", "grid": {...ScenarioGrid.to_dict...},
     "priority": "interactive"|"bulk"|int, "batch": true}
    {"op": "status", "job_id": "..."}
    {"op": "cancel", "job_id": "..."}
    {"op": "shutdown"}
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro.pipeline.scenario import ScenarioGrid
from repro.service.core import EvalService

#: Event names a ``submit`` stream may carry, in order of appearance.
SUBMIT_EVENTS = ("accepted", "cell", "done", "error")


def _encode(message: dict) -> bytes:
    return (json.dumps(message) + "\n").encode("utf-8")


async def _send(writer, message: dict) -> None:
    """Write one JSON-lines message and honor transport backpressure.

    Every reply on the socket surface goes through here: ``drain()``
    after each write is what bounds the daemon's buffered output by the
    kernel socket buffer — a slow or paused reader then pauses its own
    stream instead of growing the process heap (most visible on the
    memo-answer path, which emits a whole grid's cells in one burst).
    """
    writer.write(_encode(message))
    await writer.drain()


class EvalDaemon:
    """Bind an :class:`EvalService` to a unix socket (and optional HTTP)."""

    def __init__(
        self,
        service: EvalService,
        socket_path: str,
        http_port: "int | None" = None,
        http_host: str = "127.0.0.1",
    ) -> None:
        self.service = service
        self.socket_path = str(socket_path)
        self.http_port = http_port
        self.http_host = http_host
        self._servers: list = []
        self._stop = asyncio.Event()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._servers.append(
            await asyncio.start_unix_server(
                self._handle_socket, path=self.socket_path
            )
        )
        if self.http_port is not None:
            self._servers.append(
                await asyncio.start_server(
                    self._handle_http, host=self.http_host, port=self.http_port
                )
            )

    async def serve_forever(self) -> None:
        await self.start()
        try:
            await self._stop.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def request_shutdown(self) -> None:
        self._stop.set()

    # -- unix socket (JSON lines) --------------------------------------

    async def _handle_socket(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    await _send(
                        writer,
                        {"event": "error", "error": f"bad JSON: {exc}"},
                    )
                    continue
                await self._dispatch(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown cancels open connection handlers; that is a
            # clean exit, not an error to log.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: dict, writer) -> None:
        op = request.get("op")
        if op == "ping":
            await _send(writer, {"event": "pong", "time": time.time()})
        elif op == "stats":
            await _send(
                writer, {"event": "stats", "stats": self.service.stats()}
            )
        elif op == "status":
            await _send(writer, self._status(request.get("job_id")))
        elif op == "cancel":
            job_id = request.get("job_id")
            ok = self.service.cancel(job_id) if job_id else False
            await _send(
                writer,
                {"event": "cancelled" if ok else "error",
                 "job_id": job_id,
                 **({} if ok else {"error": "unknown or finished job"})},
            )
        elif op == "submit":
            await self._submit(request, writer)
        elif op == "shutdown":
            await _send(writer, {"event": "stopping"})
            self.request_shutdown()
        else:
            await _send(
                writer, {"event": "error", "error": f"unknown op {op!r}"}
            )

    def _status(self, job_id: "str | None") -> dict:
        handle = self.service.get_job(job_id) if job_id else None
        if handle is None:
            return {"event": "error", "error": f"unknown job {job_id!r}"}
        return {
            "event": "status",
            "job_id": job_id,
            "status": handle.status,
            "counts": handle.job.counts(),
        }

    async def _submit(self, request: dict, writer) -> None:
        start = time.perf_counter()
        try:
            grid = ScenarioGrid.from_dict(request["grid"])
            priority = request.get("priority", "bulk")
            batch = bool(request.get("batch", True))
        except Exception as exc:
            await _send(
                writer, {"event": "error", "error": f"bad submit: {exc}"}
            )
            return

        loop = asyncio.get_running_loop()
        events: "asyncio.Queue" = asyncio.Queue()

        def on_cell(index: int, cell) -> None:
            loop.call_soon_threadsafe(
                events.put_nowait, ("cell", index, cell)
            )

        def on_done(handle) -> None:
            loop.call_soon_threadsafe(events.put_nowait, ("done", handle))

        try:
            job_id, handle, cached = self.service.submit(
                grid,
                priority=priority,
                batch=batch,
                on_cell=on_cell,
                on_done=on_done,
            )
        except Exception as exc:
            await _send(
                writer,
                {"event": "error", "error": f"{type(exc).__name__}: {exc}"},
            )
            return

        await _send(
            writer,
            {
                "event": "accepted",
                "job_id": job_id,
                "cells": len(grid),
                "cached": cached is not None,
            },
        )
        if cached is not None:
            # Memo answer: every cell is already in hand — no queue, no
            # workers; the elapsed time here is the microseconds-path.
            for index, cell in enumerate(cached):
                await _send(
                    writer,
                    {"event": "cell", "index": index, "row": cell.row()},
                )
            await _send(
                writer,
                {
                    "event": "done",
                    "job_id": job_id,
                    "status": "done",
                    "cached": True,
                    "solve_counts": {
                        "re_solved": 0,
                        "cache_hit": len(cached),
                        "skipped": 0,
                    },
                    "elapsed_s": time.perf_counter() - start,
                },
            )
            return

        while True:
            kind, *payload = await events.get()
            if kind == "cell":
                index, cell = payload
                await _send(
                    writer,
                    {"event": "cell", "index": index, "row": cell.row()},
                )
                continue
            (done_handle,) = payload
            message = {
                "event": "done",
                "job_id": job_id,
                "status": done_handle.status,
                "cached": False,
                "counts": done_handle.job.counts(),
                "solve_counts": done_handle.job.solve_counts(),
                "elapsed_s": time.perf_counter() - start,
            }
            if done_handle.status == "failed":
                failed = done_handle.job.failed_items()
                message["error"] = "; ".join(
                    f"item {item.item_id}: {item.error}" for item in failed
                ) or (
                    f"{type(done_handle.error).__name__}: {done_handle.error}"
                    if done_handle.error is not None
                    else "failed"
                )
            await _send(writer, message)
            return

    # -- minimal HTTP --------------------------------------------------

    async def _handle_http(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                await self._http_reply(writer, 400, {"error": "bad request"})
                return
            method, path = parts[0], parts[1]
            content_length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            body = (
                await reader.readexactly(content_length)
                if content_length
                else b""
            )
            await self._http_route(method, path, body, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            ValueError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _http_route(
        self, method: str, path: str, body: bytes, writer
    ) -> None:
        if method == "GET" and path == "/ping":
            await self._http_reply(writer, 200, {"ok": True})
        elif method == "GET" and path == "/stats":
            await self._http_reply(writer, 200, self.service.stats())
        elif method == "POST" and path == "/submit":
            try:
                request = json.loads(body or b"{}")
                request["op"] = "submit"
            except json.JSONDecodeError as exc:
                await self._http_reply(writer, 400, {"error": f"bad JSON: {exc}"})
                return
            collector = _CollectingWriter()
            await self._submit(request, collector)
            status = 200 if collector.final.get("event") == "done" else 400
            await self._http_reply(
                writer,
                status,
                {**collector.final, "rows": collector.rows},
            )
        else:
            await self._http_reply(
                writer, 404, {"error": f"no route {method} {path}"}
            )

    async def _http_reply(self, writer, status: int, payload: dict) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Error"
        )
        body = json.dumps(payload).encode("utf-8")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()


class _CollectingWriter:
    """Duck-typed writer that buffers a submit stream for HTTP replies."""

    def __init__(self) -> None:
        self.rows: list = []
        self.final: dict = {}

    def write(self, data: bytes) -> None:
        message = json.loads(data)
        if message.get("event") == "cell":
            self.rows.append(message["row"])
        else:
            self.final = message

    async def drain(self) -> None:
        pass


def serve(
    socket_path: str,
    workers: int = 2,
    cache_dir: "str | None" = None,
    http_port: "int | None" = None,
    retry=None,
    max_in_flight: "int | None" = None,
    ready=None,
) -> int:
    """Blocking entry point behind ``repro-experiments serve``.

    Runs until a ``shutdown`` request (or KeyboardInterrupt). ``ready``
    is an optional zero-arg callable invoked once the listeners are
    bound — the CLI prints the banner there, and tests use it to
    synchronize.
    """
    service = EvalService(
        workers=workers,
        cache_dir=cache_dir,
        retry=retry,
        max_in_flight=max_in_flight,
    )
    daemon = EvalDaemon(service, socket_path, http_port=http_port)

    async def _main() -> None:
        await daemon.start()
        if ready is not None:
            ready()
        try:
            await daemon._stop.wait()
        finally:
            await daemon.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0
