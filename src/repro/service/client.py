"""Synchronous unix-socket client for the evaluation daemon.

One connection per request (the daemon streams a whole submit over a
single connection); everything is JSON lines, mirroring
:mod:`repro.service.daemon`. The CLI ``submit`` subcommand and the CI
end-to-end gate both drive the daemon through this class, so the client
is deliberately dependency-free: stdlib sockets only.
"""

from __future__ import annotations

import json
import socket

from repro.exceptions import ExperimentError


class ServiceClient:
    """Talk JSON lines to a running :class:`~repro.service.EvalDaemon`."""

    def __init__(self, socket_path: str, timeout: "float | None" = 300.0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ExperimentError(
                f"cannot reach daemon at {self.socket_path}: {exc}"
            ) from exc
        return sock

    def _roundtrip(self, request: dict) -> dict:
        """Send one request, read one response object."""
        with self._connect() as sock:
            sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            line = self._readline(sock.makefile("rb"))
        return line

    @staticmethod
    def _readline(stream) -> dict:
        line = stream.readline()
        if not line:
            raise ExperimentError("daemon closed the connection mid-response")
        return json.loads(line)

    # -- simple ops ----------------------------------------------------

    def ping(self) -> dict:
        return self._roundtrip({"op": "ping"})

    def stats(self) -> dict:
        response = self._roundtrip({"op": "stats"})
        return response.get("stats", response)

    def status(self, job_id: str) -> dict:
        return self._roundtrip({"op": "status", "job_id": job_id})

    def cancel(self, job_id: str) -> dict:
        return self._roundtrip({"op": "cancel", "job_id": job_id})

    def shutdown(self) -> dict:
        return self._roundtrip({"op": "shutdown"})

    # -- submit (streaming) --------------------------------------------

    def submit(
        self,
        grid_dict: dict,
        priority: "str | int" = "bulk",
        batch: bool = True,
        on_event=None,
    ) -> dict:
        """Submit a grid and stream it to completion.

        ``grid_dict`` is a ``ScenarioGrid.to_dict`` payload. ``on_event``
        (optional) sees every raw event as it arrives — ``accepted``,
        each ``cell``, and the final ``done``/``error``. Returns the
        final event with the collected cell rows attached under
        ``"rows"`` (grid order).

        Raises :class:`ExperimentError` when the daemon reports failure,
        so scripted callers can rely on exceptions, not status fields.
        """
        request = {
            "op": "submit",
            "grid": grid_dict,
            "priority": priority,
            "batch": batch,
        }
        rows: "dict[int, dict]" = {}
        with self._connect() as sock:
            sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            stream = sock.makefile("rb")
            while True:
                message = self._readline(stream)
                if on_event is not None:
                    on_event(message)
                event = message.get("event")
                if event == "cell":
                    rows[message["index"]] = message["row"]
                    continue
                if event == "accepted":
                    continue
                if event == "error" or (
                    event == "done" and message.get("status") != "done"
                ):
                    raise ExperimentError(
                        message.get("error")
                        or f"job ended with status {message.get('status')!r}"
                    )
                if event == "done":
                    message["rows"] = [
                        rows[index] for index in sorted(rows)
                    ]
                    return message
                raise ExperimentError(f"unexpected event {message!r}")
