"""Evaluation-as-a-service: a long-running daemon over the grid scheduler.

The pipeline's job model (:mod:`repro.pipeline.jobs`,
:mod:`repro.pipeline.scheduler`) executes grids; this package puts a
service front-end on it:

- :class:`EvalService` — the embeddable core: one scheduler + executor,
  a grid-digest memo answering fully-cached grids without touching a
  worker, and job bookkeeping by id.
- :class:`EvalDaemon` — the ``repro-experiments serve`` asyncio server:
  JSON-lines requests over a local unix socket (streaming one event per
  solved cell), plus a minimal HTTP handler for dashboards and probes.
- :class:`ServiceClient` — the synchronous client the CLI and tests use.

Interactive queries submit with ``priority="interactive"`` and jump
every queued bulk item; see docs/service.md for the scheduling and
resume semantics.
"""

from repro.service.core import EvalService, GRID_MEMO_KIND, grid_digest
from repro.service.daemon import EvalDaemon, serve
from repro.service.client import ServiceClient

__all__ = [
    "EvalService",
    "GRID_MEMO_KIND",
    "grid_digest",
    "EvalDaemon",
    "serve",
    "ServiceClient",
]
