"""All-to-all traffic: every server sends one unit flow to every other.

The paper notes ([20]) that all-to-all performance bounds performance under
any workload within a factor of two, which makes it the canonical
"high-density" stress matrix. The switch-level aggregation keeps the LP
small: demand between switches ``u != v`` is ``servers(u) * servers(v)``.
"""

from __future__ import annotations

from repro.exceptions import TrafficError
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix


def all_to_all_traffic(topo: Topology, name: "str | None" = None) -> TrafficMatrix:
    """Build the all-to-all matrix over every server pair of ``topo``."""
    server_map = {v: c for v, c in topo.server_map().items() if c > 0}
    total = sum(server_map.values())
    if total < 2:
        raise TrafficError(f"need at least 2 servers, topology has {total}")
    demands: dict = {}
    local = 0
    for u, su in server_map.items():
        local += su * (su - 1)
        for v, sv in server_map.items():
            if u == v:
                continue
            demands[(u, v)] = float(su * sv)
    return TrafficMatrix(
        name=name or "all-to-all",
        demands=demands,
        num_flows=total * (total - 1),
        num_local_flows=local,
        server_pairs=None,
    )
