"""Traffic matrices: the workloads the paper evaluates.

All constructors return a switch-level :class:`~repro.traffic.base.TrafficMatrix`
whose demands count unit server flows between switch pairs. Server-level
pair lists are retained where the packet simulator needs them (permutations,
chunky), and omitted for dense matrices (all-to-all).
"""

from repro.traffic.base import TrafficMatrix, servers_of
from repro.traffic.permutation import (
    random_permutation_traffic,
    switch_permutation_traffic,
)
from repro.traffic.alltoall import all_to_all_traffic
from repro.traffic.chunky import chunky_traffic
from repro.traffic.stride import stride_traffic
from repro.traffic.hotspot import hotspot_traffic
from repro.traffic.gravity import gravity_traffic
from repro.traffic.adversarial import longest_matching_traffic
from repro.traffic.registry import (
    available_traffic_models,
    make_traffic,
    register_traffic_model,
)

__all__ = [
    "TrafficMatrix",
    "servers_of",
    "random_permutation_traffic",
    "switch_permutation_traffic",
    "all_to_all_traffic",
    "chunky_traffic",
    "stride_traffic",
    "hotspot_traffic",
    "gravity_traffic",
    "longest_matching_traffic",
    "available_traffic_models",
    "make_traffic",
    "register_traffic_model",
]
