"""Traffic matrices: the workloads the paper evaluates.

All constructors return a switch-level :class:`~repro.traffic.base.TrafficMatrix`
whose demands count unit server flows between switch pairs. Server-level
pair lists are retained where the packet simulator needs them (permutations,
chunky), and omitted for dense matrices (all-to-all).

Time-varying traffic lives in :mod:`repro.traffic.timeline`: a
:class:`~repro.traffic.timeline.TrafficTimeline` folds per-step
:class:`~repro.traffic.timeline.DemandDelta` records over a base matrix,
generated synthetically (:mod:`repro.traffic.vdc`) or ingested from
CSV/JSON traces.
"""

from repro.traffic.base import TrafficMatrix, servers_of
from repro.traffic.permutation import (
    random_permutation_traffic,
    switch_permutation_traffic,
)
from repro.traffic.alltoall import all_to_all_traffic
from repro.traffic.chunky import chunky_traffic
from repro.traffic.stride import stride_traffic
from repro.traffic.hotspot import hotspot_traffic
from repro.traffic.gravity import gravity_traffic
from repro.traffic.adversarial import longest_matching_traffic
from repro.traffic.timeline import (
    DemandDelta,
    TrafficTimeline,
    available_timelines,
    make_timeline,
    read_trace,
    register_timeline,
    write_trace,
)
from repro.traffic.vdc import vdc_snapshot_traffic, vdc_timeline
from repro.traffic.registry import (
    available_traffic_models,
    make_traffic,
    register_traffic_model,
    traffic_model_is_deterministic,
)

__all__ = [
    "TrafficMatrix",
    "servers_of",
    "random_permutation_traffic",
    "switch_permutation_traffic",
    "all_to_all_traffic",
    "chunky_traffic",
    "stride_traffic",
    "hotspot_traffic",
    "gravity_traffic",
    "longest_matching_traffic",
    "DemandDelta",
    "TrafficTimeline",
    "available_timelines",
    "make_timeline",
    "read_trace",
    "register_timeline",
    "write_trace",
    "vdc_snapshot_traffic",
    "vdc_timeline",
    "available_traffic_models",
    "make_traffic",
    "register_traffic_model",
    "traffic_model_is_deterministic",
]
