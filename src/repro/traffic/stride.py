"""Stride traffic: server ``i`` sends to server ``(i + stride) mod S``.

A deterministic permutation workload; strides near half the server count
produce long-haul patterns on structured topologies, which makes stride a
useful adversarial complement to random permutations.
"""

from __future__ import annotations

from repro.exceptions import TrafficError
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix, servers_of
from repro.util.validation import check_positive_int


def stride_traffic(
    topo: Topology, stride: int = 1, name: "str | None" = None
) -> TrafficMatrix:
    """Build the stride-``stride`` permutation over all servers.

    Servers are ordered by switch insertion order, then local index. The
    stride must not be a multiple of the server count (that would map every
    server to itself).
    """
    stride = check_positive_int(stride, "stride")
    servers = servers_of(topo.server_map())
    total = len(servers)
    if total < 2:
        raise TrafficError(f"need at least 2 servers, topology has {total}")
    if stride % total == 0:
        raise TrafficError(
            f"stride {stride} is a multiple of the server count {total}"
        )
    pairs = [
        (servers[i], servers[(i + stride) % total]) for i in range(total)
    ]
    return TrafficMatrix.from_server_pairs(pairs, name=name or f"stride-{stride}")
