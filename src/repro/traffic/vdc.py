"""Synthetic VDC workload: tenant virtual clusters arriving and departing.

Models an Azure-V1-style virtual-data-center trace at switch level:
tenants arrive as a Poisson process, each requesting a virtual cluster of
``n`` VMs (lognormal) that lives for a lognormal number of timesteps. VMs
are placed on server slots *in proportion to free slots per switch* — the
paper's §5.1 proportional placement rule
(:func:`repro.core.placement.expected_share_per_switch` computes the
shares) — and a tenant's VMs talk all-to-all at unit rate, so an ``n``-VM
tenant contributes ``n*(n-1)`` unit server flows. Same-switch VM pairs
become local flows, matching the non-blocking-backplane traffic model.

Each timestep's arrivals and departures fold into one
:class:`~repro.traffic.timeline.DemandDelta`, so the generated
:class:`~repro.traffic.timeline.TrafficTimeline` replays through the
warm-started incremental solver path. All demands are integer unit
flows, which keeps the delta algebra exact (apply-then-revert identity).

Determinism: one :func:`repro.util.rng.as_rng` stream drawn in a fixed
order, switches iterated repr-sorted — the same seed always yields the
same timeline regardless of hash seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import TrafficError
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix
from repro.traffic.timeline import DemandDelta, TrafficTimeline
from repro.util.rng import as_rng

#: Bound on the extra warmup steps spent waiting for a first placeable
#: tenant before giving up on producing a non-empty base matrix.
_WARMUP_EXTENSION_LIMIT = 1000


@dataclass
class _Tenant:
    tenant_id: int
    vm_counts: dict  # switch -> VMs placed there
    depart_step: int

    def demand_changes(self, sign: float) -> dict:
        """Switch-pair unit-flow contribution, scaled by ``sign`` (+/-1)."""
        changes: dict = {}
        switches = sorted(self.vm_counts, key=str)
        for u in switches:
            for v in switches:
                if u == v:
                    continue
                changes[(u, v)] = sign * self.vm_counts[u] * self.vm_counts[v]
        return changes

    @property
    def num_vms(self) -> int:
        return sum(self.vm_counts.values())

    @property
    def num_flows(self) -> int:
        n = self.num_vms
        return n * (n - 1)

    @property
    def num_local_flows(self) -> int:
        return sum(count * (count - 1) for count in self.vm_counts.values())


class _VdcSimulator:
    """Slot-tracking tenant arrival/departure process over a topology."""

    def __init__(
        self,
        topo: Topology,
        rng,
        *,
        arrival_rate: float,
        mean_vms: float,
        sigma_vms: float,
        mean_duration: float,
        sigma_duration: float,
    ) -> None:
        import numpy as np

        server_map = topo.server_map()
        self.switch_order = sorted(server_map, key=str)
        self.free = {switch: int(server_map[switch]) for switch in self.switch_order}
        self.total_free = sum(self.free.values())
        if self.total_free < 2:
            raise TrafficError(
                f"VDC workload needs >= 2 server slots, topology has "
                f"{self.total_free}"
            )
        self.rng = rng
        self.arrival_rate = float(arrival_rate)
        self.mu_vms = float(np.log(mean_vms))
        self.sigma_vms = float(sigma_vms)
        self.mu_duration = float(np.log(mean_duration))
        self.sigma_duration = float(sigma_duration)
        self.active: list[_Tenant] = []
        self.rejected = 0
        self._next_tenant_id = 0

    # ------------------------------------------------------------------
    def _place(self, nvms: int) -> dict | None:
        """Proportional-to-free-slots placement; ``None`` if it can't fit."""
        # Imported lazily: repro.core's package init reaches the pipeline,
        # which imports this module back through the traffic registry.
        from repro.core.placement import expected_share_per_switch

        total_free = sum(self.free.values())
        if nvms > total_free:
            return None
        candidates = [s for s in self.switch_order if self.free[s] > 0]
        shares = {
            s: expected_share_per_switch(nvms, self.free[s], total_free)
            for s in candidates
        }
        counts = {s: min(int(shares[s]), self.free[s]) for s in candidates}
        remainder = nvms - sum(counts.values())
        # Largest fractional share first; repr order breaks ties.
        by_fraction = sorted(
            candidates, key=lambda s: (-(shares[s] - int(shares[s])), str(s))
        )
        while remainder > 0:
            progressed = False
            for s in by_fraction:
                if remainder == 0:
                    break
                if counts[s] < self.free[s]:
                    counts[s] += 1
                    remainder -= 1
                    progressed = True
            if not progressed:
                return None
        placed = {s: c for s, c in counts.items() if c > 0}
        for s, c in placed.items():
            self.free[s] -= c
        return placed

    def _draw_tenant_size(self) -> int:
        raw = int(round(self.rng.lognormal(self.mu_vms, self.sigma_vms)))
        return max(2, min(raw, self.total_free))

    def _draw_duration(self) -> int:
        return max(
            1, int(round(self.rng.lognormal(self.mu_duration, self.sigma_duration)))
        )

    def step(self, now: int) -> tuple[list[_Tenant], list[_Tenant]]:
        """Advance one timestep; returns (departures, arrivals)."""
        departures = [t for t in self.active if t.depart_step <= now]
        self.active = [t for t in self.active if t.depart_step > now]
        for tenant in departures:
            for s, c in tenant.vm_counts.items():
                self.free[s] += c
        arrivals: list[_Tenant] = []
        for _ in range(int(self.rng.poisson(self.arrival_rate))):
            nvms = self._draw_tenant_size()
            duration = self._draw_duration()
            placed = self._place(nvms)
            if placed is None:
                self.rejected += 1
                continue
            tenant = _Tenant(
                tenant_id=self._next_tenant_id,
                vm_counts=placed,
                depart_step=now + duration,
            )
            self._next_tenant_id += 1
            self.active.append(tenant)
            arrivals.append(tenant)
        return departures, arrivals


def _merge_changes(target: dict, updates: dict) -> None:
    for pair, units in updates.items():
        merged = target.get(pair, 0.0) + units
        if merged == 0.0:
            target.pop(pair, None)
        else:
            target[pair] = merged


def vdc_timeline(
    topo: Topology,
    seed=None,
    *,
    steps: int = 100,
    arrival_rate: float = 1.0,
    mean_vms: float = 6.0,
    sigma_vms: float = 0.6,
    mean_duration: float = 20.0,
    sigma_duration: float = 0.6,
    warmup: int = 10,
    name: str | None = None,
) -> TrafficTimeline:
    """Generate a VDC tenant-churn timeline with ``steps`` matrices.

    ``warmup`` pre-simulation steps populate the base matrix (extended, up
    to a bound, until at least one tenant with cross-switch demand is
    active — the base must be solvable). If a recorded step's departures
    would leave *no* network demand at all, those departures are deferred
    to the next step so every step stays solvable; the deferral is
    deterministic and noted in the delta label.
    """
    if steps < 1:
        raise TrafficError(f"steps must be >= 1, got {steps}")
    if warmup < 0:
        raise TrafficError(f"warmup must be >= 0, got {warmup}")
    if arrival_rate <= 0:
        raise TrafficError(f"arrival_rate must be positive, got {arrival_rate}")
    rng = as_rng(seed)
    sim = _VdcSimulator(
        topo,
        rng,
        arrival_rate=arrival_rate,
        mean_vms=mean_vms,
        sigma_vms=sigma_vms,
        mean_duration=mean_duration,
        sigma_duration=sigma_duration,
    )

    def network_pairs(changes_source) -> bool:
        return any(units > 0 for units in changes_source.values())

    state: dict = {}
    num_flows = 0
    num_local = 0
    now = 0
    while now < warmup or not network_pairs(state):
        departures, arrivals = sim.step(now)
        for tenant in departures:
            _merge_changes(state, tenant.demand_changes(-1.0))
            num_flows -= tenant.num_flows
            num_local -= tenant.num_local_flows
        for tenant in arrivals:
            _merge_changes(state, tenant.demand_changes(+1.0))
            num_flows += tenant.num_flows
            num_local += tenant.num_local_flows
        now += 1
        if now > warmup + _WARMUP_EXTENSION_LIMIT:
            raise TrafficError(
                "VDC warmup produced no cross-switch demand within "
                f"{_WARMUP_EXTENSION_LIMIT} extra steps; raise arrival_rate "
                "or mean_vms"
            )

    label = name if name is not None else "vdc"
    base = TrafficMatrix(
        name=f"{label} base",
        demands=dict(state),
        num_flows=num_flows,
        num_local_flows=num_local,
    )

    deltas: list[DemandDelta] = []
    deferred: list[_Tenant] = []
    for _ in range(steps - 1):
        departures, arrivals = sim.step(now)
        departures = deferred + departures
        deferred = []
        changes: dict = {}
        flows_delta = 0
        local_delta = 0
        for tenant in arrivals:
            _merge_changes(changes, tenant.demand_changes(+1.0))
            flows_delta += tenant.num_flows
            local_delta += tenant.num_local_flows
        departure_changes: dict = {}
        dep_flows = 0
        dep_local = 0
        for tenant in departures:
            _merge_changes(departure_changes, tenant.demand_changes(-1.0))
            dep_flows -= tenant.num_flows
            dep_local -= tenant.num_local_flows
        candidate = dict(state)
        _merge_changes(candidate, changes)
        with_departures = dict(candidate)
        _merge_changes(with_departures, departure_changes)
        suffix = ""
        if network_pairs(with_departures):
            _merge_changes(changes, departure_changes)
            flows_delta += dep_flows
            local_delta += dep_local
            state = with_departures
        else:
            # Applying these departures would empty the matrix; push them
            # to the next step so every step stays solvable.
            deferred = departures
            state = candidate
            if departures:
                suffix = " (departures deferred)"
        deltas.append(
            DemandDelta(
                label=(
                    f"t{len(deltas) + 1}: +{len(arrivals)} tenants, "
                    f"-{len(departures) - len(deferred)}{suffix}"
                ),
                changes=tuple(changes.items()),
                num_flows_delta=flows_delta,
                num_local_flows_delta=local_delta,
            )
        )
        now += 1

    return TrafficTimeline(name=label, base=base, deltas=tuple(deltas))


def vdc_snapshot_traffic(topo: Topology, seed=None, **params) -> TrafficMatrix:
    """Static snapshot of a VDC timeline (registry model ``"vdc"``).

    ``step`` selects which matrix to return (default: the last step);
    remaining params are forwarded to :func:`vdc_timeline`. Lets static
    grids sweep a point-in-time VDC matrix without the replay path.
    """
    step = params.pop("step", None)
    timeline = vdc_timeline(topo, seed=seed, **params)
    if step is None:
        step = timeline.num_steps - 1
    return timeline.matrix_at(int(step))
