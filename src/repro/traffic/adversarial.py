"""Adversarial long-haul permutation traffic.

Random permutations are the paper's default; the hardest permutations pair
up *distant* servers so every flow burns maximal capacity (Theorem 1's
charging argument is tight exactly when flows travel far). This module
builds such a permutation greedily: repeatedly match the unmatched server
whose switch is farthest (on average) with the farthest available partner.

Useful as a stress workload beyond the paper's chunky pattern, and for
probing how close Theorem 1's bound can be pushed from below.
"""

from __future__ import annotations

from repro.exceptions import TrafficError
from repro.metrics.paths import all_pairs_shortest_lengths
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix, servers_of
from repro.util.rng import as_rng


def longest_matching_traffic(
    topo: Topology,
    seed=None,
    name: "str | None" = None,
) -> TrafficMatrix:
    """Greedy maximum-distance server permutation.

    Every server sends to exactly one other server and receives from
    exactly one (a permutation, self-pairs excluded); destinations are
    chosen greedily farthest-first with random tie-breaking.
    """
    rng = as_rng(seed)
    servers = servers_of(topo.server_map())
    if len(servers) < 2:
        raise TrafficError(
            f"need at least 2 servers, topology has {len(servers)}"
        )
    distances = all_pairs_shortest_lengths(topo)
    for switch, reachable in distances.items():
        if len(reachable) != topo.num_switches:
            raise TrafficError(
                f"topology {topo.name!r} is disconnected; adversarial "
                "matching undefined"
            )

    # Order senders by descending mean distance (most remote first get the
    # pick of far destinations).
    def remoteness(server) -> float:
        switch, _ = server
        row = distances[switch]
        return sum(row.values()) / max(len(row) - 1, 1)

    order = sorted(servers, key=lambda s: (-remoteness(s), rng.random()))
    available: set = set(servers)
    pairs: list[tuple] = []
    for source in order:
        src_switch, _ = source
        candidates = [s for s in available if s != source]
        if not candidates:
            # Only `source` itself remains unclaimed: swap destinations
            # with an earlier pair (a -> b). Afterwards a -> source and
            # source -> b; both are valid because a != source (a sent
            # earlier) and b != source (source was still unclaimed).
            if not pairs:
                raise TrafficError("cannot derange a single server")
            a, b = pairs.pop()
            pairs.append((a, source))
            pairs.append((source, b))
            available.discard(source)
            continue
        best = max(
            candidates,
            key=lambda s: (distances[src_switch][s[0]], rng.random()),
        )
        available.discard(best)
        pairs.append((source, best))
    return TrafficMatrix.from_server_pairs(
        pairs, name=name or "longest-matching"
    )
