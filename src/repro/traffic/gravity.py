"""Gravity-model traffic: demand proportional to endpoint sizes.

``demand(u, v) ∝ servers(u) * servers(v)``, normalized so each server
originates one unit of traffic in total. This is the classical smooth
baseline TM; unlike all-to-all it keeps per-source totals constant when
server populations are unequal.
"""

from __future__ import annotations

from repro.exceptions import TrafficError
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix


def gravity_traffic(topo: Topology, name: "str | None" = None) -> TrafficMatrix:
    """Build the gravity matrix over the server populations of ``topo``.

    Each switch ``u`` originates ``servers(u)`` total units, split across
    destinations ``v != u`` proportionally to ``servers(v)``. Demands are
    fractional; ``num_flows`` counts one flow per ordered switch pair with
    positive demand.
    """
    server_map = {v: c for v, c in topo.server_map().items() if c > 0}
    total = sum(server_map.values())
    if total < 2 or len(server_map) < 2:
        raise TrafficError(
            "gravity traffic needs servers on at least 2 switches"
        )
    demands: dict = {}
    for u, su in server_map.items():
        others = total - su
        if others <= 0:
            continue
        for v, sv in server_map.items():
            if u == v:
                continue
            demands[(u, v)] = su * sv / others
    return TrafficMatrix(
        name=name or "gravity",
        demands=demands,
        num_flows=len(demands),
        num_local_flows=0,
        server_pairs=None,
    )
