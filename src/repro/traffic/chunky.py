"""Chunky traffic (§8.1): a hard-to-route mixture workload.

"x% Chunky": a fraction ``x`` of the network's server-bearing switches
(ToRs) participate in a *ToR-level* permutation — each sends all of its
traffic to exactly one other participating ToR — while the remaining
switches' servers run a server-level random permutation among themselves.
The paper uses this to stress concentrated, low-entropy communication.
"""

from __future__ import annotations

from repro.exceptions import TrafficError
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix, servers_of
from repro.util.rng import as_rng, random_derangement
from repro.util.validation import check_probability


def chunky_traffic(
    topo: Topology,
    chunky_fraction: float,
    seed=None,
    name: "str | None" = None,
) -> TrafficMatrix:
    """Build an ``x%`` chunky matrix with ``x = chunky_fraction``.

    ``chunky_fraction = 1.0`` is the paper's "100% Chunky" worst case: a
    pure ToR-level permutation. Fractions that leave fewer than two switches
    on either side degrade gracefully: a side with < 2 participants
    contributes no flows.
    """
    chunky_fraction = check_probability(chunky_fraction, "chunky_fraction")
    rng = as_rng(seed)
    tors = [v for v in topo.switches if topo.servers_at(v) > 0]
    if len(tors) < 2:
        raise TrafficError(
            f"need at least 2 server-bearing switches, got {len(tors)}"
        )
    order = list(tors)
    rng.shuffle(order)
    num_chunky = int(round(chunky_fraction * len(order)))
    chunky_set = order[:num_chunky]
    rest = order[num_chunky:]

    pairs: list[tuple] = []
    if len(chunky_set) >= 2:
        perm = random_derangement(rng, len(chunky_set))
        for i, src_switch in enumerate(chunky_set):
            dst_switch = chunky_set[int(perm[i])]
            dst_count = topo.servers_at(dst_switch)
            for j in range(topo.servers_at(src_switch)):
                pairs.append(((src_switch, j), (dst_switch, j % dst_count)))

    rest_servers = servers_of({v: topo.servers_at(v) for v in rest})
    if len(rest_servers) >= 2:
        perm = random_derangement(rng, len(rest_servers))
        for i, src in enumerate(rest_servers):
            pairs.append((src, rest_servers[int(perm[i])]))

    if not pairs:
        raise TrafficError(
            "chunky split produced no flows; adjust chunky_fraction or sizes"
        )
    label = name or f"chunky-{int(round(chunky_fraction * 100))}%"
    return TrafficMatrix.from_server_pairs(pairs, name=label)
