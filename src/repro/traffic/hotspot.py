"""Hotspot traffic: many senders converge on a few destination servers.

Models incast-style aggregation patterns (shuffle reducers, popular
services). Not part of the paper's figure set, but the paper notes its tool
"is easy to augment with arbitrary traffic patterns" — this is one such
augmentation, exercised by the extra benchmarks.
"""

from __future__ import annotations

from repro.exceptions import TrafficError
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix, servers_of
from repro.util.rng import as_rng
from repro.util.validation import check_fraction, check_positive_int


def hotspot_traffic(
    topo: Topology,
    num_hotspots: int = 1,
    sender_fraction: float = 1.0,
    seed=None,
    name: "str | None" = None,
) -> TrafficMatrix:
    """Build a hotspot matrix.

    ``num_hotspots`` destination servers are chosen uniformly at random;
    a ``sender_fraction`` share of the remaining servers each send one unit
    flow to a hotspot chosen round-robin (balancing load over hotspots).
    """
    num_hotspots = check_positive_int(num_hotspots, "num_hotspots")
    sender_fraction = check_fraction(sender_fraction, "sender_fraction")
    rng = as_rng(seed)
    servers = servers_of(topo.server_map())
    if len(servers) < num_hotspots + 1:
        raise TrafficError(
            f"need more than {num_hotspots} servers, topology has {len(servers)}"
        )
    order = list(servers)
    rng.shuffle(order)
    hotspots = order[:num_hotspots]
    rest = order[num_hotspots:]
    num_senders = max(1, int(round(sender_fraction * len(rest))))
    senders = rest[:num_senders]
    pairs = [
        (sender, hotspots[i % num_hotspots]) for i, sender in enumerate(senders)
    ]
    label = name or f"hotspot-{num_hotspots}"
    return TrafficMatrix.from_server_pairs(pairs, name=label)
