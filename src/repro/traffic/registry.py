"""Name-based traffic-model registry with a uniform construction shape.

Mirrors :mod:`repro.topology.registry` for workloads: the CLI, the
scenario pipeline, and the analysis report construct traffic matrices from
string names instead of hardcoding constructor imports and argument
shapes. Every registered builder is called as
``builder(topo, seed=..., **params)``.

Each entry carries a ``deterministic`` flag: deterministic models
(all-to-all, gravity, stride) produce byte-identical matrices for any
seed, so grid and replay enumeration can collapse redundant replicate
cells instead of solving identical work — and the claim is
machine-checkable via :func:`traffic_model_is_deterministic` (the test
suite builds every model under two seeds and compares fingerprints
against the flag).

Timeline kinds (time-varying traffic) register separately — see
:func:`make_timeline` / :func:`register_timeline`, re-exported here from
:mod:`repro.traffic.timeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import TrafficError
from repro.topology.base import Topology
from repro.traffic.adversarial import longest_matching_traffic
from repro.traffic.alltoall import all_to_all_traffic
from repro.traffic.base import TrafficMatrix
from repro.traffic.chunky import chunky_traffic
from repro.traffic.gravity import gravity_traffic
from repro.traffic.hotspot import hotspot_traffic
from repro.traffic.permutation import (
    random_permutation_traffic,
    switch_permutation_traffic,
)
from repro.traffic.stride import stride_traffic
from repro.traffic.timeline import (  # noqa: F401  (re-exported)
    available_timelines,
    make_timeline,
    register_timeline,
)
from repro.traffic.vdc import vdc_snapshot_traffic, vdc_timeline


def _permutation(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return random_permutation_traffic(topo, seed=seed, **params)


def _switch_permutation(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return switch_permutation_traffic(topo, seed=seed, **params)


def _all_to_all(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return all_to_all_traffic(topo, **params)


def _gravity(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return gravity_traffic(topo, **params)


def _stride(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return stride_traffic(topo, **params)


def _hotspot(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return hotspot_traffic(topo, seed=seed, **params)


def _chunky(topo: Topology, seed=None, **params) -> TrafficMatrix:
    params.setdefault("chunky_fraction", 0.5)
    return chunky_traffic(topo, seed=seed, **params)


def _longest_matching(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return longest_matching_traffic(topo, seed=seed, **params)


@dataclass(frozen=True)
class _TrafficModel:
    """Registry entry: the builder plus its determinism contract."""

    builder: Callable[..., TrafficMatrix]
    deterministic: bool


_REGISTRY: dict[str, _TrafficModel] = {
    "permutation": _TrafficModel(_permutation, deterministic=False),
    "switch-permutation": _TrafficModel(_switch_permutation, deterministic=False),
    "all-to-all": _TrafficModel(_all_to_all, deterministic=True),
    "gravity": _TrafficModel(_gravity, deterministic=True),
    "stride": _TrafficModel(_stride, deterministic=True),
    "hotspot": _TrafficModel(_hotspot, deterministic=False),
    "chunky": _TrafficModel(_chunky, deterministic=False),
    "longest-matching": _TrafficModel(_longest_matching, deterministic=False),
    "vdc": _TrafficModel(vdc_snapshot_traffic, deterministic=False),
}


def available_traffic_models() -> list[str]:
    """Sorted model names accepted by :func:`make_traffic`."""
    return sorted(_REGISTRY)


def _normalize_model_name(model: str) -> str:
    return model.strip().lower().replace("_", "-")


def _lookup(model: str) -> _TrafficModel:
    key = _normalize_model_name(model)
    if key.startswith("chunky-"):
        key = "chunky"
    try:
        entry = _REGISTRY[key]
    except KeyError:
        known = ", ".join(available_traffic_models())
        raise TrafficError(
            f"unknown traffic model {model!r}; known models: {known}"
        )
    if isinstance(entry, _TrafficModel):
        return entry
    # Bare callables registered through the pre-flag API default to
    # non-deterministic (the safe assumption: never collapse replicates).
    return _TrafficModel(entry, deterministic=False)


def traffic_model_is_deterministic(model: str) -> bool:
    """Whether ``model`` ignores its seed (same matrix for any seed).

    Deterministic models let enumeration collapse replicate cells — every
    replicate would solve byte-identical work.
    """
    return _lookup(model).deterministic


def make_traffic(
    model: str, topo: Topology, seed=None, **params
) -> TrafficMatrix:
    """Construct a workload by registry name.

    ``seed`` follows the library-wide convention (int, ``None``, generator,
    or seed sequence) and is ignored by deterministic models (see
    :func:`traffic_model_is_deterministic`); ``params`` are forwarded to
    the underlying constructor (e.g. ``stride=4``, ``chunky_fraction=1.0``,
    ``num_hotspots=2``). The ``"chunky-<pct>"`` shorthand used by the VL2
    studies (e.g. ``"chunky-50"``) is accepted and sets
    ``chunky_fraction`` accordingly.
    """
    key = _normalize_model_name(model)
    if key.startswith("chunky-"):
        suffix = key.split("-", 1)[1]
        try:
            params.setdefault("chunky_fraction", float(suffix) / 100.0)
        except ValueError:
            raise TrafficError(f"bad chunky percentage in {model!r}")
        key = "chunky"
    entry = _lookup(key)
    return entry.builder(topo, seed=seed, **params)


def register_traffic_model(
    name: str,
    builder: Callable[..., TrafficMatrix],
    deterministic: bool = False,
) -> None:
    """Register a custom traffic model under ``name``.

    The builder must accept ``(topo, seed=None, **params)``. Pass
    ``deterministic=True`` only if the builder ignores its seed entirely —
    the flag licenses the pipeline to collapse replicate cells. Existing
    names cannot be overwritten (raise instead of silently shadowing a
    built-in).
    """
    key = _normalize_model_name(name)
    if key in _REGISTRY:
        raise TrafficError(f"traffic model {name!r} is already registered")
    _REGISTRY[key] = _TrafficModel(builder, deterministic=deterministic)


register_timeline("vdc", vdc_timeline)
