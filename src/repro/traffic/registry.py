"""Name-based traffic-model registry with a uniform construction shape.

Mirrors :mod:`repro.topology.registry` for workloads: the CLI, the
scenario pipeline, and the analysis report construct traffic matrices from
string names instead of hardcoding constructor imports and argument
shapes. Every registered builder is called as
``builder(topo, seed=..., **params)``; models that are deterministic given
the topology (all-to-all, gravity, stride) simply ignore the seed, so
callers can thread one seeding convention through any model.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import TrafficError
from repro.topology.base import Topology
from repro.traffic.adversarial import longest_matching_traffic
from repro.traffic.alltoall import all_to_all_traffic
from repro.traffic.base import TrafficMatrix
from repro.traffic.chunky import chunky_traffic
from repro.traffic.gravity import gravity_traffic
from repro.traffic.hotspot import hotspot_traffic
from repro.traffic.permutation import (
    random_permutation_traffic,
    switch_permutation_traffic,
)
from repro.traffic.stride import stride_traffic


def _permutation(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return random_permutation_traffic(topo, seed=seed, **params)


def _switch_permutation(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return switch_permutation_traffic(topo, seed=seed, **params)


def _all_to_all(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return all_to_all_traffic(topo, **params)


def _gravity(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return gravity_traffic(topo, **params)


def _stride(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return stride_traffic(topo, **params)


def _hotspot(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return hotspot_traffic(topo, seed=seed, **params)


def _chunky(topo: Topology, seed=None, **params) -> TrafficMatrix:
    params.setdefault("chunky_fraction", 0.5)
    return chunky_traffic(topo, seed=seed, **params)


def _longest_matching(topo: Topology, seed=None, **params) -> TrafficMatrix:
    return longest_matching_traffic(topo, seed=seed, **params)


_REGISTRY: dict[str, Callable[..., TrafficMatrix]] = {
    "permutation": _permutation,
    "switch-permutation": _switch_permutation,
    "all-to-all": _all_to_all,
    "gravity": _gravity,
    "stride": _stride,
    "hotspot": _hotspot,
    "chunky": _chunky,
    "longest-matching": _longest_matching,
}


def available_traffic_models() -> list[str]:
    """Sorted model names accepted by :func:`make_traffic`."""
    return sorted(_REGISTRY)


def make_traffic(
    model: str, topo: Topology, seed=None, **params
) -> TrafficMatrix:
    """Construct a workload by registry name.

    ``seed`` follows the library-wide convention (int, ``None``, generator,
    or seed sequence) and is ignored by deterministic models; ``params``
    are forwarded to the underlying constructor (e.g. ``stride=4``,
    ``chunky_fraction=1.0``, ``num_hotspots=2``). The ``"chunky-<pct>"``
    shorthand used by the VL2 studies (e.g. ``"chunky-50"``) is accepted
    and sets ``chunky_fraction`` accordingly.
    """
    key = model.strip().lower().replace("_", "-")
    if key.startswith("chunky-"):
        suffix = key.split("-", 1)[1]
        try:
            params.setdefault("chunky_fraction", float(suffix) / 100.0)
        except ValueError:
            raise TrafficError(f"bad chunky percentage in {model!r}")
        key = "chunky"
    try:
        builder = _REGISTRY[key]
    except KeyError:
        known = ", ".join(available_traffic_models())
        raise TrafficError(
            f"unknown traffic model {model!r}; known models: {known}"
        )
    return builder(topo, seed=seed, **params)


def register_traffic_model(
    name: str, builder: Callable[..., TrafficMatrix]
) -> None:
    """Register a custom traffic model under ``name``.

    The builder must accept ``(topo, seed=None, **params)``. Existing names
    cannot be overwritten (raise instead of silently shadowing a built-in).
    """
    key = name.strip().lower().replace("_", "-")
    if key in _REGISTRY:
        raise TrafficError(f"traffic model {name!r} is already registered")
    _REGISTRY[key] = builder
