"""Time-varying traffic: a timeline of demand deltas over a base matrix.

A :class:`TrafficTimeline` is the trace-driven workload kind: an ordered
sequence of :class:`DemandDelta` records applied to a base
:class:`~repro.traffic.base.TrafficMatrix`. Step 0 is the base matrix;
step ``i`` is the base with the first ``i`` deltas folded in. The replay
pipeline (:mod:`repro.pipeline.replay`) walks the timeline with
warm-started incremental solves instead of ``num_steps`` cold ones.

Deltas are purely *additive* per-pair changes: remove and scale are
expressed as additive changes computed against the current matrix (see
:meth:`DemandDelta.removing` / :meth:`DemandDelta.scaling`). This keeps
the algebra trivially invertible — ``delta.inverse()`` undoes ``delta``
exactly whenever demands are integer-valued unit flows (the VDC
generator's case; general floats are exact up to cancellation error).

Content addressing: :meth:`TrafficTimeline.step_fingerprints` chains a
digest per step from the base matrix's fingerprint, so the result cache
can address step ``i`` by *cumulative content* without materializing the
matrix. Two timelines share a step's cache entry iff they share the base
and the whole delta prefix. Delta labels are excluded from fingerprints
(labels never affect the solve, matching
:mod:`repro.pipeline.fingerprint`).

Trace formats (:func:`read_trace` / :func:`write_trace`):

- ``.json`` — the :meth:`TrafficTimeline.to_dict` schema.
- ``.csv`` — ``step,src,dst,units`` rows; ``step == 0`` rows give the
  base matrix's absolute units, ``step >= 1`` rows are additive deltas
  for that step. Switch ids that look like integers are parsed as ints.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping

from repro.exceptions import TrafficError
from repro.traffic.base import TrafficMatrix
from repro.util.hashing import stable_digest

#: Demands smaller than this after applying a delta are treated as zero
#: and dropped (guards float cancellation residue on non-integer units).
ZERO_DEMAND_TOLERANCE = 1e-12


def _encode_pair_key(u, v) -> tuple[str, str]:
    return (str(u), str(v))


@dataclass(frozen=True)
class DemandDelta:
    """One timestep's additive change to a switch-level demand matrix.

    ``changes`` maps ``(src, dst) -> delta_units``; positive adds demand,
    negative removes it. Entries are normalized at construction: zero
    deltas dropped, duplicates merged, and the tuple repr-sorted so equal
    deltas are equal objects and fingerprints are iteration-order-stable.
    """

    label: str
    changes: tuple = ()
    num_flows_delta: int = 0
    num_local_flows_delta: int = 0

    def __post_init__(self) -> None:
        merged: dict = {}
        for (u, v), units in self.changes:
            if u == v:
                raise TrafficError(
                    f"delta touches self-pair ({u!r}, {u!r}); local flows "
                    "are tracked via num_local_flows_delta"
                )
            units = float(units)
            if units == 0.0:
                continue
            key = (u, v)
            merged[key] = merged.get(key, 0.0) + units
        normalized = tuple(
            sorted(
                ((pair, units) for pair, units in merged.items() if units != 0.0),
                key=lambda item: _encode_pair_key(*item[0]),
            )
        )
        object.__setattr__(self, "changes", normalized)

    # ------------------------------------------------------------------
    @property
    def num_changes(self) -> int:
        return len(self.changes)

    def touched_pairs(self) -> list[tuple]:
        """Switch pairs whose demand this delta modifies."""
        return [pair for pair, _ in self.changes]

    def touched_sources(self) -> list:
        """Distinct source switches touched, repr-sorted."""
        seen: dict = {}
        for (u, _), _ in self.changes:
            seen.setdefault(u, None)
        return sorted(seen, key=str)

    def inverse(self) -> "DemandDelta":
        """The delta that exactly undoes this one."""
        return DemandDelta(
            label=f"undo {self.label}",
            changes=tuple((pair, -units) for pair, units in self.changes),
            num_flows_delta=-self.num_flows_delta,
            num_local_flows_delta=-self.num_local_flows_delta,
        )

    def apply(self, matrix: TrafficMatrix, name: str | None = None) -> TrafficMatrix:
        """Return a new matrix with this delta folded in.

        Raises :class:`TrafficError` if any pair would go meaningfully
        negative (beyond :data:`ZERO_DEMAND_TOLERANCE`) or a flow count
        would drop below zero.
        """
        demands = dict(matrix.demands)
        for pair, units in self.changes:
            new_units = demands.get(pair, 0.0) + units
            if new_units < -ZERO_DEMAND_TOLERANCE:
                raise TrafficError(
                    f"delta {self.label!r} drives demand for {pair!r} "
                    f"negative ({new_units})"
                )
            if abs(new_units) <= ZERO_DEMAND_TOLERANCE:
                demands.pop(pair, None)
            else:
                demands[pair] = new_units
        num_flows = matrix.num_flows + self.num_flows_delta
        num_local = matrix.num_local_flows + self.num_local_flows_delta
        if num_flows < 0 or num_local < 0:
            raise TrafficError(
                f"delta {self.label!r} drives flow counts negative "
                f"({num_flows}, {num_local})"
            )
        return TrafficMatrix(
            name=name if name is not None else matrix.name,
            demands=demands,
            num_flows=num_flows,
            num_local_flows=num_local,
        )

    # -- constructors ---------------------------------------------------
    @classmethod
    def adding(
        cls,
        pairs: Mapping,
        label: str = "add",
        num_flows_delta: int | None = None,
    ) -> "DemandDelta":
        """Delta that adds ``pairs`` (``(u, v) -> units``) of new demand."""
        changes = tuple((pair, float(units)) for pair, units in pairs.items())
        if num_flows_delta is None:
            num_flows_delta = int(round(sum(units for _, units in changes)))
        return cls(label=label, changes=changes, num_flows_delta=num_flows_delta)

    @classmethod
    def removing(
        cls,
        matrix: TrafficMatrix,
        pairs: Iterable,
        label: str = "remove",
    ) -> "DemandDelta":
        """Delta that removes the listed pairs' current demand entirely."""
        changes = []
        removed = 0.0
        for pair in pairs:
            units = matrix.demands.get(pair)
            if units is None:
                raise TrafficError(f"cannot remove absent pair {pair!r}")
            changes.append((pair, -units))
            removed += units
        return cls(
            label=label,
            changes=tuple(changes),
            num_flows_delta=-int(round(removed)),
        )

    @classmethod
    def scaling(
        cls,
        matrix: TrafficMatrix,
        factor: float,
        pairs: Iterable | None = None,
        label: str | None = None,
    ) -> "DemandDelta":
        """Delta that multiplies current demand on ``pairs`` by ``factor``.

        Expressed additively against ``matrix`` (``delta = old*(f-1)``),
        so it only composes correctly when applied to that matrix state.
        """
        if factor < 0:
            raise TrafficError(f"scale factor must be >= 0, got {factor}")
        if pairs is None:
            pairs = list(matrix.demands)
        changes = []
        for pair in pairs:
            units = matrix.demands.get(pair)
            if units is None:
                raise TrafficError(f"cannot scale absent pair {pair!r}")
            changes.append((pair, units * (factor - 1.0)))
        return cls(
            label=label if label is not None else f"scale x{factor:g}",
            changes=tuple(changes),
        )

    # -- serialization --------------------------------------------------
    def content_payload(self) -> dict:
        """Canonical JSON-safe payload for fingerprinting (label excluded)."""
        from repro.topology.serialization import encode_node

        return {
            "changes": [
                [encode_node(u), encode_node(v), units]
                for (u, v), units in self.changes
            ],
            "num_flows_delta": self.num_flows_delta,
            "num_local_flows_delta": self.num_local_flows_delta,
        }

    def to_dict(self) -> dict:
        payload = self.content_payload()
        payload["label"] = self.label
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DemandDelta":
        from repro.topology.serialization import decode_node

        return cls(
            label=str(payload.get("label", "delta")),
            changes=tuple(
                ((decode_node(u), decode_node(v)), float(units))
                for u, v, units in payload["changes"]
            ),
            num_flows_delta=int(payload.get("num_flows_delta", 0)),
            num_local_flows_delta=int(payload.get("num_local_flows_delta", 0)),
        )

    def __repr__(self) -> str:
        return (
            f"DemandDelta(label={self.label!r}, changes={len(self.changes)}, "
            f"flows_delta={self.num_flows_delta:+d})"
        )


@dataclass(frozen=True)
class TrafficTimeline:
    """An ordered demand trace: base matrix plus per-step deltas.

    Step ``0`` is ``base``; step ``i`` (``1 <= i <= len(deltas)``) is the
    base with ``deltas[:i]`` folded in. ``num_steps`` counts matrices,
    not deltas: a timeline with ``k`` deltas has ``k + 1`` steps.
    """

    name: str
    base: TrafficMatrix
    deltas: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "deltas", tuple(self.deltas))
        for delta in self.deltas:
            if not isinstance(delta, DemandDelta):
                raise TrafficError(
                    f"timeline deltas must be DemandDelta, got {type(delta).__name__}"
                )

    # ------------------------------------------------------------------
    @property
    def num_steps(self) -> int:
        return 1 + len(self.deltas)

    def matrices(self) -> Iterator[TrafficMatrix]:
        """Yield the matrix at every step, folding deltas incrementally."""
        current = TrafficMatrix(
            name=f"{self.name}@t0",
            demands=dict(self.base.demands),
            num_flows=self.base.num_flows,
            num_local_flows=self.base.num_local_flows,
        )
        yield current
        for step, delta in enumerate(self.deltas, start=1):
            current = delta.apply(current, name=f"{self.name}@t{step}")
            yield current

    def matrix_at(self, step: int) -> TrafficMatrix:
        """The matrix at ``step`` (folds ``deltas[:step]`` from the base)."""
        if not 0 <= step < self.num_steps:
            raise TrafficError(
                f"step {step} out of range for {self.num_steps}-step timeline"
            )
        for index, matrix in enumerate(self.matrices()):
            if index == step:
                return matrix
        raise AssertionError("unreachable")

    def step_fingerprints(self) -> list[str]:
        """Chained content digests, one per step.

        ``fp[0]`` is the base matrix's
        :func:`~repro.pipeline.fingerprint.traffic_fingerprint`; each
        subsequent digest chains the previous one with the delta's
        canonical payload. Addressing a step therefore never requires
        materializing its matrix, and any change to the base or to an
        earlier delta changes every later step's address.
        """
        from repro.pipeline.fingerprint import traffic_fingerprint

        fingerprints = [traffic_fingerprint(self.base)]
        for delta in self.deltas:
            if (
                not delta.changes
                and delta.num_flows_delta == 0
                and delta.num_local_flows_delta == 0
            ):
                # A no-op delta leaves the content unchanged, so the step
                # keeps its predecessor's address (and its cache entry).
                fingerprints.append(fingerprints[-1])
                continue
            fingerprints.append(
                stable_digest(
                    {"prev": fingerprints[-1], "delta": delta.content_payload()}
                )
            )
        return fingerprints

    def step_fingerprint(self, step: int) -> str:
        if not 0 <= step < self.num_steps:
            raise TrafficError(
                f"step {step} out of range for {self.num_steps}-step timeline"
            )
        return self.step_fingerprints()[step]

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": "traffic-timeline",
            "name": self.name,
            "base": self.base.to_dict(),
            "deltas": [delta.to_dict() for delta in self.deltas],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TrafficTimeline":
        if payload.get("kind") not in (None, "traffic-timeline"):
            raise TrafficError(f"not a traffic timeline: kind={payload.get('kind')!r}")
        return cls(
            name=str(payload["name"]),
            base=TrafficMatrix.from_dict(payload["base"]),
            deltas=tuple(
                DemandDelta.from_dict(entry) for entry in payload.get("deltas", ())
            ),
        )

    def __repr__(self) -> str:
        return (
            f"TrafficTimeline(name={self.name!r}, steps={self.num_steps}, "
            f"base_pairs={len(self.base.demands)})"
        )


# ----------------------------------------------------------------------
# Trace ingestion
# ----------------------------------------------------------------------

def _parse_trace_node(token: str):
    token = token.strip()
    if token.lstrip("-").isdigit():
        return int(token)
    return token


def _timeline_from_csv(path: Path, name: str | None) -> TrafficTimeline:
    base_pairs: dict = {}
    step_changes: dict[int, dict] = {}
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise TrafficError(f"empty trace file {path}")
        expected = ["step", "src", "dst", "units"]
        if [cell.strip().lower() for cell in header] != expected:
            raise TrafficError(
                f"bad CSV trace header {header!r}; expected {expected!r}"
            )
        for row_number, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != 4:
                raise TrafficError(
                    f"{path}:{row_number}: expected 4 columns, got {len(row)}"
                )
            step = int(row[0])
            if step < 0:
                raise TrafficError(f"{path}:{row_number}: negative step {step}")
            pair = (_parse_trace_node(row[1]), _parse_trace_node(row[2]))
            units = float(row[3])
            if step == 0:
                base_pairs[pair] = base_pairs.get(pair, 0.0) + units
            else:
                changes = step_changes.setdefault(step, {})
                changes[pair] = changes.get(pair, 0.0) + units
    label = name if name is not None else path.stem
    base = TrafficMatrix(
        name=f"{label} base",
        demands=base_pairs,
        num_flows=int(round(sum(base_pairs.values()))),
    )
    deltas = []
    last_step = max(step_changes) if step_changes else 0
    for step in range(1, last_step + 1):
        changes = step_changes.get(step, {})
        deltas.append(
            DemandDelta(
                label=f"t{step}",
                changes=tuple(changes.items()),
                num_flows_delta=int(round(sum(changes.values()))),
            )
        )
    return TrafficTimeline(name=label, base=base, deltas=tuple(deltas))


def read_trace(path, name: str | None = None) -> TrafficTimeline:
    """Load a demand trace from ``.json`` or ``.csv`` (see module docs)."""
    path = Path(path)
    if not path.exists():
        raise TrafficError(f"trace file not found: {path}")
    suffix = path.suffix.lower()
    if suffix == ".json":
        payload = json.loads(path.read_text())
        timeline = TrafficTimeline.from_dict(payload)
        if name is not None:
            timeline = TrafficTimeline(
                name=name, base=timeline.base, deltas=timeline.deltas
            )
        return timeline
    if suffix == ".csv":
        return _timeline_from_csv(path, name)
    raise TrafficError(
        f"unsupported trace format {suffix!r} for {path}; use .json or .csv"
    )


def write_trace(timeline: TrafficTimeline, path) -> Path:
    """Persist a timeline as a ``.json`` or ``.csv`` trace file."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        path.write_text(json.dumps(timeline.to_dict(), indent=2, sort_keys=True))
        return path
    if suffix == ".csv":
        from repro.topology.serialization import encode_node

        def cell(node) -> str:
            encoded = encode_node(node)
            if not isinstance(encoded, (int, str)):
                raise TrafficError(
                    f"CSV traces support int/str switch ids only, got {node!r}; "
                    "use the JSON format"
                )
            return str(encoded)

        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["step", "src", "dst", "units"])
            for (u, v), units in sorted(
                timeline.base.demands.items(),
                key=lambda item: _encode_pair_key(*item[0]),
            ):
                writer.writerow([0, cell(u), cell(v), f"{units:g}"])
            for step, delta in enumerate(timeline.deltas, start=1):
                for (u, v), units in delta.changes:
                    writer.writerow([step, cell(u), cell(v), f"{units:g}"])
        return path
    raise TrafficError(
        f"unsupported trace format {suffix!r} for {path}; use .json or .csv"
    )


# ----------------------------------------------------------------------
# Timeline registry (mirrors the static traffic-model registry)
# ----------------------------------------------------------------------

_TIMELINES: dict[str, Callable[..., TrafficTimeline]] = {}


def available_timelines() -> list[str]:
    """Sorted timeline kinds accepted by :func:`make_timeline`."""
    return sorted(_TIMELINES)


def register_timeline(name: str, builder: Callable[..., TrafficTimeline]) -> None:
    """Register a timeline builder ``builder(topo, seed=None, **params)``."""
    key = name.strip().lower().replace("_", "-")
    if key in _TIMELINES:
        raise TrafficError(f"timeline kind {name!r} is already registered")
    _TIMELINES[key] = builder


def make_timeline(kind: str, topo, seed=None, **params) -> TrafficTimeline:
    """Construct a timeline by registry name.

    Built-in kinds: ``"vdc"`` (synthetic tenant arrival/departure
    workload, :func:`repro.traffic.vdc.vdc_timeline`) and ``"trace"``
    (file ingestion; requires ``path=...``).
    """
    key = kind.strip().lower().replace("_", "-")
    try:
        builder = _TIMELINES[key]
    except KeyError:
        known = ", ".join(available_timelines())
        raise TrafficError(f"unknown timeline kind {kind!r}; known kinds: {known}")
    timeline = builder(topo, seed=seed, **params)
    if not isinstance(timeline, TrafficTimeline):
        raise TrafficError(
            f"timeline builder {key!r} returned {type(timeline).__name__}"
        )
    return timeline


def _trace_timeline(topo, seed=None, *, path=None, name=None) -> TrafficTimeline:
    if path is None:
        raise TrafficError("timeline kind 'trace' requires path=<trace file>")
    timeline = read_trace(path, name=name)
    if topo is not None:
        known = set(topo.switches)
        timeline.base.validate_against(known)
        for delta in timeline.deltas:
            for u, v in delta.touched_pairs():
                if u not in known or v not in known:
                    raise TrafficError(
                        f"trace delta {delta.label!r} touches unknown switch "
                        f"pair ({u!r}, {v!r})"
                    )
    return timeline


register_timeline("trace", _trace_timeline)
