"""Traffic-matrix data model.

A :class:`TrafficMatrix` stores switch-level demands: ``demands[(u, v)]`` is
the number of unit server flows whose source attaches to switch ``u`` and
destination to switch ``v``. Flows between servers on the *same* switch
never touch the network (the paper's model assumes a non-blocking switch
backplane); they are counted separately in :attr:`TrafficMatrix.num_local_flows`
so throughput bounds can still account for the paper's total flow count
``f``.

Servers are addressed as ``(switch_id, local_index)`` pairs; constructors
that know individual endpoints (permutations, chunky) keep the server-level
pair list for the packet simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import TrafficError

ServerId = tuple  # (switch_id, local_index)


def servers_of(server_map: Mapping[object, int]) -> list[ServerId]:
    """Enumerate server ids for a switch -> server-count mapping."""
    out: list[ServerId] = []
    for switch, count in server_map.items():
        for index in range(int(count)):
            out.append((switch, index))
    return out


@dataclass
class TrafficMatrix:
    """Switch-level demand matrix with server-flow bookkeeping.

    Attributes
    ----------
    name:
        Workload label used in reports.
    demands:
        Mapping ``(src_switch, dst_switch) -> units``. Units are numbers of
        unit-rate server flows (possibly fractional for synthetic TMs).
    num_flows:
        Total server-level flows, including same-switch ("local") flows.
        This is the paper's ``f``.
    num_local_flows:
        Flows between co-located servers; they appear in ``num_flows`` but
        not in ``demands``.
    server_pairs:
        Optional explicit list of ``((src_switch, i), (dst_switch, j))``
        server-level flows for simulators; ``None`` for dense matrices.
    """

    name: str
    demands: dict = field(default_factory=dict)
    num_flows: int = 0
    num_local_flows: int = 0
    server_pairs: "list[tuple[ServerId, ServerId]] | None" = None
    scale_base: "str | None" = None
    scale_factor: float = 1.0

    def __post_init__(self) -> None:
        cleaned: dict = {}
        for (u, v), units in self.demands.items():
            if u == v:
                raise TrafficError(
                    f"demand between {u!r} and itself must be recorded as a "
                    "local flow, not a network demand"
                )
            units = float(units)
            if units < 0:
                raise TrafficError(f"negative demand {units} for ({u!r}, {v!r})")
            if units > 0:
                cleaned[(u, v)] = units
        self.demands = cleaned
        if self.num_flows < 0 or self.num_local_flows < 0:
            raise TrafficError("flow counts must be >= 0")

    # ------------------------------------------------------------------
    @property
    def num_network_flows(self) -> int:
        """Server flows that traverse the network (``f`` minus local)."""
        return self.num_flows - self.num_local_flows

    @property
    def total_demand(self) -> float:
        """Sum of switch-level demand units (network flows only)."""
        return float(sum(self.demands.values()))

    def pairs(self) -> list[tuple]:
        """Demand endpoints as a list of ``(u, v)`` switch pairs."""
        return list(self.demands)

    def sources(self) -> list:
        """Distinct source switches, in first-seen order."""
        seen: dict = {}
        for u, _ in self.demands:
            seen.setdefault(u, None)
        return list(seen)

    def demand(self, u, v) -> float:
        """Demand units from switch ``u`` to switch ``v`` (0 if none)."""
        return float(self.demands.get((u, v), 0.0))

    def scaled(self, factor: float) -> "TrafficMatrix":
        """Return a copy with every switch-level demand multiplied.

        Repeated application accumulates into one factor against the
        original name (``tm.scaled(2).scaled(2)`` is labelled ``"... x4"``,
        not ``"... x2 x2"``): the pre-scale name and the cumulative factor
        are carried in :attr:`scale_base` / :attr:`scale_factor`.
        """
        if factor <= 0:
            raise TrafficError(f"scale factor must be positive, got {factor}")
        base_name = self.scale_base if self.scale_base is not None else self.name
        cumulative = self.scale_factor * factor
        return TrafficMatrix(
            name=f"{base_name} x{cumulative:g}",
            demands={pair: units * factor for pair, units in self.demands.items()},
            num_flows=self.num_flows,
            num_local_flows=self.num_local_flows,
            server_pairs=self.server_pairs,
            scale_base=base_name,
            scale_factor=cumulative,
        )

    def validate_against(self, switches: Iterable) -> None:
        """Check every demand endpoint is a known switch."""
        known = set(switches)
        for u, v in self.demands:
            if u not in known:
                raise TrafficError(f"demand source {u!r} is not a switch")
            if v not in known:
                raise TrafficError(f"demand destination {v!r} is not a switch")

    def to_dict(self) -> dict:
        """JSON-safe rendering (switch ids encoded, demands repr-sorted).

        Round-trips through :meth:`from_dict`. Scale bookkeeping is not
        serialized — a scaled matrix re-loads as a plain matrix whose name
        already carries the cumulative factor.
        """
        from repro.topology.serialization import encode_node

        demands = sorted(
            (
                [encode_node(u), encode_node(v), units]
                for (u, v), units in self.demands.items()
            ),
            key=lambda entry: (str(entry[0]), str(entry[1])),
        )
        payload: dict = {
            "name": self.name,
            "demands": demands,
            "num_flows": self.num_flows,
            "num_local_flows": self.num_local_flows,
        }
        if self.server_pairs is not None:
            payload["server_pairs"] = [
                [
                    [encode_node(src[0]), int(src[1])],
                    [encode_node(dst[0]), int(dst[1])],
                ]
                for src, dst in self.server_pairs
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TrafficMatrix":
        """Invert :meth:`to_dict`."""
        from repro.topology.serialization import decode_node

        demands = {
            (decode_node(u), decode_node(v)): float(units)
            for u, v, units in payload["demands"]
        }
        server_pairs = None
        if payload.get("server_pairs") is not None:
            server_pairs = [
                ((decode_node(s), int(i)), (decode_node(d), int(j)))
                for (s, i), (d, j) in payload["server_pairs"]
            ]
        return cls(
            name=str(payload["name"]),
            demands=demands,
            num_flows=int(payload.get("num_flows", 0)),
            num_local_flows=int(payload.get("num_local_flows", 0)),
            server_pairs=server_pairs,
        )

    @classmethod
    def from_server_pairs(
        cls,
        pairs: Iterable[tuple[ServerId, ServerId]],
        name: str = "custom",
    ) -> "TrafficMatrix":
        """Aggregate explicit server-level flows into a switch-level TM."""
        demands: dict = {}
        kept: list[tuple[ServerId, ServerId]] = []
        num_flows = 0
        num_local = 0
        for src, dst in pairs:
            if src == dst:
                raise TrafficError(f"server {src!r} cannot send to itself")
            num_flows += 1
            kept.append((src, dst))
            src_switch, _ = src
            dst_switch, _ = dst
            if src_switch == dst_switch:
                num_local += 1
                continue
            key = (src_switch, dst_switch)
            demands[key] = demands.get(key, 0.0) + 1.0
        return cls(
            name=name,
            demands=demands,
            num_flows=num_flows,
            num_local_flows=num_local,
            server_pairs=kept,
        )

    def __repr__(self) -> str:
        return (
            f"TrafficMatrix(name={self.name!r}, pairs={len(self.demands)}, "
            f"flows={self.num_flows}, local={self.num_local_flows})"
        )
