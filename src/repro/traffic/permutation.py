"""Random permutation traffic — the paper's default workload.

Each server sends to (and receives from) exactly one other server, chosen by
a uniformly random derangement over all servers. The switch-level variant
(a "ToR-level permutation") sends each server-bearing switch's entire server
load to one other switch; it is the building block of chunky traffic.
"""

from __future__ import annotations

from repro.exceptions import TrafficError
from repro.topology.base import Topology
from repro.traffic.base import TrafficMatrix, servers_of
from repro.util.rng import as_rng, random_derangement


def random_permutation_traffic(
    topo: Topology,
    seed=None,
    name: "str | None" = None,
) -> TrafficMatrix:
    """Server-level random permutation over all servers of ``topo``.

    Requires at least two servers. Pairs landing on the same switch are
    recorded as local flows (they bypass the network).
    """
    servers = servers_of(topo.server_map())
    if len(servers) < 2:
        raise TrafficError(
            "need at least 2 servers for a permutation, topology has "
            f"{len(servers)}"
        )
    rng = as_rng(seed)
    perm = random_derangement(rng, len(servers))
    pairs = [(servers[i], servers[int(perm[i])]) for i in range(len(servers))]
    tm = TrafficMatrix.from_server_pairs(
        pairs, name=name or "random-permutation"
    )
    return tm


def switch_permutation_traffic(
    topo: Topology,
    seed=None,
    switches=None,
    name: "str | None" = None,
) -> TrafficMatrix:
    """Switch-level (ToR-level) random permutation.

    Each participating switch sends all of its servers' traffic to exactly
    one other participating switch. ``switches`` restricts participation
    (default: every switch with at least one server). Server-level pairs are
    produced by striping each switch's servers across the destination
    switch's servers round-robin, so the packet simulator can replay the
    workload.
    """
    rng = as_rng(seed)
    if switches is None:
        switches = [v for v in topo.switches if topo.servers_at(v) > 0]
    else:
        switches = list(switches)
        for v in switches:
            if topo.servers_at(v) == 0:
                raise TrafficError(f"switch {v!r} has no servers to send from")
    if len(switches) < 2:
        raise TrafficError(
            f"need at least 2 server-bearing switches, got {len(switches)}"
        )
    perm = random_derangement(rng, len(switches))
    pairs: list[tuple] = []
    for i, src_switch in enumerate(switches):
        dst_switch = switches[int(perm[i])]
        dst_count = topo.servers_at(dst_switch)
        if dst_count == 0:
            raise TrafficError(f"destination switch {dst_switch!r} has no servers")
        for j in range(topo.servers_at(src_switch)):
            pairs.append(((src_switch, j), (dst_switch, j % dst_count)))
    return TrafficMatrix.from_server_pairs(
        pairs, name=name or "switch-permutation"
    )
