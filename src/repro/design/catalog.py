"""Parts catalogs: the equipment and cabling price list designs are costed by.

A :class:`PartsCatalog` is the purchasable universe of a design run: a
set of switch SKUs (radix, line-speed, chassis and per-port optics
prices) plus cabling rates (per cable and per meter) and an optional
per-server cost. Candidate generators consult it to decide which radices
are buildable and what a bill of switches costs; the engine prices each
candidate's physical cabling by laying the built topology out on a rack
row (:func:`repro.core.cabling.linear_layout`) and billing the resulting
:func:`~repro.core.cabling.cable_report` — the same machinery that
prices growth churn (:func:`~repro.core.cabling.cable_churn`), so the
cost and churn axes share one price list.

Catalogs are plain frozen dataclasses with a JSON round trip
(``save``/``load``), so a procurement team's actual price list can be
passed to ``repro-experiments design --catalog prices.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.cabling import CableChurn, cable_report, linear_layout
from repro.exceptions import DesignError
from repro.topology.base import Topology


@dataclass(frozen=True)
class SwitchSKU:
    """One purchasable switch model.

    ``unit_cost`` prices the chassis; ``port_cost`` prices each *used*
    port (optics/transceivers), so a design that leaves ports dark pays
    for the chassis but not the unused optics.
    """

    name: str
    ports: int
    unit_cost: float
    port_cost: float = 0.0
    line_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.ports < 1:
            raise DesignError(f"SKU {self.name!r}: ports must be >= 1")
        if self.unit_cost < 0 or self.port_cost < 0:
            raise DesignError(f"SKU {self.name!r}: costs must be >= 0")
        if self.line_speed <= 0:
            raise DesignError(f"SKU {self.name!r}: line_speed must be > 0")

    def cost(self, ports_used: "int | None" = None) -> float:
        """Price of one unit with ``ports_used`` ports lit (default: all)."""
        used = self.ports if ports_used is None else ports_used
        if used < 0 or used > self.ports:
            raise DesignError(
                f"SKU {self.name!r} has {self.ports} ports; "
                f"cannot light {used}"
            )
        return float(self.unit_cost + self.port_cost * used)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ports": self.ports,
            "unit_cost": self.unit_cost,
            "port_cost": self.port_cost,
            "line_speed": self.line_speed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SwitchSKU":
        return cls(
            name=str(payload["name"]),
            ports=int(payload["ports"]),
            unit_cost=float(payload["unit_cost"]),
            port_cost=float(payload.get("port_cost", 0.0)),
            line_speed=float(payload.get("line_speed", 1.0)),
        )


@dataclass(frozen=True)
class PartsCatalog:
    """The price list a design run shops from."""

    skus: "tuple[SwitchSKU, ...]"
    #: Flat price per installed cable (connectors, labor).
    cable_cost: float = 1.0
    #: Price per meter of cable run (rack-row Manhattan distance).
    cable_cost_per_meter: float = 0.0
    #: Price per attached server (NIC + its cable); often zero because
    #: every candidate serves the same server count and it cancels.
    server_cost: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "skus", tuple(self.skus))
        if not self.skus:
            raise DesignError("catalog needs at least one SKU")
        names = [sku.name for sku in self.skus]
        if len(set(names)) != len(names):
            raise DesignError(f"duplicate SKU names in catalog: {names}")
        if min(self.cable_cost, self.cable_cost_per_meter, self.server_cost) < 0:
            raise DesignError("catalog costs must be >= 0")

    def sku(self, name: str) -> SwitchSKU:
        for sku in self.skus:
            if sku.name == name:
                return sku
        known = ", ".join(sku.name for sku in self.skus)
        raise DesignError(f"unknown SKU {name!r}; catalog has: {known}")

    def cheapest_sku_for(self, ports: int) -> "SwitchSKU | None":
        """The cheapest SKU with at least ``ports`` ports, or ``None``.

        "Cheapest" prices the chassis plus ``ports`` lit ports — a big
        chassis with cheap optics can beat a small one.
        """
        fitting = [sku for sku in self.skus if sku.ports >= ports]
        if not fitting:
            return None
        return min(fitting, key=lambda sku: (sku.cost(ports), sku.name))

    def max_ports(self) -> int:
        """The largest radix purchasable from this catalog."""
        return max(sku.ports for sku in self.skus)

    def equipment_cost(
        self,
        bill: "Mapping[str, int] | tuple",
        servers: int = 0,
        ports_used: "Mapping[str, int] | None" = None,
    ) -> float:
        """Price a bill of materials: ``{sku name: count}`` plus servers.

        ``ports_used`` optionally maps SKU names to lit ports per unit
        (default: all ports lit).
        """
        if not isinstance(bill, Mapping):
            bill = dict(bill)
        used = dict(ports_used or {})
        total = float(self.server_cost) * int(servers)
        for name, count in bill.items():
            if count < 0:
                raise DesignError(f"negative count for SKU {name!r}")
            total += self.sku(name).cost(used.get(name)) * int(count)
        return total

    def cabling_cost(
        self,
        topo: Topology,
        positions: "dict | None" = None,
        seed: int = 0,
    ) -> float:
        """Price the physical cabling of a built topology.

        Lays the switches out on a cluster-grouped rack row when no
        ``positions`` are given (deterministic for a fixed ``seed``) and
        bills each link one cable plus its Manhattan length.
        """
        if positions is None:
            positions = linear_layout(topo, seed=seed)
        report = cable_report(topo, positions)
        return (
            report.num_cables * self.cable_cost
            + report.total_length * self.cable_cost_per_meter
        )

    def churn_cost(self, churn: CableChurn) -> float:
        """Price a rewiring step (cables pulled + installed)."""
        return (
            churn.cables_touched * self.cable_cost
            + churn.length_touched * self.cable_cost_per_meter
        )

    def to_dict(self) -> dict:
        return {
            "skus": [sku.to_dict() for sku in self.skus],
            "cable_cost": self.cable_cost,
            "cable_cost_per_meter": self.cable_cost_per_meter,
            "server_cost": self.server_cost,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PartsCatalog":
        return cls(
            skus=tuple(
                SwitchSKU.from_dict(entry) for entry in payload.get("skus", ())
            ),
            cable_cost=float(payload.get("cable_cost", 1.0)),
            cable_cost_per_meter=float(payload.get("cable_cost_per_meter", 0.0)),
            server_cost=float(payload.get("server_cost", 0.0)),
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path) -> "PartsCatalog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def default_catalog() -> PartsCatalog:
    """A generic merchant-silicon price list (arbitrary but plausible units).

    Prices follow the usual shape: cost grows super-linearly with radix
    (the paper's §2 motivation for building big networks from small
    switches), optics dominate at high radix, cables are cheap but not
    free.
    """
    return PartsCatalog(
        skus=(
            SwitchSKU(name="edge8", ports=8, unit_cost=600.0, port_cost=40.0),
            SwitchSKU(name="edge16", ports=16, unit_cost=1500.0, port_cost=50.0),
            SwitchSKU(name="agg32", ports=32, unit_cost=4200.0, port_cost=60.0),
            SwitchSKU(name="core64", ports=64, unit_cost=12000.0, port_cost=80.0),
        ),
        cable_cost=10.0,
        cable_cost_per_meter=3.0,
        server_cost=0.0,
    )
