"""Incremental non-dominated frontiers over named objective axes.

The designer scores every candidate on several objectives at once —
cost, throughput, resilience, growth churn — and no scalar weighting can
honestly rank them: the useful output is the *Pareto frontier*, the set
of candidates not dominated by any other. This module maintains that set
incrementally: each :meth:`ParetoFrontier.insert` either rejects a
dominated newcomer or admits it and evicts every incumbent it dominates,
so the live set is always exactly the non-dominated subset of everything
inserted so far, independent of insertion order (the property tests in
``tests/test_design_pareto_properties.py`` pin both invariants).

Axes carry a direction: ``"min"`` (cost, churn — less is better) or
``"max"`` (throughput, resilience). Dominance is the standard strict
Pareto relation: no worse on every axis, strictly better on at least
one. Ties on every axis dominate in neither direction, so duplicate
points coexist on the frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.exceptions import DesignError

#: The designer's default objective axes and their directions.
DESIGN_AXES: "dict[str, str]" = {
    "cost": "min",
    "throughput": "max",
    "resilience": "max",
    "churn": "min",
}


def _check_axes(axes: "Mapping[str, str]") -> "dict[str, str]":
    if not axes:
        raise DesignError("frontier needs at least one axis")
    checked: "dict[str, str]" = {}
    for name, direction in axes.items():
        if direction not in ("min", "max"):
            raise DesignError(
                f"axis {name!r} direction must be 'min' or 'max', "
                f"got {direction!r}"
            )
        checked[str(name)] = direction
    return checked


def _oriented(values: "Mapping[str, float]", axes: "Mapping[str, str]") -> tuple:
    """Project ``values`` onto the axes, flipped so larger is always better."""
    out = []
    for name, direction in axes.items():
        if name not in values:
            raise DesignError(
                f"point misses axis {name!r}; have: {sorted(values)}"
            )
        value = float(values[name])
        if value != value:  # NaN never dominates and is never dominated
            raise DesignError(f"axis {name!r} is NaN")
        out.append(value if direction == "max" else -value)
    return tuple(out)


def dominates(
    a: "Mapping[str, float]",
    b: "Mapping[str, float]",
    axes: "Mapping[str, str] | None" = None,
) -> bool:
    """Whether point ``a`` Pareto-dominates point ``b``.

    ``a`` dominates ``b`` when it is no worse on every axis and strictly
    better on at least one (directions per ``axes``, default
    :data:`DESIGN_AXES`).
    """
    axes = _check_axes(axes if axes is not None else DESIGN_AXES)
    oa = _oriented(a, axes)
    ob = _oriented(b, axes)
    return all(x >= y for x, y in zip(oa, ob)) and any(
        x > y for x, y in zip(oa, ob)
    )


@dataclass(frozen=True)
class FrontierEntry:
    """One admitted point: its axis values plus an arbitrary payload."""

    values: "tuple[tuple[str, float], ...]"
    item: object = None

    def values_dict(self) -> "dict[str, float]":
        return dict(self.values)


@dataclass
class ParetoFrontier:
    """The live non-dominated set under incremental insertion.

    >>> frontier = ParetoFrontier(axes={"cost": "min", "throughput": "max"})
    >>> frontier.insert({"cost": 10, "throughput": 1.0}, "a")
    True
    >>> frontier.insert({"cost": 10, "throughput": 0.5}, "b")  # dominated
    False
    >>> frontier.insert({"cost": 5, "throughput": 1.5}, "c")  # evicts "a"
    True
    >>> [entry.item for entry in frontier]
    ['c']
    """

    axes: "dict[str, str]" = field(default_factory=lambda: dict(DESIGN_AXES))
    _entries: "list[FrontierEntry]" = field(default_factory=list, repr=False)
    #: Points rejected or evicted so far (not retained, just counted).
    dominated_count: int = 0

    def __post_init__(self) -> None:
        self.axes = _check_axes(self.axes)

    def insert(self, values: "Mapping[str, float]", item: object = None) -> bool:
        """Offer a point; return ``True`` iff it joins the frontier.

        A dominated newcomer is rejected; an admitted newcomer evicts
        every incumbent it dominates. Either way the frontier stays
        exactly the non-dominated subset of all points ever offered.
        """
        oriented = _oriented(values, self.axes)
        survivors: "list[FrontierEntry]" = []
        evicted = 0
        for entry in self._entries:
            incumbent = _oriented(entry.values_dict(), self.axes)
            if all(x >= y for x, y in zip(incumbent, oriented)) and any(
                x > y for x, y in zip(incumbent, oriented)
            ):
                # An incumbent dominates the newcomer: nothing changes
                # (no incumbent can dominate another, so none were
                # evicted before we looked at this one).
                self.dominated_count += 1
                return False
            if all(x >= y for x, y in zip(oriented, incumbent)) and any(
                x > y for x, y in zip(oriented, incumbent)
            ):
                evicted += 1
                continue
            survivors.append(entry)
        frozen = tuple((name, float(values[name])) for name in self.axes)
        survivors.append(FrontierEntry(values=frozen, item=item))
        self._entries = survivors
        self.dominated_count += evicted
        return True

    def entries(self) -> "list[FrontierEntry]":
        """The current frontier, in admission order."""
        return list(self._entries)

    def items(self) -> list:
        """Payloads of the current frontier, in admission order."""
        return [entry.item for entry in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> "Iterator[FrontierEntry]":
        return iter(self._entries)
