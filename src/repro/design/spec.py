"""Design specs: what to buy for, what to optimize, how hard to search.

A :class:`DesignSpec` is the declarative input of a design run — the
budget and server target that bound the candidate space, the workload
and failure model the objectives are measured under, the estimator
policy for the cheap inner loop, and the annealing effort. Like the
pipeline's scenario specs it is a frozen, hashable, JSON-round-trippable
dataclass: the spec's content (plus the catalog's) determines every
evaluation the engine performs, which is what makes warm reruns answer
entirely from the content-addressed cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import DesignError

#: Default scalarization weights for the annealing walk (the frontier
#: itself is weight-free; weights only steer where the walk spends time).
DEFAULT_WEIGHTS: "dict[str, float]" = {
    "cost": 1.0,
    "throughput": 1.0,
    "resilience": 0.5,
    "churn": 0.25,
}


@dataclass(frozen=True)
class DesignSpec:
    """One design problem: budget, target, objectives, search effort."""

    #: Total budget (equipment + cabling + servers) a candidate may cost.
    budget: float
    #: Minimum number of servers every candidate must attach.
    servers: int
    #: Traffic-registry model the throughput axis is measured under.
    traffic: str = "permutation"
    #: Scalarization weights for the annealing walk, as sorted pairs.
    weights: tuple = ()
    #: Independent replicates per candidate (mean throughput/resilience).
    replicates: int = 2
    #: Content-seed base; a different base draws held-out replicates.
    base_seed: int = 0
    #: Failure model and rate defining the resilience axis.
    failure_model: str = "random_links"
    failure_rate: float = 0.1
    #: Estimator backend for candidates above ``exact_limit`` switches.
    estimator: str = "estimate_bound"
    #: Candidates with at most this many switches solve with the exact LP.
    exact_limit: int = 120
    #: Design-space annealing steps (0 = generators only, no refinement).
    anneal_steps: int = 0
    #: Generator names to draw candidates from (empty = all registered).
    generators: "tuple[str, ...]" = ()

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise DesignError(f"budget must be > 0, got {self.budget}")
        if self.servers < 1:
            raise DesignError(f"servers must be >= 1, got {self.servers}")
        if self.replicates < 1:
            raise DesignError(
                f"replicates must be >= 1, got {self.replicates}"
            )
        if not 0.0 <= self.failure_rate < 1.0:
            raise DesignError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}"
            )
        if self.exact_limit < 0:
            raise DesignError(
                f"exact_limit must be >= 0, got {self.exact_limit}"
            )
        if self.anneal_steps < 0:
            raise DesignError(
                f"anneal_steps must be >= 0, got {self.anneal_steps}"
            )
        weights = self.weights
        if isinstance(weights, Mapping):
            weights = tuple(weights.items())
        frozen = tuple(
            sorted((str(k), float(v)) for k, v in (weights or ()))
        )
        object.__setattr__(self, "weights", frozen)
        object.__setattr__(self, "generators", tuple(self.generators))

    @classmethod
    def make(cls, budget: float, servers: int, **kwargs) -> "DesignSpec":
        return cls(budget=budget, servers=servers, **kwargs)

    def weights_dict(self) -> "dict[str, float]":
        """Effective scalarization weights (defaults where unset)."""
        out = dict(DEFAULT_WEIGHTS)
        out.update(dict(self.weights))
        return out

    def to_dict(self) -> dict:
        return {
            "budget": self.budget,
            "servers": self.servers,
            "traffic": self.traffic,
            "weights": dict(self.weights),
            "replicates": self.replicates,
            "base_seed": self.base_seed,
            "failure_model": self.failure_model,
            "failure_rate": self.failure_rate,
            "estimator": self.estimator,
            "exact_limit": self.exact_limit,
            "anneal_steps": self.anneal_steps,
            "generators": list(self.generators),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DesignSpec":
        return cls(
            budget=float(payload["budget"]),
            servers=int(payload["servers"]),
            traffic=str(payload.get("traffic", "permutation")),
            weights=tuple(dict(payload.get("weights") or {}).items()),
            replicates=int(payload.get("replicates", 2)),
            base_seed=int(payload.get("base_seed", 0)),
            failure_model=str(payload.get("failure_model", "random_links")),
            failure_rate=float(payload.get("failure_rate", 0.1)),
            estimator=str(payload.get("estimator", "estimate_bound")),
            exact_limit=int(payload.get("exact_limit", 120)),
            anneal_steps=int(payload.get("anneal_steps", 0)),
            generators=tuple(payload.get("generators") or ()),
        )

