"""The Pareto design engine: budget-driven search over the full stack.

One :func:`run_design` call answers the paper's actual question — *what
is the best network you can buy for this budget?* — as a Pareto frontier
over cost × throughput × resilience × growth-churn:

1. **Generate.** Every registered generator emits registry-keyed
   candidates that serve the spec's server target within its equipment
   budget (:mod:`repro.design.candidates`).
2. **Calibrate.** When any candidate exceeds ``spec.exact_limit``
   switches, the spec's estimator is calibrated per family
   (:func:`repro.estimate.calibrate.calibrate_estimators`) with all
   calibration solves routed through the content-addressed cache.
3. **Evaluate.** Candidates are scored through
   :func:`repro.pipeline.engine.run_grid` — batched execution on the
   job model, one grid per solver tier, with the failure axis supplying
   the resilience coordinate. Cabling cost and growth churn are then
   measured on the built instance (:mod:`repro.core.cabling`,
   :mod:`repro.topology.expansion`).
4. **Anneal.** A Metropolis walk over the *design space* (not the edge
   space): :func:`~repro.design.candidates.mutate_candidate` proposes
   neighboring designs, a weighted scalarization steers acceptance
   under a :class:`~repro.search.annealing.CoolingSchedule`, and every
   evaluated design is offered to the incremental
   :class:`~repro.design.pareto.ParetoFrontier`.
5. **Promote.** Frontier finalists scored by an estimator are re-solved
   with the exact ``edge_lp`` and checked against their calibration
   band; the frontier is re-filtered on the exact numbers.

Every throughput number flows through ``ResultCache`` content addresses,
so re-running the same (spec, catalog) answers entirely from cache —
the report's ``cold_solves`` counter reads zero on a warm rerun.
"""

from __future__ import annotations

import csv
import json
import math
import os
from dataclasses import dataclass, field

from repro.core.cabling import cable_churn, linear_layout
from repro.design.candidates import (
    CandidateDesign,
    generate_candidates,
    mutate_candidate,
)
from repro.design.catalog import PartsCatalog, default_catalog
from repro.design.pareto import DESIGN_AXES, ParetoFrontier
from repro.design.spec import DesignSpec
from repro.estimate.calibrate import (
    CalibrationTable,
    calibrate_estimators,
    within_band,
)
from repro.exceptions import DesignError
from repro.flow.solvers import SolverConfig
from repro.pipeline.cache import CACHE_ENV_VAR
from repro.pipeline.engine import run_grid
from repro.pipeline.scenario import ScenarioGrid, TopologySpec, TrafficSpec
from repro.resilience import FailureSpec
from repro.search.annealing import CoolingSchedule
from repro.topology.base import Topology
from repro.topology.expansion import expand_topology
from repro.util.hashing import stable_seed
from repro.util.rng import as_rng
from repro.util.tables import format_table

#: Sizes the designer calibrates estimator bands at (small enough for
#: exact LPs, solved through the cache so warm reruns cost nothing).
CALIBRATION_SIZES = (16, 24)


@dataclass
class DesignPointRecord:
    """One fully evaluated candidate: objectives plus provenance."""

    candidate: CandidateDesign
    metrics: dict = field(default_factory=dict)
    on_frontier: bool = False

    def values(self) -> "dict[str, float]":
        """The four Pareto axis values of this point."""
        return {axis: float(self.metrics[axis]) for axis in DESIGN_AXES}

    def label(self) -> str:
        return self.candidate.label()

    def to_dict(self) -> dict:
        return {
            "label": self.label(),
            "generator": self.candidate.generator,
            "family": self.candidate.family,
            "topology": self.candidate.topology.to_dict(),
            "bill": self.candidate.bill_dict(),
            "servers": self.candidate.servers,
            "num_switches": self.candidate.num_switches,
            "metrics": dict(self.metrics),
            "on_frontier": self.on_frontier,
        }


CSV_FIELDS = (
    "label",
    "generator",
    "family",
    "num_switches",
    "servers",
    "cost",
    "equipment_cost",
    "cabling_cost",
    "throughput",
    "throughput_std",
    "resilience",
    "churn",
    "solver",
    "exact",
    "promoted",
    "within_band",
    "on_frontier",
)


@dataclass
class DesignReport:
    """Everything a design run produced, JSON/CSV serializable."""

    spec: DesignSpec
    catalog: PartsCatalog
    points: "list[DesignPointRecord]" = field(default_factory=list)
    dominated: int = 0
    cold_solves: int = 0
    cache_hits: int = 0
    anneal_accepted: int = 0
    anneal_proposed: int = 0
    elapsed_s: float = 0.0

    def frontier(self) -> "list[DesignPointRecord]":
        """Frontier points, cheapest first."""
        return sorted(
            (p for p in self.points if p.on_frontier),
            key=lambda p: p.metrics["cost"],
        )

    def dominance(self) -> dict:
        """The paper's equal-cost claim, checked on this run's numbers.

        A random-family design *dominates* a fat-tree point when its
        equipment cost is no higher, its total cost (equipment +
        cabling) is no higher, and its throughput is strictly higher.
        """
        pairs = []
        eps = 1e-9
        fat_trees = [p for p in self.points if p.candidate.generator == "fat-tree"]
        randoms = [p for p in self.points if p.candidate.family == "random"]
        for ft in fat_trees:
            for rnd in randoms:
                if (
                    rnd.metrics["equipment_cost"]
                    <= ft.metrics["equipment_cost"] + eps
                    and rnd.metrics["cost"] <= ft.metrics["cost"] + eps
                    and rnd.metrics["throughput"]
                    > ft.metrics["throughput"] + eps
                ):
                    pairs.append(
                        {
                            "random": rnd.label(),
                            "fat_tree": ft.label(),
                            "equipment_cost": ft.metrics["equipment_cost"],
                            "throughput_gain": (
                                rnd.metrics["throughput"]
                                - ft.metrics["throughput"]
                            ),
                        }
                    )
        return {"confirmed": bool(pairs), "pairs": pairs}

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "catalog": self.catalog.to_dict(),
            "points": [p.to_dict() for p in self.points],
            "frontier": [p.label() for p in self.frontier()],
            "dominance": self.dominance(),
            "dominated": self.dominated,
            "cold_solves": self.cold_solves,
            "cache_hits": self.cache_hits,
            "anneal_accepted": self.anneal_accepted,
            "anneal_proposed": self.anneal_proposed,
            "elapsed_s": self.elapsed_s,
        }

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    def write_csv(self, path) -> None:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
            writer.writeheader()
            for point in self.points:
                row = {
                    "label": point.label(),
                    "generator": point.candidate.generator,
                    "family": point.candidate.family,
                    "num_switches": point.candidate.num_switches,
                    "servers": point.candidate.servers,
                    "on_frontier": point.on_frontier,
                }
                for name in CSV_FIELDS:
                    if name in point.metrics:
                        row[name] = point.metrics[name]
                writer.writerow(row)

    def summary(self) -> str:
        """Human-readable frontier table plus run counters."""
        headers = [
            "design",
            "cost",
            "throughput",
            "resilience",
            "churn",
            "solver",
        ]
        rows = []
        for point in self.frontier():
            rows.append(
                [
                    point.label(),
                    point.metrics["cost"],
                    point.metrics["throughput"],
                    point.metrics["resilience"],
                    point.metrics["churn"],
                    point.metrics["solver"]
                    + ("*" if point.metrics.get("promoted") else ""),
                ]
            )
        dominance = self.dominance()
        lines = [
            f"== design frontier ({len(rows)} points, "
            f"{len(self.points)} evaluated, {self.dominated} dominated) ==",
            format_table(headers, rows, float_format="{:.3f}"),
            (
                "random beats fat-tree at matched cost: "
                + ("yes" if dominance["confirmed"] else "no")
                + (
                    f" ({len(dominance['pairs'])} dominating pairs)"
                    if dominance["pairs"]
                    else ""
                )
            ),
            (
                f"{self.cold_solves} cold solves, "
                f"{self.cache_hits} cache hits, "
                f"{self.anneal_accepted}/{self.anneal_proposed} anneal moves "
                f"accepted, {self.elapsed_s:.2f}s"
            ),
        ]
        return "\n".join(lines)


def _solver_for(
    candidate: CandidateDesign, spec: DesignSpec, table: "CalibrationTable | None"
) -> SolverConfig:
    """Exact LP below the size limit, calibrated estimator above it."""
    if candidate.num_switches <= spec.exact_limit:
        return SolverConfig.make("edge_lp")
    if table is not None:
        return table.config_for(candidate.calibration_family, spec.estimator)
    return SolverConfig.make(spec.estimator)


def _failure_axis(spec: DesignSpec):
    if spec.failure_rate <= 0:
        return None
    return (
        None,
        FailureSpec(model=spec.failure_model, rate=spec.failure_rate),
    )


def _grid_for(
    candidates: "list[CandidateDesign]",
    solver: SolverConfig,
    spec: DesignSpec,
) -> ScenarioGrid:
    return ScenarioGrid(
        name="design",
        topologies=tuple(c.topology for c in candidates),
        traffics=(TrafficSpec.make(spec.traffic),),
        solvers=(solver,),
        seeds=spec.replicates,
        base_seed=spec.base_seed,
        failures=_failure_axis(spec),
    )


def _union_positions(before: Topology, after: Topology) -> dict:
    """Deterministic rack-row slots covering both topologies' switches."""
    ordered = sorted(set(before.switches) | set(after.switches), key=repr)
    return {node: index for index, node in enumerate(ordered)}


def _measure_churn(
    candidate: CandidateDesign,
    topo: Topology,
    catalog: PartsCatalog,
    spec: DesignSpec,
) -> float:
    """Rewiring cost per added server of one growth step.

    Random families grow in place by link swaps (an eighth more
    switches, matching equipment); structured families step to the next
    ladder rung (``k + 2``) and pay for every cable that differs. Both
    are priced by the catalog over a shared layout and normalized per
    server gained, so the axis is comparable across families.
    """
    if candidate.family == "random":
        before = topo
        after = topo.copy()
        num_add = max(1, round(candidate.num_switches / 8))
        degree = max(
            2, round(2 * topo.num_links / max(1, topo.num_switches))
        )
        servers_each = math.ceil(candidate.servers / candidate.num_switches)
        new_switches = {f"__grow{i}": degree for i in range(num_add)}
        servers = {name: servers_each for name in new_switches}
        expand_topology(
            after,
            new_switches,
            servers=servers,
            seed=stable_seed({"design-churn": candidate.label()}),
        )
        churn = cable_churn(before, after, _union_positions(before, after))
        added = after.num_servers - before.num_servers
        return catalog.churn_cost(churn) / max(1, added)
    params = candidate.topology.params_dict()
    if "k" in params:
        params["k"] = int(params["k"]) + 2
    else:
        params["da"] = int(params["da"]) + 2
        params["di"] = int(params["di"]) + 2
    upgraded = TopologySpec.make(candidate.topology.kind, **params).build()
    churn = cable_churn(topo, upgraded, _union_positions(topo, upgraded))
    added = upgraded.num_servers - topo.num_servers
    return catalog.churn_cost(churn) / max(1, added)


class _DesignRun:
    """Mutable state of one :func:`run_design` invocation."""

    def __init__(
        self,
        spec: DesignSpec,
        catalog: PartsCatalog,
        cache_dir: "str | None",
        workers: int,
    ) -> None:
        self.spec = spec
        self.catalog = catalog
        self.cache_dir = cache_dir
        self.workers = workers
        self.table: "CalibrationTable | None" = None
        self.records: "dict[str, DesignPointRecord]" = {}
        self.cold_solves = 0
        self.cache_hits = 0

    # -- throughput/resilience through the batched pipeline ------------

    def evaluate(
        self, candidates: "list[CandidateDesign]"
    ) -> "list[DesignPointRecord]":
        """Score candidates not yet measured; return records for all."""
        fresh = [
            c for c in candidates if c.label() not in self.records
        ]
        by_solver: "dict[SolverConfig, list[CandidateDesign]]" = {}
        for candidate in fresh:
            config = _solver_for(candidate, self.spec, self.table)
            by_solver.setdefault(config, []).append(candidate)
        for config, group in by_solver.items():
            self._run_group(group, config)
        return [self.records[c.label()] for c in candidates]

    def _run_group(
        self, group: "list[CandidateDesign]", config: SolverConfig
    ) -> None:
        grid = _grid_for(group, config, self.spec)
        sweep = run_grid(
            grid, workers=self.workers, cache_dir=self.cache_dir
        )
        by_spec: "dict[TopologySpec, dict]" = {}
        for cell in sweep.cells:
            if cell.cache_hit:
                self.cache_hits += 1
            else:
                self.cold_solves += 1
            bucket = by_spec.setdefault(
                cell.scenario.topology, {"base": {}, "failed": {}}
            )
            kind = "base" if cell.scenario.failure is None else "failed"
            bucket[kind][cell.scenario.replicate] = cell
        for candidate in group:
            self._finalize(candidate, config, by_spec[candidate.topology])

    def _finalize(
        self,
        candidate: CandidateDesign,
        config: SolverConfig,
        cells: dict,
    ) -> None:
        base = [cells["base"][r] for r in sorted(cells["base"])]
        throughputs = [cell.throughput for cell in base]
        mean = sum(throughputs) / len(throughputs)
        std = (
            math.sqrt(
                sum((t - mean) ** 2 for t in throughputs) / len(throughputs)
            )
            if len(throughputs) > 1
            else 0.0
        )
        if cells["failed"]:
            ratios = []
            for replicate, cell in cells["failed"].items():
                reference = cells["base"][replicate].throughput
                ratios.append(
                    cell.throughput / reference if reference > 0 else 0.0
                )
            resilience = sum(ratios) / len(ratios)
        else:
            resilience = 1.0
        # Physical pass: build the replicate-0 instance once for the
        # cabling and churn coordinates.
        scenario = base[0].scenario
        topo = scenario.topology.build(seed=scenario.instance_seeds()[0])
        cabling = self.catalog.cabling_cost(
            topo, seed=stable_seed({"design-layout": candidate.label()})
        )
        churn = _measure_churn(candidate, topo, self.catalog, self.spec)
        metrics = {
            "cost": candidate.equipment_cost + cabling,
            "equipment_cost": candidate.equipment_cost,
            "cabling_cost": cabling,
            "throughput": mean,
            "throughput_std": std,
            "resilience": resilience,
            "churn": churn,
            "solver": config.name,
            "exact": bool(base[0].exact),
            "promoted": False,
            "within_band": None,
            "error_lo": base[0].error_lo,
            "error_hi": base[0].error_hi,
        }
        self.records[candidate.label()] = DesignPointRecord(
            candidate=candidate, metrics=metrics
        )

    # -- calibration through the cache ---------------------------------

    def calibrate_if_needed(
        self, candidates: "list[CandidateDesign]"
    ) -> None:
        """Fit estimator bands for the families that will need them.

        Calibration pairs solve through :func:`cached_solve`, so they
        are content-addressed like every other evaluation — a warm
        rerun recalibrates without a single cold solve.
        """
        needed = sorted(
            {
                c.calibration_family
                for c in candidates
                if c.num_switches > self.spec.exact_limit
            }
        )
        if not needed:
            return
        from repro.estimate.calibrate import DEFAULT_FAMILIES
        from repro.pipeline.cache import ResultCache
        from repro.pipeline.engine import cached_solve

        cache = (
            ResultCache(self.cache_dir) if self.cache_dir is not None else None
        )

        def solve(topo, traffic, solver_name, **options):
            result, hit = cached_solve(
                topo,
                traffic,
                SolverConfig.make(solver_name, **options),
                cache,
            )
            if hit:
                self.cache_hits += 1
            else:
                self.cold_solves += 1
            return result

        self.table = calibrate_estimators(
            (self.spec.estimator,),
            families={name: DEFAULT_FAMILIES[name] for name in needed},
            sizes=CALIBRATION_SIZES,
            traffic=self.spec.traffic,
            base_seed=self.spec.base_seed,
            solve=solve,
        )

    # -- design-space annealing ----------------------------------------

    def anneal(self, report: DesignReport, frontier: ParetoFrontier) -> None:
        spec = self.spec
        if spec.anneal_steps <= 0:
            return
        weights = spec.weights_dict()
        refs = {
            axis: max(
                1e-9,
                sum(abs(r.metrics[axis]) for r in self.records.values())
                / len(self.records),
            )
            for axis in DESIGN_AXES
        }

        def score(record: DesignPointRecord) -> float:
            total = 0.0
            for axis, direction in DESIGN_AXES.items():
                sign = 1.0 if direction == "max" else -1.0
                total += (
                    weights.get(axis, 0.0)
                    * sign
                    * record.metrics[axis]
                    / refs[axis]
                )
            return total

        rng = as_rng(
            stable_seed({"design-anneal": spec.to_dict()})
        )
        schedule = CoolingSchedule(
            initial_temperature=0.5, final_temperature=0.02
        )
        current = max(self.records.values(), key=score)
        current_score = score(current)
        for step in range(spec.anneal_steps):
            proposal = mutate_candidate(
                current.candidate, self.catalog, spec, rng
            )
            if proposal is None:
                continue
            report.anneal_proposed += 1
            record = self.evaluate([proposal])[0]
            if record.metrics["cost"] > spec.budget:
                continue
            frontier.insert(record.values(), record.label())
            delta = score(record) - current_score
            temperature = schedule.temperature(step, spec.anneal_steps)
            if delta >= 0 or rng.random() < math.exp(delta / temperature):
                current, current_score = record, score(record)
                report.anneal_accepted += 1

    # -- exact promotion of frontier finalists -------------------------

    def promote(self, finalists: "list[DesignPointRecord]") -> None:
        """Re-solve estimator-scored finalists with the exact LP.

        The estimator's mean is checked against the finalist's
        calibration band (``within_band``); the exact number replaces
        the throughput coordinate either way, so the final frontier is
        filtered on exact values. Resilience keeps its estimator ratio
        (a ratio of two same-backend numbers, where the systematic
        offset cancels).
        """
        pending = [p for p in finalists if not p.metrics["exact"]]
        for point in pending:
            grid = ScenarioGrid(
                name="design-promote",
                topologies=(point.candidate.topology,),
                traffics=(TrafficSpec.make(self.spec.traffic),),
                solvers=(SolverConfig.make("edge_lp"),),
                seeds=self.spec.replicates,
                base_seed=self.spec.base_seed,
            )
            sweep = run_grid(
                grid, workers=self.workers, cache_dir=self.cache_dir
            )
            for cell in sweep.cells:
                if cell.cache_hit:
                    self.cache_hits += 1
                else:
                    self.cold_solves += 1
            exact_mean = sum(c.throughput for c in sweep.cells) / len(
                sweep.cells
            )
            estimate = point.metrics["throughput"]
            banded = None
            if self.table is not None:
                band = self.table.band(
                    point.candidate.calibration_family, self.spec.estimator
                )
                banded = within_band(estimate, exact_mean, band)
            point.metrics.update(
                {
                    "throughput": exact_mean,
                    "estimate": estimate,
                    "exact": True,
                    "promoted": True,
                    "within_band": banded,
                    "solver": "edge_lp",
                }
            )


def run_design(
    spec: DesignSpec,
    catalog: "PartsCatalog | None" = None,
    cache_dir: "str | None" = None,
    workers: int = 1,
    promote: bool = True,
) -> DesignReport:
    """Search the design space; return the evaluated Pareto frontier.

    ``cache_dir`` defaults to the ``REPRO_CACHE_DIR`` environment
    variable; with a cache configured, a rerun of the same (spec,
    catalog) pair completes with zero cold solves. ``promote=False``
    skips the exact-LP confirmation of estimator-scored finalists.
    """
    import time

    start = time.perf_counter()
    catalog = catalog if catalog is not None else default_catalog()
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_ENV_VAR) or None
    run = _DesignRun(spec, catalog, cache_dir, workers)
    report = DesignReport(spec=spec, catalog=catalog)

    candidates = generate_candidates(catalog, spec)
    run.calibrate_if_needed(candidates)
    frontier = ParetoFrontier(axes=dict(DESIGN_AXES))
    for record in run.evaluate(candidates):
        if record.metrics["cost"] > spec.budget:
            continue
        frontier.insert(record.values(), record.label())

    run.anneal(report, frontier)

    finalists = [
        run.records[label]
        for label in frontier.items()
        if label in run.records
    ]
    if promote:
        run.promote(finalists)

    # Re-filter on the final (possibly promoted) numbers so the frontier
    # flag reflects exact values wherever they exist.
    final = ParetoFrontier(axes=dict(DESIGN_AXES))
    within_budget = [
        record
        for record in run.records.values()
        if record.metrics["cost"] <= spec.budget
    ]
    if not within_budget:
        raise DesignError(
            "no candidate fits the budget once cabling is priced; "
            "raise the budget or cheapen the catalog"
        )
    for record in within_budget:
        final.insert(record.values(), record.label())
    on_frontier = set(final.items())
    for record in within_budget:
        record.on_frontier = record.label() in on_frontier

    report.points = sorted(
        within_budget, key=lambda r: (r.metrics["cost"], r.label())
    )
    report.dominated = final.dominated_count
    report.cold_solves = run.cold_solves
    report.cache_hits = run.cache_hits
    report.elapsed_s = time.perf_counter() - start
    return report
