"""Candidate designs and the generators that emit them.

A :class:`CandidateDesign` is one buildable point in the design space: a
registry-keyed :class:`~repro.pipeline.scenario.TopologySpec` (so the
pipeline can construct, fingerprint, cache, and batch it like any other
sweep cell) plus the procurement side — the bill of catalog SKUs, the
lit ports per unit, the attached server count, and the resulting
equipment cost.

Generators turn a (:class:`~repro.design.catalog.PartsCatalog`,
:class:`~repro.design.spec.DesignSpec`) pair into candidate lists:

- ``rrg`` — random regular graphs at every SKU radix and a few
  servers-per-switch mixes (the paper's main construction),
- ``fat-tree`` — the k-ary fat-tree upgrade ladder,
- ``matched`` — for each buildable fat-tree ``k``, a random graph wired
  from *exactly* the fat-tree's equipment (same bill, same cost — the
  paper's equal-cost comparison point),
- ``vl2`` — the VL2/Clos ladder at unit line-speed,
- ``power-law`` — heterogeneous switch populations from the truncated
  power law of :func:`repro.topology.heterogeneous.power_law_port_counts`,
  with the port population pinned by a content-derived ``ports_seed`` so
  every replicate prices the same bill.

:func:`mutate_candidate` proposes a neighboring design (the annealing
move kernel): radix/split tweaks for random families, ladder steps for
structured ones. All emitted candidates satisfy the spec's server target
and fit its budget on equipment cost; the engine re-checks total cost
once cabling is priced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.design.catalog import PartsCatalog, SwitchSKU
from repro.design.spec import DesignSpec
from repro.exceptions import DesignError
from repro.pipeline.scenario import TopologySpec
from repro.topology.heterogeneous import power_law_port_counts
from repro.util.hashing import stable_seed


@dataclass(frozen=True)
class CandidateDesign:
    """One buildable, priceable point in the design space."""

    generator: str
    #: ``"random"`` families grow by link swaps; ``"structured"`` ones
    #: upgrade along their ladder (drives the churn measurement).
    family: str
    #: Calibration family label for estimator error bands.
    calibration_family: str
    topology: TopologySpec
    bill: "tuple[tuple[str, int], ...]"
    ports_used: "tuple[tuple[str, int], ...]"
    servers: int
    num_switches: int
    equipment_cost: float

    def label(self) -> str:
        return self.topology.label()

    def bill_dict(self) -> "dict[str, int]":
        return dict(self.bill)


def _candidate(
    generator: str,
    family: str,
    calibration_family: str,
    topology: TopologySpec,
    bill: "Mapping[str, int]",
    ports_used: "Mapping[str, int]",
    servers: int,
    catalog: PartsCatalog,
) -> CandidateDesign:
    cost = catalog.equipment_cost(bill, servers=servers, ports_used=ports_used)
    return CandidateDesign(
        generator=generator,
        family=family,
        calibration_family=calibration_family,
        topology=topology,
        bill=tuple(sorted(bill.items())),
        ports_used=tuple(sorted(ports_used.items())),
        servers=int(servers),
        num_switches=int(sum(bill.values())),
        equipment_cost=cost,
    )


def _rrg_candidate(
    sku: SwitchSKU,
    servers_per_switch: int,
    catalog: PartsCatalog,
    spec: DesignSpec,
) -> "CandidateDesign | None":
    """An RRG point on ``sku`` with a given server split, or ``None``."""
    if servers_per_switch < 1 or servers_per_switch >= sku.ports:
        return None
    degree = sku.ports - servers_per_switch
    if degree < 3:
        return None
    num_switches = math.ceil(spec.servers / servers_per_switch)
    if num_switches <= degree:
        num_switches = degree + 1
    if (num_switches * degree) % 2:
        num_switches += 1
    candidate = _candidate(
        generator="rrg",
        family="random",
        calibration_family="rrg",
        topology=TopologySpec.make(
            "rrg",
            num_switches=num_switches,
            network_degree=degree,
            servers_per_switch=servers_per_switch,
        ),
        bill={sku.name: num_switches},
        ports_used={sku.name: degree + servers_per_switch},
        servers=num_switches * servers_per_switch,
        catalog=catalog,
    )
    if candidate.equipment_cost > spec.budget:
        return None
    return candidate


def rrg_candidates(
    catalog: PartsCatalog, spec: DesignSpec
) -> "list[CandidateDesign]":
    out = []
    for sku in catalog.skus:
        splits = {sku.ports // 4, sku.ports // 3, sku.ports // 2}
        for servers_per_switch in sorted(s for s in splits if s >= 1):
            candidate = _rrg_candidate(sku, servers_per_switch, catalog, spec)
            if candidate is not None:
                out.append(candidate)
    return out


def _fat_tree_ks(catalog: PartsCatalog, spec: DesignSpec) -> "list[int]":
    """Buildable fat-tree radices meeting the server target and budget."""
    out = []
    for k in range(4, catalog.max_ports() + 1, 2):
        if k * k * k // 4 < spec.servers:
            continue
        sku = catalog.cheapest_sku_for(k)
        if sku is None:
            break
        cost = catalog.equipment_cost(
            {sku.name: 5 * k * k // 4},
            servers=k * k * k // 4,
            ports_used={sku.name: k},
        )
        if cost > spec.budget:
            break
        out.append(k)
        if len(out) >= 4:  # one ladder rung past the target is plenty
            break
    return out


def _fat_tree_equipment(
    k: int, catalog: PartsCatalog
) -> "tuple[dict, dict, int]":
    sku = catalog.cheapest_sku_for(k)
    if sku is None:
        raise DesignError(f"no SKU with >= {k} ports in catalog")
    return {sku.name: 5 * k * k // 4}, {sku.name: k}, k * k * k // 4


def fat_tree_candidates(
    catalog: PartsCatalog, spec: DesignSpec
) -> "list[CandidateDesign]":
    out = []
    for k in _fat_tree_ks(catalog, spec):
        bill, ports_used, servers = _fat_tree_equipment(k, catalog)
        out.append(
            _candidate(
                generator="fat-tree",
                family="structured",
                calibration_family="fat-tree",
                topology=TopologySpec.make("fat-tree", k=k),
                bill=bill,
                ports_used=ports_used,
                servers=servers,
                catalog=catalog,
            )
        )
    return out


def matched_candidates(
    catalog: PartsCatalog, spec: DesignSpec
) -> "list[CandidateDesign]":
    """Random graphs wired from exactly the fat-tree bill at each ``k``."""
    out = []
    for k in _fat_tree_ks(catalog, spec):
        bill, ports_used, servers = _fat_tree_equipment(k, catalog)
        out.append(
            _candidate(
                generator="matched",
                family="random",
                calibration_family="rrg",
                topology=TopologySpec.make("matched-random", k=k),
                bill=bill,
                ports_used=ports_used,
                servers=servers,
                catalog=catalog,
            )
        )
    return out


def vl2_candidates(
    catalog: PartsCatalog, spec: DesignSpec
) -> "list[CandidateDesign]":
    out = []
    for k in range(4, catalog.max_ports() + 1, 2):
        tors = k * k // 4
        servers_per_tor = math.ceil(spec.servers / tors)
        fabric_sku = catalog.cheapest_sku_for(k)
        tor_sku = catalog.cheapest_sku_for(servers_per_tor + 2)
        if fabric_sku is None or tor_sku is None:
            continue
        bill = {fabric_sku.name: k + k // 2}
        ports_used = {fabric_sku.name: k}
        bill[tor_sku.name] = bill.get(tor_sku.name, 0) + tors
        if tor_sku.name in ports_used:
            # ToRs and fabric share a SKU: bill the larger port usage.
            ports_used[tor_sku.name] = max(
                ports_used[tor_sku.name], servers_per_tor + 2
            )
        else:
            ports_used[tor_sku.name] = servers_per_tor + 2
        candidate = _candidate(
            generator="vl2",
            family="structured",
            calibration_family="vl2",
            topology=TopologySpec.make(
                "vl2",
                da=k,
                di=k,
                servers_per_tor=servers_per_tor,
                fabric_capacity=1.0,
            ),
            bill=bill,
            ports_used=ports_used,
            servers=tors * servers_per_tor,
            catalog=catalog,
        )
        if candidate.equipment_cost <= spec.budget:
            out.append(candidate)
            if len(out) >= 3:
                break
    return out


def _power_law_candidate(
    num_switches: int,
    exponent: float,
    max_ports: int,
    ports_seed: int,
    catalog: PartsCatalog,
    spec: DesignSpec,
    min_ports: int = 4,
) -> "CandidateDesign | None":
    """Price one power-law population (or ``None`` when infeasible).

    The bill is computable without building: ``ports_seed`` pins the
    sampled population, and each switch is priced by the cheapest SKU
    covering its port count.
    """
    counts = power_law_port_counts(
        num_switches,
        exponent=exponent,
        min_ports=min_ports,
        max_ports=max_ports,
        seed=ports_seed,
    )
    if spec.servers > sum(max(0, ports - 1) for ports in counts):
        return None
    bill: "dict[str, int]" = {}
    ports_used: "dict[str, int]" = {}
    for ports in counts:
        sku = catalog.cheapest_sku_for(ports)
        if sku is None:
            return None
        bill[sku.name] = bill.get(sku.name, 0) + 1
        ports_used[sku.name] = max(ports_used.get(sku.name, 0), ports)
    candidate = _candidate(
        generator="power-law",
        family="random",
        calibration_family="rrg",
        topology=TopologySpec.make(
            "power-law",
            num_switches=num_switches,
            exponent=round(float(exponent), 4),
            min_ports=min_ports,
            max_ports=max_ports,
            total_servers=spec.servers,
            beta=1.0,
            ports_seed=int(ports_seed),
        ),
        bill=bill,
        ports_used=ports_used,
        servers=spec.servers,
        catalog=catalog,
    )
    if candidate.equipment_cost > spec.budget:
        return None
    return candidate


def power_law_candidates(
    catalog: PartsCatalog, spec: DesignSpec
) -> "list[CandidateDesign]":
    out = []
    max_ports = min(16, catalog.max_ports())
    for exponent in (1.5, 2.0):
        for scale in (2, 3):
            num_switches = max(8, math.ceil(spec.servers / scale))
            ports_seed = stable_seed(
                {
                    "design-ports": spec.base_seed,
                    "n": num_switches,
                    "exponent": exponent,
                }
            )
            candidate = _power_law_candidate(
                num_switches, exponent, max_ports, ports_seed, catalog, spec
            )
            if candidate is not None:
                out.append(candidate)
    return out


_GENERATORS: "dict[str, Callable[[PartsCatalog, DesignSpec], list]]" = {
    "rrg": rrg_candidates,
    "fat-tree": fat_tree_candidates,
    "matched": matched_candidates,
    "vl2": vl2_candidates,
    "power-law": power_law_candidates,
}


def available_generators() -> "list[str]":
    """Registered candidate-generator names, in registration order."""
    return list(_GENERATORS)


def register_generator(
    name: str, fn: "Callable[[PartsCatalog, DesignSpec], list]"
) -> None:
    """Register a custom generator (existing names cannot be overwritten)."""
    if name in _GENERATORS:
        raise DesignError(f"generator {name!r} is already registered")
    _GENERATORS[name] = fn


def generate_candidates(
    catalog: PartsCatalog,
    spec: DesignSpec,
    generators: "tuple[str, ...] | None" = None,
) -> "list[CandidateDesign]":
    """Run the chosen generators and dedup by topology label."""
    names = tuple(generators if generators is not None else ())
    if not names:
        names = tuple(spec.generators) or tuple(_GENERATORS)
    out: "list[CandidateDesign]" = []
    seen: set = set()
    for name in names:
        if name not in _GENERATORS:
            known = ", ".join(_GENERATORS)
            raise DesignError(f"unknown generator {name!r}; known: {known}")
        for candidate in _GENERATORS[name](catalog, spec):
            key = candidate.label()
            if key in seen:
                continue
            seen.add(key)
            out.append(candidate)
    if not out:
        raise DesignError(
            f"no feasible candidate serves {spec.servers} servers within "
            f"budget {spec.budget}; widen the catalog or raise the budget"
        )
    return out


def mutate_candidate(
    candidate: CandidateDesign,
    catalog: PartsCatalog,
    spec: DesignSpec,
    rng,
) -> "CandidateDesign | None":
    """Propose a neighboring design (the annealing move kernel).

    Random families tweak their radix mix (servers-per-switch, SKU, or
    power-law shape); structured families step along their ladder.
    Returns ``None`` when the sampled move is infeasible or busts the
    equipment budget — the annealer just draws again.
    """
    params = candidate.topology.params_dict()
    if candidate.generator == "rrg":
        sku_names = [sku.name for sku in catalog.skus]
        current = candidate.bill[0][0]
        if len(sku_names) > 1 and rng.random() < 0.3:
            choices = [name for name in sku_names if name != current]
            sku = catalog.sku(choices[int(rng.integers(len(choices)))])
            servers_per_switch = max(1, sku.ports // 3)
        else:
            sku = catalog.sku(current)
            servers_per_switch = int(params["servers_per_switch"]) + (
                1 if rng.random() < 0.5 else -1
            )
        return _rrg_candidate(sku, servers_per_switch, catalog, spec)
    if candidate.generator == "power-law":
        exponent = float(params["exponent"])
        if rng.random() < 0.5:
            exponent = min(3.0, max(1.2, exponent + rng.choice((-0.25, 0.25))))
            ports_seed = int(params["ports_seed"])
        else:
            ports_seed = int(rng.integers(2**31))
        return _power_law_candidate(
            int(params["num_switches"]),
            exponent,
            int(params["max_ports"]),
            ports_seed,
            catalog,
            spec,
            min_ports=int(params["min_ports"]),
        )
    if candidate.generator in ("fat-tree", "matched", "vl2"):
        step = 2 if rng.random() < 0.5 else -2
        maker = {
            "fat-tree": fat_tree_candidates,
            "matched": matched_candidates,
            "vl2": vl2_candidates,
        }[candidate.generator]
        key = "k" if "k" in params else "da"
        target = int(params[key]) + step
        for neighbor in maker(catalog, spec):
            if int(neighbor.topology.params_dict()[key]) == target:
                return neighbor
        return None
    return None
