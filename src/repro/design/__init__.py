"""Budget-driven multi-objective topology design (the paper's pitch).

``repro.design`` turns the evaluation stack into a *designer*: give it a
parts catalog (:class:`PartsCatalog`) and a design spec
(:class:`DesignSpec` — budget, server target, objectives) and
:func:`run_design` searches the space of buildable topologies for the
Pareto frontier of cost × throughput × resilience × growth-churn,
annealing over candidate designs with cheap calibrated estimators inner
loop and exact-LP confirmation of the finalists. See ``docs/design.md``.
"""

from repro.design.candidates import (
    CandidateDesign,
    available_generators,
    generate_candidates,
    mutate_candidate,
    register_generator,
)
from repro.design.catalog import PartsCatalog, SwitchSKU, default_catalog
from repro.design.engine import DesignPointRecord, DesignReport, run_design
from repro.design.pareto import (
    DESIGN_AXES,
    FrontierEntry,
    ParetoFrontier,
    dominates,
)
from repro.design.spec import DesignSpec

__all__ = [
    "CandidateDesign",
    "DESIGN_AXES",
    "DesignPointRecord",
    "DesignReport",
    "DesignSpec",
    "FrontierEntry",
    "ParetoFrontier",
    "PartsCatalog",
    "SwitchSKU",
    "available_generators",
    "default_catalog",
    "dominates",
    "generate_candidates",
    "mutate_candidate",
    "register_generator",
    "run_design",
]
