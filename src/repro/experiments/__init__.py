"""Experiment harness: one module per paper figure.

Every ``run_*`` function returns an
:class:`~repro.experiments.common.ExperimentResult` holding named series of
(x, y, std) points plus labels, and can be rendered as the text table the
benchmarks print. Default parameters are CI-scale (seconds per figure);
``scale="paper"`` parameter sets reproduce the paper's sizes where feasible
on a laptop.

Use :func:`~repro.experiments.registry.run_experiment` or the
``repro-experiments`` CLI to run by figure id.
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSeries,
    SeriesPoint,
    mean_and_std,
)
from repro.experiments.registry import (
    available_experiments,
    describe_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSeries",
    "SeriesPoint",
    "mean_and_std",
    "available_experiments",
    "describe_experiments",
    "run_experiment",
]
