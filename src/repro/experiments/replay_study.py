"""Trace-replay study: throughput under a time-varying VDC workload.

The paper evaluates static workloads; real datacenter traffic churns as
tenant VMs arrive and depart. This experiment replays one VDC
arrival/departure trace (Poisson arrivals, lognormal tenant sizes and
lifetimes — the workload model of the Oktopus/SecondNet line of work)
over a random graph and a fat-tree built from matched equipment, and
plots the throughput each fabric retains relative to its own initial
load as the tenant mix evolves.

Equipment matching follows the resilience study: the random fabric gets
exactly a k-ary fat-tree's switches, ports, and servers (§5.1
construction). Both fabrics replay a trace generated with the *same*
generator parameters and seed over their own server slots, so offered
churn is statistically identical.

Each curve is produced by :func:`repro.pipeline.replay.run_replay`, so
consecutive steps re-solve incrementally (``apply_demand_delta`` on one
:class:`~repro.flow.incremental.EdgeLPModel`) rather than rebuilding the
LP per step; the result metadata records the warm/cold solve counters
that make the replay affordable.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, ExperimentSeries
from repro.flow.solvers import SolverConfig
from repro.pipeline.replay import ReplayPlan, run_replay
from repro.pipeline.scenario import TopologySpec
from repro.traffic.vdc import vdc_timeline


def _families(k: int) -> "tuple[tuple[str, TopologySpec], ...]":
    """(label, spec) per design, on a k-ary fat-tree's equipment.

    The random fabric uses the uniform registry construction (every
    switch ``k`` ports, servers spread evenly) rather than
    :func:`~repro.experiments.resilience.matched_random_topology`'s
    remainder-spreading so the replay plan stays declarative — built
    from a :class:`TopologySpec`, hence manifest-serializable.
    """
    num_switches = 5 * k * k // 4
    num_servers = k * k * k // 4
    servers_per_switch = max(1, round(num_servers / num_switches))
    return (
        (
            "Random (matched equipment)",
            TopologySpec.make(
                "rrg",
                num_switches=num_switches,
                network_degree=k - servers_per_switch,
                servers_per_switch=servers_per_switch,
            ),
        ),
        ("Fat-tree", TopologySpec.make("fat-tree", k=k)),
    )


def run_replay_study(
    k: int = 4,
    steps: int = 40,
    arrival_rate: float = 1.0,
    mean_vms: float = 6.0,
    mean_duration: float = 15.0,
    solver: str = "edge_lp",
    runs: int = 1,
    seed: int = 0,
    window: int = 16,
) -> ExperimentResult:
    """Retained throughput over VDC traces, RRG vs fat-tree.

    Per family: build the fabric, generate a ``steps``-long VDC timeline
    on its server slots, replay it with warm-started re-solves, and
    report per-step throughput normalized to the trace's first step.
    ``runs`` independent traces (derived seeds) are averaged per step.
    """
    result = ExperimentResult(
        experiment_id="replay",
        title="Throughput under a time-varying VDC workload (matched equipment)",
        x_label="trace step",
        y_label="throughput (fraction of step-0 throughput)",
        metadata={
            "k": k,
            "steps": steps,
            "arrival_rate": arrival_rate,
            "mean_vms": mean_vms,
            "mean_duration": mean_duration,
            "solver": solver,
            "runs": runs,
            "seed": seed,
        },
    )
    counters: dict = {}
    for family_index, (label, spec) in enumerate(_families(k)):
        per_step: "list[list[float]]" = [[] for _ in range(steps)]
        modes: dict = {}
        for run in range(max(1, runs)):
            child = seed * 86_243 + family_index * 10_007 + run
            topo = spec.build(seed=child)
            timeline = vdc_timeline(
                topo,
                seed=child,
                steps=steps,
                arrival_rate=arrival_rate,
                mean_vms=mean_vms,
                mean_duration=mean_duration,
                name=f"vdc[{label}]#{run}",
            )
            plan = ReplayPlan(
                name=f"replay-study[{label}]#{run}",
                topology=spec,
                timeline=timeline,
                solver=SolverConfig.make(solver),
                seed=child,
                window=window,
            )
            replay = run_replay(plan)
            for step, retained in enumerate(replay.retained_series()):
                per_step[step].append(retained)
            for mode, count in replay.mode_counts().items():
                modes[mode] = modes.get(mode, 0) + count
        series = ExperimentSeries(label)
        for step, values in enumerate(per_step):
            if values:
                series.add(step, sum(values) / len(values))
        result.add_series(series)
        counters[label] = modes
    result.metadata["solve_modes"] = counters
    return result
