"""Figure 5: power-law switch populations, servers proportional to k^β.

Switch port counts follow a truncated power law; servers attach to switch
``i`` in proportion to ``k_i ** beta``. β = 0 ignores switch size, β = 1
is the proportional rule. The paper finds a plateau of optimal β around
[1.0, 1.4], with throughput dropping and variance blowing up toward both
extremes.
"""

from __future__ import annotations

from repro.exceptions import TopologyError
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSeries,
    mean_throughput_over_seeds,
)
from repro.topology.heterogeneous import (
    beta_server_distribution,
    heterogeneous_random_topology,
    power_law_ports_with_mean,
)
from repro.traffic.permutation import random_permutation_traffic

DEFAULT_BETAS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6)
DEFAULT_MEAN_PORTS = (6.0, 8.0)
PAPER_MEAN_PORTS = (6.0, 8.0, 10.0)


def run_fig5(
    num_switches: int = 24,
    mean_ports_options: "tuple[float, ...]" = DEFAULT_MEAN_PORTS,
    betas: "tuple[float, ...]" = DEFAULT_BETAS,
    server_fraction: float = 0.3,
    exponent: float = 2.0,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Throughput vs. β for power-law port populations (Figure 5).

    ``server_fraction`` sets the total server count as a share of total
    ports (held constant within a curve while β varies).
    """
    result = ExperimentResult(
        experiment_id="fig5",
        title="Power-law port counts: servers proportional to k^beta",
        x_label="beta",
        y_label="per-flow throughput",
        metadata={
            "num_switches": num_switches,
            "server_fraction": server_fraction,
            "exponent": exponent,
            "runs": runs,
            "seed": seed,
        },
    )
    for mean_index, mean_ports in enumerate(mean_ports_options):
        series = ExperimentSeries(f"Avg port-count {mean_ports:g}")
        for beta_index, beta in enumerate(betas):
            root = (
                None
                if seed is None
                else seed * 11_003 + mean_index * 503 + beta_index
            )

            def build(child, beta=beta):
                ports_list = power_law_ports_with_mean(
                    num_switches,
                    target_mean=mean_ports,
                    exponent=exponent,
                    min_ports=3,
                    seed=child,
                )
                port_counts = {i: k for i, k in enumerate(ports_list)}
                total_servers = max(2, int(server_fraction * sum(ports_list)))
                try:
                    servers = beta_server_distribution(
                        port_counts, total_servers, beta
                    )
                    topo = heterogeneous_random_topology(
                        port_counts, servers, seed=child
                    )
                except TopologyError:
                    return None  # infeasible construction scores zero
                return topo, lambda: random_permutation_traffic(topo, seed=child)

            mean, std = mean_throughput_over_seeds(build, runs, root)
            series.add(beta, mean, std)
        result.add_series(series)
    return result
