"""Extension studies beyond the paper's figure set.

Three follow-on questions the paper raises but does not plot:

- ``extra-routing``: how much of the optimal throughput do restricted
  routing policies (fluid ECMP, k-shortest-path multipath) recover on
  random graphs? (§8's motivation for MPTCP over shortest paths.)
- ``extra-cabling``: the cable-length/throughput trade along the Figure 6
  cross-connectivity sweep (§5.1's clustering remark, quantified).
- ``extra-latency``: packet latency percentiles vs. offered load on an RRG
  (§9's "what about latency?" discussion, measured).
"""

from __future__ import annotations

from repro.core.cabling import cable_report, linear_layout
from repro.experiments.common import ExperimentResult, ExperimentSeries, mean_and_std
from repro.pipeline.engine import evaluate_throughput
from repro.simulation.simulator import PacketLevelSimulator, SimulationConfig
from repro.topology.random_regular import random_regular_topology
from repro.topology.two_cluster import two_cluster_random_topology
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import spawn_seeds


def run_extra_routing(
    num_switches: int = 16,
    degrees: "tuple[int, ...]" = (4, 6, 8),
    servers_per_switch: int = 4,
    k: int = 8,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Routing-policy throughput, normalized to the optimal LP."""
    result = ExperimentResult(
        experiment_id="extra-routing",
        title="Routing policies vs optimal on random graphs",
        x_label="network degree r",
        y_label="throughput (fraction of optimal)",
        metadata={"num_switches": num_switches, "runs": runs, "seed": seed},
    )
    optimal = ExperimentSeries("Optimal (LP)")
    multipath = ExperimentSeries(f"{k}-shortest multipath")
    ecmp_hop = ExperimentSeries("ECMP (per-hop)")
    for degree_index, degree in enumerate(degrees):
        if degree >= num_switches:
            continue
        ratios_path: list[float] = []
        ratios_ecmp: list[float] = []
        root = None if seed is None else seed * 67_001 + degree_index
        for child in spawn_seeds(root, runs):
            topo = random_regular_topology(
                num_switches, degree, servers_per_switch=servers_per_switch,
                seed=child,
            )
            traffic = random_permutation_traffic(topo, seed=child)
            exact = evaluate_throughput(topo, traffic).throughput
            if exact <= 0:
                continue
            ratios_path.append(
                evaluate_throughput(topo, traffic, solver="path_lp", k=k).throughput
                / exact
            )
            ratios_ecmp.append(
                evaluate_throughput(topo, traffic, solver="ecmp").throughput / exact
            )
        optimal.add(degree, 1.0)
        mean, std = mean_and_std(ratios_path)
        multipath.add(degree, mean, std)
        mean, std = mean_and_std(ratios_ecmp)
        ecmp_hop.add(degree, mean, std)
    result.add_series(optimal)
    result.add_series(multipath)
    result.add_series(ecmp_hop)
    return result


def run_extra_cabling(
    num_per_cluster: int = 8,
    network_ports: int = 8,
    servers_per_switch: int = 4,
    fractions: "tuple[float, ...]" = (0.25, 0.5, 0.75, 1.0, 1.25),
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Throughput and mean cable length along the cross-connectivity sweep.

    Layout: both clusters contiguous on a line of racks, so cross-cluster
    links are the long ones. Cable length falls with the cross fraction
    while throughput stays on the Figure 6 plateau until the cut starves.
    """
    result = ExperimentResult(
        experiment_id="extra-cabling",
        title="Cable length vs throughput across cross-cluster bias",
        x_label="cross-cluster links (ratio to random expectation)",
        y_label="throughput / mean cable length",
        metadata={"runs": runs, "seed": seed},
    )
    throughput_series = ExperimentSeries("Throughput")
    cable_series = ExperimentSeries("Mean cable length")
    for fraction_index, fraction in enumerate(fractions):
        throughputs: list[float] = []
        cables: list[float] = []
        root = None if seed is None else seed * 71_003 + fraction_index
        for child in spawn_seeds(root, runs):
            topo = two_cluster_random_topology(
                num_large=num_per_cluster,
                large_network_ports=network_ports,
                num_small=num_per_cluster,
                small_network_ports=network_ports,
                servers_per_large=servers_per_switch,
                servers_per_small=servers_per_switch,
                cross_fraction=fraction,
                clamp_cross=True,
                seed=child,
            )
            if not topo.is_connected():
                continue
            traffic = random_permutation_traffic(topo, seed=child)
            throughputs.append(evaluate_throughput(topo, traffic).throughput)
            layout = linear_layout(topo, group_by_cluster=True, seed=child)
            cables.append(cable_report(topo, layout).mean_length)
        if not throughputs:
            continue
        mean, std = mean_and_std(throughputs)
        throughput_series.add(fraction, mean, std)
        mean, std = mean_and_std(cables)
        cable_series.add(fraction, mean, std)
    result.add_series(throughput_series)
    result.add_series(cable_series)
    return result


def run_extra_latency(
    num_switches: int = 10,
    degree: int = 4,
    loads: "tuple[int, ...]" = (2, 4, 8),
    duration: float = 200.0,
    warmup: float = 80.0,
    subflows: int = 2,
    runs: int = 2,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Packet one-way delay percentiles vs offered load (servers/switch)."""
    result = ExperimentResult(
        experiment_id="extra-latency",
        title="Packet latency vs offered load",
        x_label="servers per switch (offered load)",
        y_label="one-way delay (time units)",
        metadata={
            "num_switches": num_switches,
            "degree": degree,
            "runs": runs,
            "seed": seed,
        },
    )
    p50_series = ExperimentSeries("p50 delay")
    p99_series = ExperimentSeries("p99 delay")
    for load_index, load in enumerate(loads):
        p50s: list[float] = []
        p99s: list[float] = []
        root = None if seed is None else seed * 73_009 + load_index
        for child in spawn_seeds(root, runs):
            topo = random_regular_topology(
                num_switches, degree, servers_per_switch=load, seed=child
            )
            traffic = random_permutation_traffic(topo, seed=child)
            config = SimulationConfig(
                duration=duration, warmup=warmup, subflows=subflows
            )
            report = PacketLevelSimulator(topo, config).run(traffic, seed=child)
            if not report.latency_samples:
                continue
            p50s.append(report.latency_percentile(50))
            p99s.append(report.latency_percentile(99))
        if not p50s:
            continue
        mean, std = mean_and_std(p50s)
        p50_series.add(load, mean, std)
        mean, std = mean_and_std(p99s)
        p99_series.add(load, mean, std)
    result.add_series(p50_series)
    result.add_series(p99_series)
    return result
