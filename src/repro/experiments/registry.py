"""Registry mapping figure ids to experiment functions.

Each entry records the CI-scale default callable and the keyword overrides
that lift it to the paper's scale (``scale="paper"``). Paper-scale runs can
take minutes to hours on a laptop — exactly the CPLEX-bound regime the
original TopoBench tool operated in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ExperimentError
from repro.experiments import extra, fig01, fig02, fig03, fig04, fig05, fig06
from repro.experiments import fig07, fig08, fig09, fig10, fig11, fig12, fig13
from repro.experiments import design_study, fidelity, growth, replay_study
from repro.experiments import resilience, scale, search_study
from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered figure experiment."""

    experiment_id: str
    fn: Callable[..., ExperimentResult]
    description: str
    paper_kwargs: dict = field(default_factory=dict)


_SPECS: dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> None:
    _SPECS[spec.experiment_id] = spec


_register(
    ExperimentSpec(
        "fig1a",
        fig01.run_fig1a,
        "RRG throughput vs upper bound, density sweep",
        {"degrees": fig01.PAPER_DEGREES, "num_switches": 40},
    )
)
_register(
    ExperimentSpec(
        "fig1b",
        fig01.run_fig1b,
        "RRG ASPL vs lower bound, density sweep",
        {"degrees": fig01.PAPER_DEGREES, "num_switches": 40},
    )
)
_register(
    ExperimentSpec(
        "fig2a",
        fig02.run_fig2a,
        "RRG throughput vs upper bound, size sweep",
        {"sizes": fig02.PAPER_SIZES},
    )
)
_register(
    ExperimentSpec(
        "fig2b",
        fig02.run_fig2b,
        "RRG ASPL vs lower bound, size sweep",
        {"sizes": fig02.PAPER_SIZES},
    )
)
_register(
    ExperimentSpec(
        "fig3",
        fig03.run_fig3,
        "ASPL bound step structure at degree 4",
        {"sizes": fig03.PAPER_SIZES},
    )
)
_register(
    ExperimentSpec(
        "fig4a",
        fig04.run_fig4a,
        "Server distribution sweep across port ratios",
        {"configs": fig04.PAPER_FIG4A_CONFIGS},
    )
)
_register(
    ExperimentSpec(
        "fig4b",
        fig04.run_fig4b,
        "Server distribution sweep across small-switch counts",
        {"configs": fig04.PAPER_FIG4B_CONFIGS},
    )
)
_register(
    ExperimentSpec(
        "fig4c",
        fig04.run_fig4c,
        "Server distribution sweep across oversubscription",
        {"configs": fig04.PAPER_FIG4C_CONFIGS},
    )
)
_register(
    ExperimentSpec(
        "fig5",
        fig05.run_fig5,
        "Power-law ports: servers proportional to degree^beta",
        {"num_switches": 40, "mean_ports_options": fig05.PAPER_MEAN_PORTS},
    )
)
_register(
    ExperimentSpec(
        "fig6a",
        fig06.run_fig6a,
        "Cross-cluster sweep across port ratios",
        {"configs": fig06.PAPER_FIG6A_CONFIGS},
    )
)
_register(
    ExperimentSpec(
        "fig6b",
        fig06.run_fig6b,
        "Cross-cluster sweep across small-switch counts",
        {"configs": fig06.PAPER_FIG6B_CONFIGS},
    )
)
_register(
    ExperimentSpec(
        "fig6c",
        fig06.run_fig6c,
        "Cross-cluster sweep across oversubscription",
        {"configs": fig06.PAPER_FIG6C_CONFIGS},
    )
)
_register(
    ExperimentSpec(
        "fig7a",
        fig07.run_fig7a,
        "Combined placement x interconnect sweep (3:1 ports)",
        {"config": fig07.PAPER_FIG7A_CONFIG},
    )
)
_register(
    ExperimentSpec(
        "fig7b",
        fig07.run_fig7b,
        "Combined placement x interconnect sweep (3:2 ports)",
        {"config": fig07.PAPER_FIG7B_CONFIG},
    )
)
_register(
    ExperimentSpec(
        "fig8a",
        fig08.run_fig8a,
        "Mixed line-speeds: splits x cross sweep",
        {
            "config": fig08.PAPER_FIG8_CONFIG,
            "high_ports_per_large": 3,
            "high_speed": 10.0,
        },
    )
)
_register(
    ExperimentSpec(
        "fig8b",
        fig08.run_fig8b,
        "Mixed line-speeds: high-speed multiplier sweep",
        {
            "config": fig08.PAPER_FIG8_CONFIG,
            "high_ports_per_large": 6,
            "speeds": (2.0, 4.0, 8.0),
        },
    )
)
_register(
    ExperimentSpec(
        "fig8c",
        fig08.run_fig8c,
        "Mixed line-speeds: high-port count sweep",
        {
            "config": fig08.PAPER_FIG8_CONFIG,
            "high_counts": (3, 6, 9),
            "high_speed": 4.0,
        },
    )
)
_register(
    ExperimentSpec(
        "fig9a",
        fig09.run_fig9a,
        "Decomposition along server placement",
        {"config": fig09.PAPER_FIG4C_CONFIGS[0]},
    )
)
_register(
    ExperimentSpec(
        "fig9b",
        fig09.run_fig9b,
        "Decomposition along cross-cluster connectivity",
        {"config": fig09.PAPER_FIG4C_CONFIGS[1]},
    )
)
_register(
    ExperimentSpec(
        "fig9c",
        fig09.run_fig9c,
        "Decomposition along mixed-speed cross sweep",
        {"config": fig09.PAPER_FIG8_CONFIG, "high_ports_per_large": 3},
    )
)
_register(
    ExperimentSpec(
        "fig10a",
        fig10.run_fig10a,
        "Eqn-1 bound vs observed (uniform line-speed)",
        {"cases": fig10.PAPER_UNIFORM_CASES},
    )
)
_register(
    ExperimentSpec(
        "fig10b",
        fig10.run_fig10b,
        "Eqn-1 bound vs observed (mixed line-speeds)",
        {},
    )
)
_register(
    ExperimentSpec(
        "fig11",
        fig11.run_fig11,
        "C-bar-star thresholds across configurations",
        {"configs": fig11.paper_configs()},
    )
)
_register(
    ExperimentSpec(
        "fig12a",
        fig12.run_fig12a,
        "Rewired VL2 vs VL2, permutation traffic",
        {
            "da_values": fig12.PAPER_DA_VALUES,
            "di_values": fig12.PAPER_DI_VALUES,
            "servers_per_tor": 20,
        },
    )
)
_register(
    ExperimentSpec(
        "fig12b",
        fig12.run_fig12b,
        "Rewired VL2 under chunky traffic",
        {"da_values": fig12.PAPER_DA_VALUES, "di": 28, "servers_per_tor": 20},
    )
)
_register(
    ExperimentSpec(
        "fig12c",
        fig12.run_fig12c,
        "Rewired VL2 vs VL2 under harder workloads",
        {"da_values": fig12.PAPER_DA_VALUES, "di": 28, "servers_per_tor": 20},
    )
)
_register(
    ExperimentSpec(
        "fig13",
        fig13.run_fig13,
        "Packet-level MPTCP vs flow-level LP",
        {"da_values": fig13.PAPER_DA_VALUES, "di": 8, "servers_per_tor": 20},
    )
)


_register(
    ExperimentSpec(
        "extra-routing",
        extra.run_extra_routing,
        "Extension: ECMP / multipath / optimal routing comparison",
        {"num_switches": 24, "degrees": (4, 6, 8, 10, 12)},
    )
)
_register(
    ExperimentSpec(
        "extra-cabling",
        extra.run_extra_cabling,
        "Extension: cable length vs throughput across cross-cluster bias",
        {"num_per_cluster": 16, "network_ports": 12, "servers_per_switch": 6},
    )
)
_register(
    ExperimentSpec(
        "extra-latency",
        extra.run_extra_latency,
        "Extension: packet delay percentiles vs offered load",
        {"num_switches": 16, "degree": 6, "loads": (2, 4, 8, 12)},
    )
)
_register(
    ExperimentSpec(
        "resilience",
        resilience.run_resilience,
        "Extension: throughput retained under failures, RRG vs fat-tree vs VL2",
        {
            "k": 6,
            "rates": (0.0, 0.02, 0.05, 0.1, 0.2, 0.3),
            "runs": 5,
        },
    )
)
_register(
    ExperimentSpec(
        "fidelity",
        fidelity.run_fidelity,
        "Extension: ECMP/MPTCP routing fidelity vs exact LP, matched equipment",
        {"k": 6, "runs": 3},
    )
)
_register(
    ExperimentSpec(
        "scale",
        scale.run_scale,
        "Extension: calibrated estimator sweep to N=10k, RRG vs fat-tree vs VL2",
        {
            "sizes": (1000, 5000, 10000),
            "estimators": ("estimate_bound", "estimate_cut"),
            "exact_limit": 0,
            "runs": 1,
        },
    )
)
_register(
    ExperimentSpec(
        "growth",
        growth.run_growth_study,
        "Extension: incremental growth vs the fat-tree upgrade ladder",
        {
            "start": 64,
            "target": 2048,
            "num_stages": 5,
            "network_degree": 8,
            "servers_per_switch": 4,
            "strategies": ("swap", "rebuild", "fattree_upgrade"),
            "runs": 2,
        },
    )
)
_register(
    ExperimentSpec(
        "replay",
        replay_study.run_replay_study,
        "Extension: retained throughput over a time-varying VDC trace, "
        "RRG vs fat-tree",
        {"k": 6, "steps": 200, "arrival_rate": 2.0},
    )
)
_register(
    ExperimentSpec(
        "design",
        design_study.run_design_study,
        "Design: cost-Pareto frontier where random dominates fat-tree "
        "at matched cost",
        {
            "budget": 120_000.0,
            "servers": 32,
            "replicates": 3,
            "anneal_steps": 12,
        },
    )
)
_register(
    ExperimentSpec(
        "search1",
        search_study.run_search_vs_random,
        "Search: optimized vs random RRG throughput gap",
        {"points": ((40, 5), (40, 7), (80, 7)), "steps": 4000, "samples": 5},
    )
)
_register(
    ExperimentSpec(
        "search2",
        search_study.run_incremental_speedup,
        "Search: incremental ASPL speedup over full recomputation",
        {"num_switches": 1000, "degree": 10, "num_swaps": 30},
    )
)


def available_experiments() -> list[str]:
    """Sorted experiment ids."""
    return sorted(_SPECS)


def describe_experiments() -> list[tuple[str, str]]:
    """(id, description) pairs, sorted by id."""
    return [(eid, _SPECS[eid].description) for eid in available_experiments()]


def run_experiment(
    experiment_id: str, scale: str = "default", **overrides
) -> ExperimentResult:
    """Run a registered experiment.

    ``scale="paper"`` applies the paper-scale parameter overrides before
    any explicit ``overrides``.
    """
    spec = _SPECS.get(experiment_id)
    if spec is None:
        known = ", ".join(available_experiments())
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        )
    if scale not in ("default", "paper"):
        raise ExperimentError(f"unknown scale {scale!r}; use 'default' or 'paper'")
    kwargs: dict = {}
    if scale == "paper":
        kwargs.update(spec.paper_kwargs)
    kwargs.update(overrides)
    return spec.fn(**kwargs)
