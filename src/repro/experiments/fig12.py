"""Figure 12: improving VL2 by rewiring the same equipment (§7).

(a) For each (DA, DI), binary-search the number of ToRs supported at full
throughput under random permutations, for VL2 and for the rewired network,
and plot the ratio — the paper reaches 1.43x at its largest size, with
gains growing with scale.

(b) On the rewired topology sized to its permutation limit, measure
throughput under x% chunky traffic — only majority-chunky patterns dent it.

(c) Repeat (a) requiring full throughput under all-to-all, permutation, and
100% chunky — gains shrink under chunky but remain significant.
"""

from __future__ import annotations

from repro.core.vl2_improvement import (
    make_traffic,
    max_tors_at_full_throughput,
    vl2_improvement_ratio,
)
from repro.exceptions import ExperimentError
from repro.experiments.common import ExperimentResult, ExperimentSeries, mean_and_std
from repro.pipeline.engine import evaluate_throughput
from repro.topology.vl2 import rewired_vl2_topology
from repro.util.rng import spawn_seeds

DEFAULT_DA_VALUES = (4, 6, 8)
DEFAULT_DI_VALUES = (4, 8)
PAPER_DA_VALUES = (6, 8, 10, 12, 14, 16, 18, 20)
PAPER_DI_VALUES = (16, 20, 24, 28)
DEFAULT_SERVERS_PER_TOR = 10
DEFAULT_FABRIC_CAPACITY = 10.0


def run_fig12a(
    da_values: "tuple[int, ...]" = DEFAULT_DA_VALUES,
    di_values: "tuple[int, ...]" = DEFAULT_DI_VALUES,
    servers_per_tor: int = DEFAULT_SERVERS_PER_TOR,
    fabric_capacity: float = DEFAULT_FABRIC_CAPACITY,
    traffic_kind: str = "permutation",
    runs: int = 2,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Servers supported at full throughput, rewired over VL2 (Figure 12a)."""
    result = ExperimentResult(
        experiment_id="fig12a",
        title="Rewired VL2 vs VL2: servers at full throughput",
        x_label="aggregation switch degree DA",
        y_label="supported servers (ratio over VL2)",
        metadata={
            "servers_per_tor": servers_per_tor,
            "traffic_kind": traffic_kind,
            "runs": runs,
            "seed": seed,
            "vl2_tors": {},
            "rewired_tors": {},
        },
    )
    for di_index, di in enumerate(di_values):
        series = ExperimentSeries(f"{di} Agg Switches (DI={di})")
        for da_index, da in enumerate(da_values):
            child_seed = (
                None
                if seed is None
                else seed * 47_017 + di_index * 191 + da_index
            )
            comparison = vl2_improvement_ratio(
                da,
                di,
                traffic_kind=traffic_kind,
                runs=runs,
                seed=child_seed,
                servers_per_tor=servers_per_tor,
                fabric_capacity=fabric_capacity,
            )
            if comparison.vl2_tors == 0:
                continue
            series.add(da, comparison.ratio)
            result.metadata["vl2_tors"][(di, da)] = comparison.vl2_tors
            result.metadata["rewired_tors"][(di, da)] = comparison.rewired_tors
        result.add_series(series)
    return result


def run_fig12b(
    da_values: "tuple[int, ...]" = DEFAULT_DA_VALUES,
    di: int = 8,
    chunky_percents: "tuple[int, ...]" = (20, 60, 100),
    servers_per_tor: int = DEFAULT_SERVERS_PER_TOR,
    fabric_capacity: float = DEFAULT_FABRIC_CAPACITY,
    runs: int = 2,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Chunky-traffic throughput on permutation-sized rewired VL2 (Fig 12b).

    The topology for each DA is the rewired network holding the largest ToR
    count that sustains permutations at full throughput; y is the per-flow
    throughput under each chunky mix (1.0 = line rate).
    """
    result = ExperimentResult(
        experiment_id="fig12b",
        title="Rewired VL2 under chunky traffic",
        x_label="aggregation switch degree DA",
        y_label="per-flow throughput (1.0 = line rate)",
        metadata={"di": di, "runs": runs, "seed": seed, "sized_tors": {}},
    )
    series_by_percent = {
        pct: ExperimentSeries(f"{pct}% Chunky") for pct in chunky_percents
    }
    for da_index, da in enumerate(da_values):
        root = None if seed is None else seed * 53_003 + da_index
        rng_children = spawn_seeds(root, 2)

        def builder(num_tors: int, seed=None, da=da) -> object:
            return rewired_vl2_topology(
                da,
                di,
                num_tors=num_tors,
                servers_per_tor=servers_per_tor,
                fabric_capacity=fabric_capacity,
                seed=seed,
            )

        fabric_ports = di * da + (da // 2) * di
        sized = max_tors_at_full_throughput(
            builder,
            fabric_ports // 2 - 1,
            traffic_kind="permutation",
            runs=runs,
            seed=rng_children[0],
        )
        if sized < 2:
            continue
        result.metadata["sized_tors"][da] = sized
        for pct in chunky_percents:
            values = []
            for child in spawn_seeds(rng_children[1], runs):
                topo = builder(sized, seed=child)
                traffic = make_traffic(f"chunky-{pct}", topo, seed=child)
                values.append(evaluate_throughput(topo, traffic).throughput)
            mean, std = mean_and_std(values)
            series_by_percent[pct].add(da, min(mean, 1.0), std)
    for pct in chunky_percents:
        result.add_series(series_by_percent[pct])
    return result


def run_fig12c(
    da_values: "tuple[int, ...]" = DEFAULT_DA_VALUES,
    di: int = 8,
    traffic_kinds: "tuple[str, ...]" = ("all-to-all", "permutation", "chunky-100"),
    servers_per_tor: int = DEFAULT_SERVERS_PER_TOR,
    fabric_capacity: float = DEFAULT_FABRIC_CAPACITY,
    runs: int = 2,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Improvement ratio when full throughput is required per workload."""
    if not traffic_kinds:
        raise ExperimentError("need at least one traffic kind")
    label_map = {
        "all-to-all": "All-to-All Traffic",
        "permutation": "Permutation Traffic",
        "chunky-100": "100% Chunky Traffic",
    }
    result = ExperimentResult(
        experiment_id="fig12c",
        title="Rewired VL2 vs VL2 under harder workloads",
        x_label="aggregation switch degree DA",
        y_label="supported servers (ratio over VL2)",
        metadata={"di": di, "runs": runs, "seed": seed},
    )
    for kind_index, kind in enumerate(traffic_kinds):
        series = ExperimentSeries(label_map.get(kind, kind))
        for da_index, da in enumerate(da_values):
            child_seed = (
                None
                if seed is None
                else seed * 59_009 + kind_index * 197 + da_index
            )
            comparison = vl2_improvement_ratio(
                da,
                di,
                traffic_kind=kind,
                runs=runs,
                seed=child_seed,
                servers_per_tor=servers_per_tor,
                fabric_capacity=fabric_capacity,
            )
            if comparison.vl2_tors == 0:
                continue
            series.add(da, comparison.ratio)
        result.add_series(series)
    return result
