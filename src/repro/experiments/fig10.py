"""Figure 10: the Equation-1 bound vs. observed throughput (§6.2).

For uniform line-speeds the two-part bound (path-length term + cut term)
tracks observed throughput closely across the cross-connectivity sweep; for
mixed line-speeds it can be loose. Each case contributes a "Bound" and a
"Throughput" series over the same sweep.
"""

from __future__ import annotations

from repro.core.cut_bounds import two_part_throughput_bound
from repro.core.interconnect import feasible_cross_fractions
from repro.core.placement import proportional_split_for
from repro.exceptions import ExperimentError
from repro.experiments.common import ExperimentResult, ExperimentSeries, mean_and_std
from repro.experiments.heterogeneity import TwoTypeConfig
from repro.metrics.paths import average_shortest_path_length
from repro.pipeline.engine import evaluate_throughput
from repro.topology.heterogeneous import mixed_linespeed_topology
from repro.topology.two_cluster import (
    cluster_cut_capacity,
    two_cluster_random_topology,
)
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import spawn_seeds

DEFAULT_UNIFORM_CASES = (
    TwoTypeConfig(8, 15, 16, 5, 96, label="A"),
    TwoTypeConfig(8, 15, 12, 10, 108, label="B"),
)
PAPER_UNIFORM_CASES = (
    TwoTypeConfig(20, 30, 40, 10, 480, label="A"),
    TwoTypeConfig(20, 30, 30, 20, 510, label="B"),
)
#: (config, high_ports_per_large, high_speed) triples for the mixed panel.
DEFAULT_MIXED_CASES = (
    (TwoTypeConfig(8, 12, 8, 8, 64, label="A"), 2, 4.0),
    (TwoTypeConfig(8, 12, 8, 8, 64, label="B"), 3, 8.0),
)


def _sweep_case(
    config: TwoTypeConfig,
    build,
    points: int,
    min_fraction: float,
    max_fraction: float,
    runs: int,
    seed,
) -> tuple[ExperimentSeries, ExperimentSeries]:
    """Measure (bound series, throughput series) for one case."""
    split = proportional_split_for(
        config.num_large,
        config.large_ports,
        config.num_small,
        config.small_ports,
        config.total_servers,
    )
    fractions = feasible_cross_fractions(
        config.num_large,
        config.large_ports - split.servers_per_large,
        config.num_small,
        config.small_ports - split.servers_per_small,
        points=points,
        min_fraction=min_fraction,
        max_fraction=max_fraction,
    )
    n1 = split.servers_per_large * config.num_large
    n2 = split.servers_per_small * config.num_small
    bound_series = ExperimentSeries(f"Bound {config.label}")
    throughput_series = ExperimentSeries(f"Throughput {config.label}")
    for index, fraction in enumerate(fractions):
        bounds = []
        throughputs = []
        root = None if seed is None else seed * 41_011 + index
        for child in spawn_seeds(root, runs):
            topo = build(split, fraction, child)
            if not topo.is_connected():
                continue
            traffic = random_permutation_traffic(topo, seed=child)
            result = evaluate_throughput(topo, traffic)
            throughputs.append(result.throughput)
            bounds.append(
                two_part_throughput_bound(
                    total_capacity=topo.total_capacity,
                    cross_capacity=cluster_cut_capacity(topo),
                    n1=n1,
                    n2=n2,
                    aspl=average_shortest_path_length(topo),
                )
            )
        if not throughputs:
            continue
        mean_bound, _ = mean_and_std(bounds)
        mean_throughput, std_throughput = mean_and_std(throughputs)
        bound_series.add(fraction, mean_bound)
        throughput_series.add(fraction, mean_throughput, std_throughput)
    return bound_series, throughput_series


def run_fig10a(
    cases: "tuple[TwoTypeConfig, ...]" = DEFAULT_UNIFORM_CASES,
    points: int = 7,
    min_fraction: float = 0.1,
    max_fraction: float = 1.8,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Figure 10(a): uniform line-speeds — bound is empirically tight."""
    if not cases:
        raise ExperimentError("need at least one case")
    result = ExperimentResult(
        experiment_id="fig10a",
        title="Eqn-1 bound vs observed throughput (uniform line-speed)",
        x_label="cross-cluster links (ratio to random expectation)",
        y_label="per-flow throughput",
        metadata={"runs": runs, "seed": seed},
    )
    for case_index, config in enumerate(cases):
        def build(split, fraction, child, cfg=config):
            return two_cluster_random_topology(
                num_large=cfg.num_large,
                large_network_ports=cfg.large_ports - split.servers_per_large,
                num_small=cfg.num_small,
                small_network_ports=cfg.small_ports - split.servers_per_small,
                servers_per_large=split.servers_per_large,
                servers_per_small=split.servers_per_small,
                cross_fraction=fraction,
                clamp_cross=True,
                seed=child,
            )

        bound, throughput = _sweep_case(
            config,
            build,
            points,
            min_fraction,
            max_fraction,
            runs,
            None if seed is None else seed + case_index * 977,
        )
        result.add_series(bound)
        result.add_series(throughput)
    return result


def run_fig10b(
    cases=DEFAULT_MIXED_CASES,
    points: int = 7,
    min_fraction: float = 0.2,
    max_fraction: float = 1.8,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Figure 10(b): mixed line-speeds — the bound can be loose."""
    if not cases:
        raise ExperimentError("need at least one case")
    result = ExperimentResult(
        experiment_id="fig10b",
        title="Eqn-1 bound vs observed throughput (mixed line-speeds)",
        x_label="cross-cluster links (ratio to random expectation)",
        y_label="per-flow throughput",
        metadata={"runs": runs, "seed": seed},
    )
    for case_index, (config, high_count, high_speed) in enumerate(cases):
        def build(split, fraction, child, cfg=config, hc=high_count, hs=high_speed):
            return mixed_linespeed_topology(
                num_large=cfg.num_large,
                large_low_ports=cfg.large_ports - split.servers_per_large,
                num_small=cfg.num_small,
                small_low_ports=cfg.small_ports - split.servers_per_small,
                servers_per_large=split.servers_per_large,
                servers_per_small=split.servers_per_small,
                high_ports_per_large=hc,
                high_speed=hs,
                cross_fraction=fraction,
                seed=child,
            )

        bound, throughput = _sweep_case(
            config,
            build,
            points,
            min_fraction,
            max_fraction,
            runs,
            None if seed is None else seed + case_index * 983,
        )
        result.add_series(bound)
        result.add_series(throughput)
    return result
