"""Figure 1: random graphs vs. the bounds at fixed size, sweeping density.

(a) Per-flow throughput of RRG(N=40, r) as a *ratio to the Theorem-1 +
Cerf upper bound*, for all-to-all traffic and random permutations at 5 and
10 servers per switch. The paper finds the ratio climbs toward 1 as the
network densifies, with all-to-all reaching exactly 1 for r >= 13.

(b) Observed ASPL vs. the Cerf et al. lower bound over the same sweep.
"""

from __future__ import annotations

from repro.core.bounds import aspl_lower_bound
from repro.core.optimality import measure_optimality_gap
from repro.experiments.common import ExperimentResult, ExperimentSeries, mean_and_std
from repro.util.rng import spawn_seeds

DEFAULT_DEGREES = (4, 6, 8, 10, 12)
PAPER_DEGREES = tuple(range(3, 36, 2))


def run_fig1a(
    num_switches: int = 24,
    degrees: "tuple[int, ...]" = DEFAULT_DEGREES,
    servers_per_switch_options: "tuple[int, ...]" = (5, 10),
    include_all_to_all: bool = True,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Throughput-to-bound ratio vs. network degree (Figure 1a)."""
    result = ExperimentResult(
        experiment_id="fig1a",
        title="RRG throughput vs upper bound (N fixed)",
        x_label="network degree r",
        y_label="throughput (ratio to upper bound)",
        metadata={
            "num_switches": num_switches,
            "runs": runs,
            "seed": seed,
        },
    )
    workloads: list[tuple[str, str, int]] = []
    if include_all_to_all:
        workloads.append(("All to All", "all-to-all", 1))
    for servers in servers_per_switch_options:
        workloads.append(
            (f"Permutation ({servers} servers per switch)", "permutation", servers)
        )
    for label, workload, servers in workloads:
        series = ExperimentSeries(label)
        for degree_index, degree in enumerate(degrees):
            if degree >= num_switches:
                continue
            gap = measure_optimality_gap(
                num_switches,
                degree,
                servers_per_switch=servers,
                workload=workload,
                runs=runs,
                seed=None
                if seed is None
                else seed * 1_000_003 + degree_index * 101 + servers,
            )
            series.add(degree, min(gap.ratio, 1.0))
        result.add_series(series)
    return result


def run_fig1b(
    num_switches: int = 40,
    degrees: "tuple[int, ...]" = DEFAULT_DEGREES,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Observed ASPL vs. the Cerf lower bound, degree sweep (Figure 1b)."""
    from repro.metrics.paths import average_shortest_path_length
    from repro.topology.random_regular import random_regular_topology

    result = ExperimentResult(
        experiment_id="fig1b",
        title="RRG ASPL vs lower bound (N fixed)",
        x_label="network degree r",
        y_label="path length (hops)",
        metadata={"num_switches": num_switches, "runs": runs, "seed": seed},
    )
    observed = ExperimentSeries("Observed ASPL")
    bound = ExperimentSeries("ASPL lower-bound")
    for degree in degrees:
        if degree >= num_switches or degree < 2:
            continue
        values = []
        for child in spawn_seeds(None if seed is None else seed + degree, runs):
            topo = random_regular_topology(num_switches, degree, seed=child)
            values.append(average_shortest_path_length(topo))
        mean, std = mean_and_std(values)
        observed.add(degree, mean, std)
        bound.add(degree, aspl_lower_bound(num_switches, degree))
    result.add_series(observed)
    result.add_series(bound)
    return result
