"""Search-engine studies: optimized vs random RRGs, incremental speedup.

Two experiments quantify what the search subsystem adds:

- :func:`run_search_vs_random` turns the paper's "random is near-optimal"
  claim from an assertion into measured data: anneal RRGs toward lower
  ASPL and compare LP throughput of the optimized topology against the
  random samples and the Theorem 1 bound. The observed gap — optimized
  graphs beating random ones by only a few percent at most — is the
  paper's §4 story.
- :func:`run_incremental_speedup` measures the incremental ASPL engine
  against full recomputation, the optimization that makes long annealing
  runs affordable.
"""

from __future__ import annotations

import time
from statistics import fmean

from repro.core.bounds import aspl_lower_bound, throughput_upper_bound
from repro.exceptions import ExperimentError
from repro.experiments.common import ExperimentResult, ExperimentSeries
from repro.pipeline.engine import evaluate_throughput
from repro.metrics.incremental import IncrementalASPL
from repro.metrics.paths import average_shortest_path_length
from repro.search.engine import optimize_topology
from repro.topology.mutation import (
    apply_double_edge_swap,
    sample_double_edge_swap,
)
from repro.topology.random_regular import random_regular_topology
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import as_rng, spawn_seeds


def run_search_vs_random(
    points: "tuple[tuple[int, int], ...]" = ((16, 5), (24, 5), (32, 5), (40, 5)),
    steps: int = 1500,
    samples: int = 3,
    servers_per_switch: int = 4,
    num_runs: int = 1,
    seed: int = 0,
    runs: "int | None" = None,
) -> ExperimentResult:
    """Throughput of annealed vs random RRGs across ``(N, r)`` points.

    For each point: sample ``samples`` random RRGs and measure exact LP
    throughput under one fixed random permutation workload; anneal the
    first sample toward minimum ASPL (``num_runs`` parallel restarts when
    > 1); measure the optimized topology on the same workload. The
    ``Gap (%)`` series is ``(optimized - mean random) / optimized``: how
    much throughput a random graph leaves on the table. ``runs`` is the
    CLI runner's generic runs-per-point knob and aliases ``samples``.

    With the default size sweep the gap falls from roughly 20% at N=16 to
    a few percent at N=32-40 (modulo sampling luck across the ``samples``
    random draws): small random graphs are beatable, but by the paper's
    N=40 regime random is already near-optimal — the §4 claim as measured
    data.
    """
    if runs is not None:
        samples = runs
    result = ExperimentResult(
        experiment_id="search1",
        title="Optimized vs random RRG throughput",
        x_label="Switches N",
        y_label="Per-flow throughput (LP)",
    )
    random_series = ExperimentSeries("Random RRG (mean)")
    optimized_series = ExperimentSeries("Optimized (annealed ASPL)")
    bound_series = ExperimentSeries("Theorem 1 bound (d*)")
    gap_series = ExperimentSeries("Gap (%)")
    gaps: dict[str, float] = {}

    for point_index, (num_switches, degree) in enumerate(points):
        point_seeds = spawn_seeds(seed + point_index, samples + 1)
        topos = [
            random_regular_topology(
                num_switches,
                degree,
                servers_per_switch=servers_per_switch,
                seed=point_seeds[i],
            )
            for i in range(samples)
        ]
        # One workload for every topology of this size: permutations only
        # depend on the (identical) server maps.
        traffic = random_permutation_traffic(topos[0], seed=seed + 17)
        random_throughputs = [
            evaluate_throughput(topo, traffic).throughput for topo in topos
        ]
        random_mean = fmean(random_throughputs)

        annealed = optimize_topology(
            topos[0],
            "aspl",
            steps=steps,
            seed=point_seeds[samples],
            num_runs=num_runs,
        ).topology
        optimized = evaluate_throughput(annealed, traffic).throughput
        bound = throughput_upper_bound(
            num_switches, degree, traffic.num_network_flows
        )
        gap_pct = 100.0 * (optimized - random_mean) / optimized

        random_series.add(num_switches, random_mean)
        optimized_series.add(num_switches, optimized)
        bound_series.add(num_switches, bound)
        gap_series.add(num_switches, gap_pct)
        gaps[f"N={num_switches},r={degree}"] = gap_pct
        result.metadata[f"aspl_random_N{num_switches}_r{degree}"] = (
            average_shortest_path_length(topos[0])
        )
        result.metadata[f"aspl_optimized_N{num_switches}_r{degree}"] = (
            average_shortest_path_length(annealed)
        )
        result.metadata[f"aspl_bound_N{num_switches}_r{degree}"] = (
            aspl_lower_bound(num_switches, degree)
        )

    for series in (random_series, optimized_series, bound_series, gap_series):
        result.add_series(series)
    result.metadata["points"] = list(points)
    result.metadata["steps"] = steps
    result.metadata["samples"] = samples
    result.metadata["gaps_pct"] = gaps
    result.metadata["max_gap_pct"] = max(gaps.values())
    result.metadata["min_gap_pct"] = min(gaps.values())
    return result


def run_incremental_speedup(
    num_switches: int = 500,
    degree: int = 8,
    num_swaps: int = 12,
    seed: int = 0,
    runs: "int | None" = None,
) -> ExperimentResult:
    """Per-swap incremental ASPL evaluation vs full recomputation.

    ``runs`` is the CLI runner's generic runs-per-point knob and aliases
    ``num_swaps``.

    Applies a random swap walk; each step is evaluated once with the
    incremental engine (evaluate + commit) and once by recomputing ASPL
    from scratch on the mutated topology. Both paths are checked to agree
    exactly, so the timing comparison cannot quietly trade correctness
    for speed.
    """
    if runs is not None:
        num_swaps = runs
    topo = random_regular_topology(num_switches, degree, seed=seed)
    tracker = IncrementalASPL(topo)
    rng = as_rng(seed + 1)

    incremental_times: list[float] = []
    full_times: list[float] = []
    performed = 0
    failed_samples = 0
    while performed < num_swaps:
        swap = sample_double_edge_swap(topo, rng=rng)
        if swap is None:
            # Dense or swap-saturated graphs (e.g. complete graphs) can
            # reject every candidate; bail out instead of spinning forever.
            failed_samples += 1
            if failed_samples > 100 * num_swaps + 1000:
                raise ExperimentError(
                    f"could not sample {num_swaps} valid swaps on "
                    f"{topo.name!r}; the topology admits too few swaps"
                )
            continue
        start = time.perf_counter()
        evaluation = tracker.evaluate(swap)
        if evaluation.connected:
            tracker.commit(evaluation)
        incremental_times.append(time.perf_counter() - start)
        if not evaluation.connected:
            continue
        apply_double_edge_swap(topo, swap)
        start = time.perf_counter()
        full = average_shortest_path_length(topo)
        full_times.append(time.perf_counter() - start)
        if abs(full - evaluation.aspl) > 1e-9:
            raise AssertionError(
                f"incremental ASPL {evaluation.aspl} != recomputed {full}"
            )
        performed += 1

    incremental_ms = 1e3 * fmean(incremental_times)
    full_ms = 1e3 * fmean(full_times)
    result = ExperimentResult(
        experiment_id="search2",
        title="Incremental ASPL vs full recomputation",
        x_label="Swaps applied",
        y_label="Milliseconds per swap evaluation",
    )
    inc_series = ExperimentSeries("Incremental (ms)")
    full_series = ExperimentSeries("Full recompute (ms)")
    inc_series.add(num_swaps, incremental_ms)
    full_series.add(num_swaps, full_ms)
    result.add_series(inc_series)
    result.add_series(full_series)
    result.metadata["num_switches"] = num_switches
    result.metadata["degree"] = degree
    result.metadata["incremental_ms"] = incremental_ms
    result.metadata["full_ms"] = full_ms
    result.metadata["speedup"] = full_ms / incremental_ms
    return result
