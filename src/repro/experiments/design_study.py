"""The design study: random graphs beat fat-trees at equal cost.

This is the paper's headline claim restated as a *design* result: give
the cost-Pareto designer (:mod:`repro.design`) one parts catalog and one
budget, let it price and evaluate every buildable candidate family, and
the frontier itself exhibits the dominance — at matched equipment cost
the matched-random rewiring of a fat-tree's bill of materials sits
strictly above the fat-tree on throughput, so structured designs fall
off the frontier.

The experiment emits one cost-vs-throughput series per candidate family
(frontier points only) plus a ``structured`` series of the dominated
fat-tree ladder, and records the dominance verdict in metadata.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, ExperimentSeries


def run_design_study(
    budget: float = 50_000.0,
    servers: int = 16,
    replicates: int = 2,
    seed: int = 0,
    anneal_steps: int = 0,
    exact_limit: int = 120,
    catalog=None,
    cache_dir=None,
    workers: int = 1,
) -> ExperimentResult:
    """Run the designer and report the frontier as cost-vs-throughput curves.

    Series ``frontier`` holds the non-dominated designs; ``structured``
    holds every evaluated fat-tree / VL2 ladder point (on or off the
    frontier) so the dominance gap is visible in the table. Metadata
    records the full dominance verdict from
    :meth:`repro.design.DesignReport.dominance`.
    """
    from repro.design import DesignSpec, default_catalog, run_design

    spec = DesignSpec.make(
        budget=budget,
        servers=servers,
        replicates=replicates,
        base_seed=seed,
        anneal_steps=anneal_steps,
        exact_limit=exact_limit,
    )
    report = run_design(
        spec,
        catalog=catalog if catalog is not None else default_catalog(),
        cache_dir=cache_dir,
        workers=workers,
    )

    frontier = ExperimentSeries("frontier")
    structured = ExperimentSeries("structured")
    for record in report.frontier():
        frontier.add(record.metrics["cost"], record.metrics["throughput"])
    for record in report.points:
        if record.candidate.family == "structured":
            structured.add(
                record.metrics["cost"], record.metrics["throughput"]
            )

    dominance = report.dominance()
    result = ExperimentResult(
        experiment_id="design",
        title="Cost-Pareto designer: random beats fat-tree at equal cost",
        x_label="total cost ($)",
        y_label="throughput (normalized flow)",
        series=[frontier, structured],
        metadata={
            "budget": budget,
            "servers": servers,
            "frontier_size": len(report.frontier()),
            "evaluated": len(report.points),
            "dominated": report.dominated,
            "dominance_confirmed": dominance["confirmed"],
            "dominating_pairs": len(dominance["pairs"]),
            "cold_solves": report.cold_solves,
            "cache_hits": report.cache_hits,
        },
    )
    return result
