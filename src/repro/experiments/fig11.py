"""Figure 11: the C̄* threshold below which throughput must drop (§6.2).

For each two-cluster configuration, the empirical peak throughput T* fixes
a cross-capacity threshold C̄* = T* · 2 n1 n2 / (n1 + n2); the cut bound
guarantees throughput below T* whenever realized cross capacity is below
C̄*. The experiment sweeps many configurations, marks each curve's
threshold, and the test suite asserts the guarantee holds on every sampled
point.
"""

from __future__ import annotations

from repro.core.cut_bounds import threshold_cross_capacity
from repro.core.interconnect import feasible_cross_fractions
from repro.core.placement import proportional_split_for
from repro.exceptions import ExperimentError
from repro.experiments.common import ExperimentResult, ExperimentSeries
from repro.experiments.heterogeneity import TwoTypeConfig, clustered_throughput
from repro.topology.two_cluster import expected_cross_links

DEFAULT_CONFIGS = (
    TwoTypeConfig(8, 15, 16, 5, 96, label="cfg1"),
    TwoTypeConfig(8, 15, 16, 8, 96, label="cfg2"),
    TwoTypeConfig(8, 15, 12, 10, 108, label="cfg3"),
    TwoTypeConfig(6, 12, 12, 8, 72, label="cfg4"),
)
PAPER_CONFIG_COUNT = 18


def paper_configs(count: int = PAPER_CONFIG_COUNT) -> "tuple[TwoTypeConfig, ...]":
    """Generate a spread of 18 paper-scale two-cluster configurations."""
    out = []
    base = [
        (20, 30, 40, 10),
        (20, 30, 40, 15),
        (20, 30, 40, 20),
        (20, 30, 30, 20),
        (20, 30, 20, 20),
        (16, 24, 32, 12),
    ]
    servers = (480, 510, 540)
    for num_large, large_ports, num_small, small_ports in base:
        for total in servers:
            label = f"{num_large}x{large_ports}/{num_small}x{small_ports}@{total}"
            out.append(
                TwoTypeConfig(
                    num_large, large_ports, num_small, small_ports, total, label
                )
            )
    return tuple(out[:count])


def run_fig11(
    configs: "tuple[TwoTypeConfig, ...]" = DEFAULT_CONFIGS,
    points: int = 8,
    min_fraction: float = 0.1,
    max_fraction: float = 1.0,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Throughput profiles with analytically marked drop thresholds.

    ``metadata["thresholds"]`` maps each config label to its threshold in
    x-axis units (cross links as a fraction of the random expectation);
    ``metadata["peaks"]`` maps labels to the measured T*.
    """
    if not configs:
        raise ExperimentError("need at least one configuration")
    result = ExperimentResult(
        experiment_id="fig11",
        title="Cross-connectivity profiles with C-bar-star thresholds",
        x_label="cross-cluster links (ratio to random expectation)",
        y_label="per-flow throughput",
        metadata={"runs": runs, "seed": seed, "thresholds": {}, "peaks": {}},
    )
    for config_index, config in enumerate(configs):
        split = proportional_split_for(
            config.num_large,
            config.large_ports,
            config.num_small,
            config.small_ports,
            config.total_servers,
        )
        large_net = config.large_ports - split.servers_per_large
        small_net = config.small_ports - split.servers_per_small
        fractions = feasible_cross_fractions(
            config.num_large,
            large_net,
            config.num_small,
            small_net,
            points=points,
            min_fraction=min_fraction,
            max_fraction=max_fraction,
        )
        series = ExperimentSeries(config.describe())
        for frac_index, fraction in enumerate(fractions):
            child_seed = (
                None
                if seed is None
                else seed * 43_013 + config_index * 179 + frac_index
            )
            mean, std = clustered_throughput(
                config,
                split.servers_per_large,
                split.servers_per_small,
                cross_fraction=fraction,
                runs=runs,
                seed=child_seed,
            )
            series.add(fraction, mean, std)
        result.add_series(series)

        peak = series.peak().y
        n1 = split.servers_per_large * config.num_large
        n2 = split.servers_per_small * config.num_small
        expected = expected_cross_links(
            config.num_large * large_net, config.num_small * small_net
        )
        # Cross capacity of x expected links is 2 * x * expected (both
        # directions, unit capacities), so the threshold in x units is:
        cbar_star = threshold_cross_capacity(peak, n1, n2)
        threshold_x = cbar_star / (2.0 * expected)
        result.metadata["thresholds"][series.name] = threshold_x
        result.metadata["peaks"][series.name] = peak
    return result
