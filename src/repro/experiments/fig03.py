"""Figure 3: the ASPL bound's "curved step" structure at degree 4.

The Cerf et al. bound assumes a perfect distance tree: 4 nodes at distance
1, 12 at distance 2, 36 at distance 3, ... Each time a level fills
(N = 5, 17, 53, 161, 485, 1457 for degree 4) the bound bends upward —
the "curved steps". Plotting observed RRG ASPL against the bound also
shows their ratio approaching 1 as N grows.
"""

from __future__ import annotations

from repro.core.bounds import aspl_lower_bound, aspl_step_boundaries
from repro.experiments.common import ExperimentResult, ExperimentSeries, mean_and_std
from repro.metrics.paths import average_shortest_path_length
from repro.topology.random_regular import random_regular_topology
from repro.util.rng import spawn_seeds

DEFAULT_SIZES = (17, 35, 53, 100, 161, 300, 485)
PAPER_SIZES = (17, 35, 53, 100, 161, 300, 485, 900, 1457)


def run_fig3(
    sizes: "tuple[int, ...]" = DEFAULT_SIZES,
    degree: int = 4,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Observed ASPL, lower bound, and their ratio vs. size (Figure 3)."""
    result = ExperimentResult(
        experiment_id="fig3",
        title="ASPL bound steps at degree 4",
        x_label="network size N",
        y_label="path length (hops) / ratio",
        metadata={
            "degree": degree,
            "runs": runs,
            "seed": seed,
            "step_boundaries": aspl_step_boundaries(degree, max_levels=7),
        },
    )
    observed = ExperimentSeries("Observed ASPL")
    bound = ExperimentSeries("ASPL lower-bound")
    ratio = ExperimentSeries("Ratio (observed / bound)")
    for size in sizes:
        if degree >= size:
            continue
        values = []
        for child in spawn_seeds(None if seed is None else seed + size, runs):
            topo = random_regular_topology(size, degree, seed=child)
            values.append(average_shortest_path_length(topo))
        mean, std = mean_and_std(values)
        lower = aspl_lower_bound(size, degree)
        observed.add(size, mean, std)
        bound.add(size, lower)
        ratio.add(size, mean / lower, std / lower)
    result.add_series(observed)
    result.add_series(bound)
    result.add_series(ratio)
    return result
