"""Figure 4: distributing servers across heterogeneous switches (§5.1).

Sweep how many servers sit on the large switches (x-axis normalized to the
expectation under a uniformly random port assignment) with an *unbiased*
random interconnect over the remaining ports. The paper's finding, robust
across (a) port ratios, (b) small-switch counts, and (c) server totals:
peak throughput lands at x = 1, i.e. servers proportional to port counts.
"""

from __future__ import annotations

from repro.core.placement import feasible_server_splits
from repro.exceptions import ExperimentError
from repro.experiments.common import ExperimentResult, ExperimentSeries
from repro.experiments.heterogeneity import TwoTypeConfig, unbiased_throughput

#: CI-scale variants; the paper's are in PAPER_* below.
DEFAULT_FIG4A_CONFIGS = (
    TwoTypeConfig(8, 15, 16, 5, 96, label="3:1 Port-ratio"),
    TwoTypeConfig(8, 15, 16, 8, 96, label="2:1 Port-ratio"),
    TwoTypeConfig(8, 15, 16, 10, 96, label="3:2 Port-ratio"),
)
DEFAULT_FIG4B_CONFIGS = (
    TwoTypeConfig(8, 15, 8, 10, 96, label="8 Small Switches"),
    TwoTypeConfig(8, 15, 12, 10, 96, label="12 Small Switches"),
    TwoTypeConfig(8, 15, 16, 10, 96, label="16 Small Switches"),
)
DEFAULT_FIG4C_CONFIGS = (
    TwoTypeConfig(8, 15, 12, 10, 96, label="96 Servers"),
    TwoTypeConfig(8, 15, 12, 10, 108, label="108 Servers"),
    TwoTypeConfig(8, 15, 12, 10, 120, label="120 Servers"),
)

PAPER_FIG4A_CONFIGS = (
    TwoTypeConfig(20, 30, 40, 10, 480, label="3:1 Port-ratio"),
    TwoTypeConfig(20, 30, 40, 15, 480, label="2:1 Port-ratio"),
    TwoTypeConfig(20, 30, 40, 20, 480, label="3:2 Port-ratio"),
)
PAPER_FIG4B_CONFIGS = (
    TwoTypeConfig(20, 30, 20, 20, 480, label="20 Small Switches"),
    TwoTypeConfig(20, 30, 30, 20, 480, label="30 Small Switches"),
    TwoTypeConfig(20, 30, 40, 20, 480, label="40 Small Switches"),
)
PAPER_FIG4C_CONFIGS = (
    TwoTypeConfig(20, 30, 30, 20, 480, label="480 Servers"),
    TwoTypeConfig(20, 30, 30, 20, 510, label="510 Servers"),
    TwoTypeConfig(20, 30, 30, 20, 540, label="540 Servers"),
)


def _subsample(splits: list, max_points: int) -> list:
    if len(splits) <= max_points:
        return splits
    step = (len(splits) - 1) / (max_points - 1)
    return [splits[round(i * step)] for i in range(max_points)]


def run_fig4(
    configs: "tuple[TwoTypeConfig, ...]" = DEFAULT_FIG4A_CONFIGS,
    variant: str = "a",
    max_points: int = 9,
    runs: int = 3,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Throughput vs. server-placement ratio for a set of configs.

    One series per config; the x-axis is the placement ratio ("ratio to
    expected under random distribution").
    """
    if not configs:
        raise ExperimentError("need at least one configuration")
    result = ExperimentResult(
        experiment_id=f"fig4{variant}",
        title="Distributing servers across switches",
        x_label="servers at large switches (ratio to random expectation)",
        y_label="per-flow throughput",
        metadata={"runs": runs, "seed": seed},
    )
    for config_index, config in enumerate(configs):
        splits = feasible_server_splits(
            config.num_large,
            config.large_ports,
            config.num_small,
            config.small_ports,
            config.total_servers,
        )
        splits = _subsample(splits, max_points)
        series = ExperimentSeries(config.describe())
        for split_index, split in enumerate(splits):
            child_seed = (
                None
                if seed is None
                else seed * 7_001 + config_index * 131 + split_index
            )
            mean, std = unbiased_throughput(
                config,
                split.servers_per_large,
                split.servers_per_small,
                runs=runs,
                seed=child_seed,
            )
            series.add(split.ratio, mean, std)
        result.add_series(series)
    return result


def run_fig4a(**kwargs) -> ExperimentResult:
    """Figure 4(a): varying the port ratio between switch types."""
    kwargs.setdefault("configs", DEFAULT_FIG4A_CONFIGS)
    return run_fig4(variant="a", **kwargs)


def run_fig4b(**kwargs) -> ExperimentResult:
    """Figure 4(b): varying the number of small switches."""
    kwargs.setdefault("configs", DEFAULT_FIG4B_CONFIGS)
    return run_fig4(variant="b", **kwargs)


def run_fig4c(**kwargs) -> ExperimentResult:
    """Figure 4(c): varying oversubscription (total server count)."""
    kwargs.setdefault("configs", DEFAULT_FIG4C_CONFIGS)
    return run_fig4(variant="c", **kwargs)
