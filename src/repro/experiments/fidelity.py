"""Routing-fidelity study: what ECMP and MPTCP actually deliver (§5).

The paper's headline throughput numbers assume optimal routing; its §5
asks whether practical mechanisms get there. This experiment reruns that
question with the fluid mechanism solvers: on a random graph and a
fat-tree built from *matched equipment* (the §5.1 construction via
:func:`repro.experiments.resilience.matched_random_topology`), sweep the
number of ECMP paths and MPTCP subflows per flow and report each
mechanism's throughput as a fraction of the exact LP optimum on the same
instance. The paper's finding — reproduced here — is that ECMP leaves a
large gap no matter how many equal-cost paths it hashes over, while
MPTCP with ~8 subflows over k-shortest paths comes within a few percent
of optimal on the random graph.

The simulations run with ``server_capacity=None`` so ratios against the
LP measure the *routing* gap only (the LP has no NIC constraint either).

Every mechanism cell is also checked against a calibrated ratio band
(:func:`repro.fidelity.calibrate.calibrate_mechanisms`) fit on nearby
instances of the same families at the largest path/subflow count; the
CI gate asserts ``band_violations == 0``. The matched-equipment random
fabric validates against the ``rrg`` family band — a proxy (its server
spread is slightly uneven), noted in the metadata.
"""

from __future__ import annotations

from repro.estimate.calibrate import DEFAULT_MARGIN, within_band
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSeries,
    mean_and_std,
)
from repro.experiments.resilience import matched_random_topology
from repro.fidelity.calibrate import calibrate_mechanisms
from repro.fidelity.routes import reset_route_stats, route_stats
from repro.pipeline.engine import evaluate_throughput
from repro.topology.fattree import fat_tree_topology
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import spawn_seeds


def calibration_families(k: int) -> dict:
    """Small calibration specs shadowing the experiment's own families.

    The fat-tree family is exact (same ``k``); the random family is an
    even-spread RRG with the matched fabric's switch count and one server
    per switch — a close proxy for the §5.1 construction, whose server
    remainder makes a few switches serverless.
    """
    num_switches = 5 * k * k // 4
    return {
        "rrg": {
            "kind": "rrg",
            "params": {
                "network_degree": max(3, k - 1),
                "servers_per_switch": 1,
            },
            "size_param": "num_switches",
            "sizes": (num_switches,),
        },
        "fat-tree": {
            "kind": "fat-tree",
            "params": {},
            "size_param": "k",
            "sizes": (k,),
        },
    }


def run_fidelity(
    k: int = 4,
    path_counts: "tuple[int, ...]" = (1, 2, 4, 8),
    subflow_counts: "tuple[int, ...]" = (1, 2, 4, 8),
    runs: int = 2,
    seed: "int | None" = 0,
    mptcp_method: str = "yen",
    calibration_margin: float = DEFAULT_MARGIN,
    calibration_replicates: int = 3,
) -> ExperimentResult:
    """ECMP/MPTCP throughput as a fraction of the exact LP, path sweep.

    ``mptcp_method="yen"`` uses the exact k-shortest enumeration (right
    at this scale; the scalable ``"tree"`` default is what grid sweeps
    use and what the differential tests cover). Calibration bands are
    fit with the *same* mechanism options as the largest swept cell —
    a band only describes the configuration it calibrated with.
    """
    pmax, smax = max(path_counts), max(subflow_counts)
    mechanisms = {
        "sim_ecmp": {"paths": pmax, "server_capacity": None},
        "sim_mptcp": {
            "subflows": smax,
            "method": mptcp_method,
            "server_capacity": None,
        },
    }
    reset_route_stats()
    table = calibrate_mechanisms(
        mechanisms,
        families=calibration_families(k),
        replicates=calibration_replicates,
        margin=calibration_margin,
        base_seed=0 if seed is None else seed,
    )

    result = ExperimentResult(
        experiment_id="fidelity",
        title="Routing mechanisms vs exact LP (matched equipment)",
        x_label="ECMP paths / MPTCP subflows per flow",
        y_label="throughput fraction of exact LP",
        metadata={
            "k": k,
            "runs": runs,
            "mptcp_method": mptcp_method,
            "calibration": table.to_dict(),
            "band_checks": 0,
            "band_violations": 0,
            "band_proxy": {"Random (matched equipment)": "rrg"},
        },
    )

    families = (
        (
            "Random (matched equipment)",
            "rrg",
            lambda child: matched_random_topology(k, seed=child),
        ),
        (f"Fat-tree (k={k})", "fat-tree", lambda child: fat_tree_topology(k)),
    )
    exact_means: dict = {}
    for label, band_family, build in families:
        ecmp_ratios: "dict[int, list[float]]" = {p: [] for p in path_counts}
        mptcp_ratios: "dict[int, list[float]]" = {s: [] for s in subflow_counts}
        exacts: "list[float]" = []
        for child in spawn_seeds(seed, runs):
            topo = build(child)
            tm = random_permutation_traffic(topo, seed=child)
            exact = evaluate_throughput(topo, tm, solver="edge_lp")
            exacts.append(exact.throughput)
            for paths in path_counts:
                cell = evaluate_throughput(
                    topo,
                    tm,
                    solver="sim_ecmp",
                    paths=paths,
                    server_capacity=None,
                )
                ecmp_ratios[paths].append(cell.throughput / exact.throughput)
                if paths == pmax:
                    _check_band(
                        result, table, band_family, "sim_ecmp",
                        cell.throughput, exact.throughput,
                    )
            for subflows in subflow_counts:
                cell = evaluate_throughput(
                    topo,
                    tm,
                    solver="sim_mptcp",
                    subflows=subflows,
                    method=mptcp_method,
                    server_capacity=None,
                )
                mptcp_ratios[subflows].append(cell.throughput / exact.throughput)
                if subflows == smax:
                    _check_band(
                        result, table, band_family, "sim_mptcp",
                        cell.throughput, exact.throughput,
                    )
        exact_means[label] = mean_and_std(exacts)[0]

        ecmp = ExperimentSeries(name=f"ECMP ({label})")
        for paths in path_counts:
            mean, std = mean_and_std(ecmp_ratios[paths])
            ecmp.add(paths, mean, std)
        result.series.append(ecmp)
        mptcp = ExperimentSeries(name=f"MPTCP ({label})")
        for subflows in subflow_counts:
            mean, std = mean_and_std(mptcp_ratios[subflows])
            mptcp.add(subflows, mean, std)
        result.series.append(mptcp)

    result.metadata["exact_throughput"] = exact_means
    result.metadata["route_stats"] = route_stats()
    return result


def _check_band(
    result: ExperimentResult,
    table,
    family: str,
    mechanism: str,
    value: float,
    exact: float,
) -> None:
    """Count one calibrated-band check (and any violation) in metadata."""
    try:
        band = table.band(family, mechanism)
    except Exception:
        return  # family produced no calibratable instances (exact == 0)
    if exact <= 0:
        return
    result.metadata["band_checks"] += 1
    if not within_band(value, exact, band):
        result.metadata["band_violations"] += 1
