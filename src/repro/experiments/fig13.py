"""Figure 13: packet-level MPTCP vs. flow-level LP throughput (§8.2).

For rewired-VL2 topologies deliberately oversubscribed so the flow value
sits just below line rate, run the packet simulator (MPTCP over k shortest
paths) and compare per-flow goodput against the exact LP value. The paper
reports a gap within a few percent at its largest size; the simplified
transport model here lands within ~10% (see DESIGN.md substitutions).

Per-flow goodput is reported as the *mean* across flows: packet-level AIMD
does not implement maximin fairness, so the minimum flow is governed by
TCP dynamics rather than topology — the mean is the like-for-like
comparison with the LP's uniformly-fair optimum.
"""

from __future__ import annotations

from repro.core.vl2_improvement import max_tors_at_full_throughput
from repro.experiments.common import ExperimentResult, ExperimentSeries, mean_and_std
from repro.pipeline.engine import evaluate_throughput
from repro.simulation.simulator import PacketLevelSimulator, SimulationConfig
from repro.topology.vl2 import rewired_vl2_topology
from repro.traffic.permutation import random_permutation_traffic
from repro.util.rng import spawn_seeds

DEFAULT_DA_VALUES = (4, 6)
PAPER_DA_VALUES = (6, 8, 10, 12, 14, 16, 18)


def run_fig13(
    da_values: "tuple[int, ...]" = DEFAULT_DA_VALUES,
    di: int = 4,
    servers_per_tor: int = 10,
    fabric_capacity: float = 10.0,
    oversubscribe: float = 1.3,
    subflows: int = 8,
    packet_size: float = 0.25,
    duration: float = 400.0,
    warmup: float = 150.0,
    runs: int = 2,
    seed: "int | None" = 0,
) -> ExperimentResult:
    """Flow-level vs packet-level throughput on oversubscribed rewired VL2.

    The paper "deliberately oversubscribed the topologies so that the flow
    value was close to, but less than 1" — headroom would mask transport
    inefficiency. Small rewired-VL2 instances are often *port*-limited
    (adding ToRs is impossible long before capacity runs out), so this
    harness oversubscribes by scaling the per-ToR server count by
    ``oversubscribe`` after sizing the ToR count at the base load.
    """
    result = ExperimentResult(
        experiment_id="fig13",
        title="Packet-level MPTCP vs flow-level LP",
        x_label="aggregation switch degree DA",
        y_label="per-flow throughput (1.0 = line rate)",
        metadata={
            "di": di,
            "servers_per_tor": servers_per_tor,
            "oversubscribe": oversubscribe,
            "subflows": subflows,
            "runs": runs,
            "seed": seed,
            "tors": {},
        },
    )
    flow_series = ExperimentSeries("Flow-level")
    packet_series = ExperimentSeries("Packet-level")
    packet_min_series = ExperimentSeries("Packet-level (min flow)")
    for da_index, da in enumerate(da_values):
        root = None if seed is None else seed * 61_001 + da_index
        children = spawn_seeds(root, 3)

        def builder(num_tors: int, seed=None, da=da):
            return rewired_vl2_topology(
                da,
                di,
                num_tors=num_tors,
                servers_per_tor=servers_per_tor,
                fabric_capacity=fabric_capacity,
                seed=seed,
            )

        fabric_ports = di * da + (da // 2) * di
        supported = max_tors_at_full_throughput(
            builder,
            fabric_ports // 2 - 1,
            traffic_kind="permutation",
            runs=runs,
            seed=children[0],
        )
        num_tors = max(2, min(supported, fabric_ports // 2 - 1))
        oversubscribed_servers = max(
            servers_per_tor + 1, int(round(servers_per_tor * oversubscribe))
        )
        result.metadata["tors"][da] = num_tors

        def oversub_builder(num_tors: int, seed=None, da=da):
            return rewired_vl2_topology(
                da,
                di,
                num_tors=num_tors,
                servers_per_tor=oversubscribed_servers,
                fabric_capacity=fabric_capacity,
                seed=seed,
            )

        flow_values = []
        packet_values = []
        packet_min_values = []
        for child in spawn_seeds(children[1], runs):
            topo = oversub_builder(num_tors, seed=child)
            traffic = random_permutation_traffic(topo, seed=child)
            lp = evaluate_throughput(topo, traffic)
            flow_values.append(min(lp.throughput, 1.0))
            config = SimulationConfig(
                duration=duration,
                warmup=warmup,
                subflows=subflows,
                packet_size=packet_size,
            )
            report = PacketLevelSimulator(topo, config).run(traffic, seed=child)
            packet_values.append(min(report.mean_rate, 1.0))
            packet_min_values.append(min(report.min_rate, 1.0))
        mean_flow, std_flow = mean_and_std(flow_values)
        mean_packet, std_packet = mean_and_std(packet_values)
        mean_packet_min, std_packet_min = mean_and_std(packet_min_values)
        flow_series.add(da, mean_flow, std_flow)
        packet_series.add(da, mean_packet, std_packet)
        packet_min_series.add(da, mean_packet_min, std_packet_min)
    result.add_series(flow_series)
    result.add_series(packet_series)
    result.add_series(packet_min_series)
    return result
